//! Cross-crate integration tests: the full pipeline from workload trace
//! through partitioning to cluster execution, plus TPC-C consistency
//! invariants that witness serializability end to end.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_partition::chiller_part::distributed_ratio;
use chiller_partition::{ChillerPartitioner, ContentionModel, LoadMetric, SchismPartitioner};
use chiller_workload::instacart::{self, InstacartConfig};
use chiller_workload::tpcc::{self, build_tpcc_cluster, keys, tables, TpccConfig, TpccMix};
use std::sync::Arc;

// ---------------------------------------------------------------------
// TPC-C consistency (the spec's own audit conditions, scaled)
// ---------------------------------------------------------------------

/// Run the full mix under a protocol, quiesce, and audit the TPC-C
/// consistency conditions that must hold under serializability.
fn tpcc_audit(protocol: Protocol, seed: u64) {
    let cfg = TpccConfig::with_warehouses(4);
    let mut sim = SimConfig::default();
    sim.engine.concurrency = 3;
    sim.seed = seed;
    let mut cluster = build_tpcc_cluster(&cfg, TpccMix::default(), protocol, sim);
    let report = cluster.run(RunSpec::millis(1, 10));
    assert!(
        report.total_commits() > 500,
        "{protocol}: {}",
        report.summary()
    );
    cluster.quiesce();

    let initial_w_ytd = 300_000.0;
    let initial_d_ytd = 30_000.0;

    for engine in cluster.engines() {
        let store = engine.store();
        assert!(store.all_locks_free(), "{protocol}: leaked locks");
        // Audit every warehouse hosted on this partition.
        for (wkey, wrow) in store.table(tables::WAREHOUSE).iter() {
            let w_id = keys::warehouse_of(*wkey);

            // Condition 1-ish: w_ytd == initial + sum of district ytd deltas.
            let mut d_ytd_delta_sum = 0.0;
            let mut d_next_sum = 0u64;
            for d in 1..=10u64 {
                let drow = store
                    .read_opt(RecordId::new(tables::DISTRICT, keys::district(w_id, d)))
                    .expect("district exists");
                d_ytd_delta_sum += drow[3].as_f64() - initial_d_ytd;
                d_next_sum += drow[4].as_i64() as u64;

                // Condition: every order id below d_next_o_id exists, and
                // none at/above it.
                let next = drow[4].as_i64() as u64;
                assert!(
                    store.exists(RecordId::new(tables::ORDER, keys::order(w_id, d, next - 1))),
                    "{protocol}: missing order {} in (w{w_id},d{d})",
                    next - 1
                );
                assert!(
                    !store.exists(RecordId::new(tables::ORDER, keys::order(w_id, d, next))),
                    "{protocol}: phantom order {next}"
                );

                // Delivery pointer never passes the order counter.
                let last_delivered = drow[5].as_i64() as u64;
                assert!(
                    last_delivered < next,
                    "{protocol}: delivered unordered order"
                );
            }
            let w_ytd = wrow[2].as_f64();
            assert!(
                (w_ytd - initial_w_ytd - d_ytd_delta_sum).abs() < 1e-3,
                "{protocol}: w{} ytd {} vs districts {}",
                w_id,
                w_ytd - initial_w_ytd,
                d_ytd_delta_sum
            );
            let _ = d_next_sum;
        }

        // History sum equals warehouse+district ytd deltas / 2 (each payment
        // adds its amount to both w_ytd and d_ytd and one history row).
        let mut history_sum = 0.0;
        for (_, hrow) in store.table(tables::HISTORY).iter() {
            history_sum += hrow[1].as_f64();
        }
        for (wkey, wrow) in store.table(tables::WAREHOUSE).iter() {
            let _ = wkey;
            let w_ytd_delta = wrow[2].as_f64() - initial_w_ytd;
            assert!(
                (history_sum - w_ytd_delta).abs() < 1e-3,
                "{protocol}: history sum {history_sum} vs w_ytd delta {w_ytd_delta}"
            );
        }
    }
}

#[test]
fn tpcc_consistency_chiller() {
    tpcc_audit(Protocol::Chiller, 101);
}

#[test]
fn tpcc_consistency_2pl() {
    tpcc_audit(Protocol::TwoPhaseLocking, 102);
}

#[test]
fn tpcc_consistency_occ() {
    tpcc_audit(Protocol::Occ, 103);
}

#[test]
fn tpcc_order_lines_match_stock_movements() {
    // Every committed NewOrder decrements stock by exactly the ordered
    // quantities: sum of s_ytd across stock == sum of ol_quantity of
    // order lines beyond the preloaded ones.
    let cfg = TpccConfig::with_warehouses(2);
    let mut sim = SimConfig::default();
    sim.engine.concurrency = 2;
    sim.seed = 7;
    let mut cluster = build_tpcc_cluster(&cfg, TpccMix::default(), Protocol::Chiller, sim);
    cluster.run(RunSpec::millis(1, 10));
    cluster.quiesce();

    let mut s_ytd_sum = 0.0;
    let mut ol_qty_sum = 0.0;
    for engine in cluster.engines() {
        for (_, srow) in engine.store().table(tables::STOCK).iter() {
            s_ytd_sum += srow[2].as_f64();
        }
        for (olkey, olrow) in engine.store().table(tables::ORDER_LINE).iter() {
            // Skip preloaded lines (order id <= preloaded_orders).
            let o = (olkey >> 8) & 0xFFFF_FFFF;
            if o > cfg.preloaded_orders {
                ol_qty_sum += olrow[2].as_f64();
            }
        }
    }
    assert!(
        (s_ytd_sum - ol_qty_sum).abs() < 1e-6,
        "stock movement {s_ytd_sum} != ordered quantity {ol_qty_sum}"
    );
}

// ---------------------------------------------------------------------
// Partitioning pipeline → execution
// ---------------------------------------------------------------------

#[test]
fn instacart_pipeline_end_to_end() {
    let cfg = InstacartConfig {
        products: 5_000,
        ..Default::default()
    };
    let trace = instacart::trace(&cfg, 2_000, 4_000_000);
    let model = ContentionModel::new(30_000.0, trace.window_ns as f64);
    let mut partitioner = ChillerPartitioner::new(4, model);
    partitioner.load_metric = LoadMetric::Transactions;
    partitioner.hot_threshold = 0.05;
    partitioner.epsilon = 8.0;
    let chiller = partitioner.partition(&trace);
    assert!(chiller.num_hot() >= 2, "skew must yield hot records");

    let schism = SchismPartitioner::new(4).partition(&trace);
    // The central claim: Schism minimizes distributed txns better than
    // Chiller's layout…
    let r_schism = distributed_ratio(&trace.txns, &schism.into_placement());
    let r_chiller = distributed_ratio(&trace.txns, &chiller.into_lookup_table());
    assert!(r_schism <= r_chiller + 1e-9);

    // …but Chiller executes with far fewer aborts.
    let hot: Vec<RecordId> = chiller.hot_assignments.keys().copied().collect();
    let placement = Arc::new(chiller.into_lookup_table());
    let mut sim = SimConfig::default();
    sim.engine.concurrency = 4;
    sim.seed = 5;
    let mut chiller_cluster =
        instacart::build_cluster(&cfg, 4, placement, hot, Protocol::Chiller, sim.clone());
    let chiller_report = chiller_cluster.run(RunSpec::millis(1, 8));

    let mut hash_cluster = instacart::build_cluster(
        &cfg,
        4,
        Arc::new(HashPlacement::new(4)),
        vec![],
        Protocol::TwoPhaseLocking,
        sim,
    );
    let hash_report = hash_cluster.run(RunSpec::millis(1, 8));

    assert!(
        chiller_report.abort_rate() < hash_report.abort_rate(),
        "chiller {:.3} must abort less than hash+2pl {:.3}",
        chiller_report.abort_rate(),
        hash_report.abort_rate()
    );
    assert!(chiller_report.total_commits() > 0 && hash_report.total_commits() > 0);
}

#[test]
fn stock_conservation_in_instacart() {
    let cfg = InstacartConfig {
        products: 2_000,
        ..Default::default()
    };
    let mut sim = SimConfig::default();
    sim.engine.concurrency = 3;
    sim.seed = 11;
    let mut cluster = instacart::build_cluster(
        &cfg,
        3,
        Arc::new(HashPlacement::new(3)),
        vec![],
        Protocol::Chiller,
        sim,
    );
    let report = cluster.run(RunSpec::millis(1, 5));
    cluster.quiesce();
    // Total stock decrements == total items in committed orders.
    let mut decremented = 0i64;
    let mut ordered = 0i64;
    for engine in cluster.engines() {
        for (_, row) in engine.store().table(instacart::STOCK).iter() {
            decremented += 1_000_000 - row[1].as_i64();
        }
        for (_, row) in engine.store().table(instacart::ORDERS).iter() {
            ordered += row[1].as_i64();
        }
    }
    assert_eq!(decremented, ordered, "{}", report.summary());
}

// ---------------------------------------------------------------------
// Determinism across the whole stack
// ---------------------------------------------------------------------

#[test]
fn full_stack_determinism() {
    let run = || {
        let cfg = TpccConfig::with_warehouses(3);
        let mut sim = SimConfig::default();
        sim.engine.concurrency = 2;
        sim.seed = 99;
        let mut cluster = build_tpcc_cluster(&cfg, TpccMix::default(), Protocol::Chiller, sim);
        let report = cluster.run(RunSpec::millis(1, 5));
        (report.total_commits(), report.total_aborts())
    };
    assert_eq!(run(), run());
}

#[test]
fn hot_record_helper_covers_warehouses_and_districts() {
    let cfg = TpccConfig::with_warehouses(3);
    let hot = tpcc::hot_records(&cfg);
    assert_eq!(hot.len(), 3 * 11);
}
