//! Async-executor stress suite: the threaded backend's hot-path
//! regressions re-aimed at the worker-pool executor.
//!
//! Same contract, different failure surface: instead of one thread per
//! engine, engines are tasks bouncing between workers through a
//! work-stealing ready queue. The suite floods tiny shared mailboxes
//! (overflow into the parked-flush path, stall-and-requeue), chains long
//! relay cascades (quiescence detection vs batched bookkeeping and the
//! notify/DIRTY protocol), and runs both under more engines than workers
//! — under **both** mailbox implementations explicitly, so an env
//! default flip can never silently drop coverage of either.

use chiller_common::ids::NodeId;
use chiller_simnet::{
    Actor, AsyncConfig, AsyncRuntime, Ctx, MailboxKind, PinPolicy, Runtime, Verb,
};

const NODES: usize = 4;

fn config(mailbox: MailboxKind, capacity: usize, workers: usize) -> AsyncConfig {
    AsyncConfig {
        capacity,
        mailbox,
        workers: Some(workers),
        pin: PinPolicy::Off,
    }
}

/// All-pairs flood actor: sends sequenced payloads to every peer at
/// start and records arrivals per source, so per-link FIFO can be
/// checked exactly after the run (same role as the threaded suite's).
struct Flood {
    nodes: usize,
    per_link: u64,
    /// `seen[src]` = payloads received from `src`, in arrival order.
    seen: Vec<Vec<u64>>,
}

impl Actor<u64> for Flood {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.node().idx();
        for dst in 0..self.nodes {
            if dst == me {
                continue;
            }
            for i in 0..self.per_link {
                ctx.send(NodeId(dst as u32), Verb::OneSided, i);
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, src: NodeId, _verb: Verb, msg: u64) {
        self.seen[src.idx()].push(msg);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _token: u64) {}
}

/// Run the all-pairs flood on a 2-worker pool with an explicit mailbox
/// implementation and capacity; returns `seen[node][src]`. Asserts
/// completeness (event count); order checking is the caller's.
fn run_flood(mailbox: MailboxKind, capacity: usize, per_link: u64) -> Vec<Vec<Vec<u64>>> {
    let actors: Vec<Flood> = (0..NODES)
        .map(|_| Flood {
            nodes: NODES,
            per_link,
            seen: (0..NODES).map(|_| Vec::new()).collect(),
        })
        .collect();
    let mut rt = AsyncRuntime::with_config(actors, config(mailbox, capacity, 2));
    rt.run_to_quiescence(u64::MAX);
    let links = (NODES * (NODES - 1)) as u64;
    assert_eq!(
        rt.stats().events_processed,
        links * per_link,
        "{mailbox} capacity-{capacity} flood lost messages"
    );
    rt.actors().iter().map(|a| a.seen.clone()).collect()
}

/// Assert every link's payload sequence is complete and in send order.
fn assert_links_fifo(seen: &[Vec<Vec<u64>>], per_link: u64, label: &str) {
    let expect: Vec<u64> = (0..per_link).collect();
    for (n, node_seen) in seen.iter().enumerate() {
        for (src, link) in node_seen.iter().enumerate() {
            if src == n {
                assert!(
                    link.is_empty(),
                    "{label}: node {n} got messages from itself"
                );
                continue;
            }
            assert_eq!(
                link, &expect,
                "{label}: link {src}->{n} payloads lost or reordered"
            );
        }
    }
}

/// Tiny shared mailboxes force every executor mechanism at once —
/// overflow into the parked-send queues, stall-at-first-full, engine
/// re-enqueue instead of thread spinning, work stealing between the two
/// workers — and per-link FIFO must still hold exactly, under both
/// mailbox implementations.
#[test]
fn parked_flush_preserves_per_link_fifo_under_flood() {
    let per_link = 2_000u64;
    for mailbox in [MailboxKind::Ring, MailboxKind::Channel] {
        let seen = run_flood(mailbox, 8, per_link);
        assert_links_fifo(&seen, per_link, &format!("{mailbox} (async)"));
    }
}

/// Capacity-1 mailboxes: every slot contends, every flush stalls, every
/// stall re-enqueues the engine — the worst case for the
/// stall-and-requeue path and the ring's full/empty boundary.
#[test]
fn capacity_one_mailboxes_survive_all_pairs_flood() {
    let per_link = 500u64;
    for mailbox in [MailboxKind::Ring, MailboxKind::Channel] {
        let seen = run_flood(mailbox, 1, per_link);
        assert_links_fifo(&seen, per_link, &format!("capacity-1 {mailbox} (async)"));
    }
}

/// Ring-relay actor for quiescence stress: forwards each payload (a hop
/// countdown) to the next node in the ring.
struct Ring {
    next: NodeId,
    relayed: u64,
}

impl Actor<u64> for Ring {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, u64>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: NodeId, verb: Verb, msg: u64) {
        self.relayed += 1;
        if msg > 0 {
            ctx.send(self.next, verb, msg - 1);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _token: u64) {}
}

/// Quiescence-detection regression, executor edition (mirrors the
/// threaded suite's 8×5000-hop cascade): the outstanding-work counter is
/// published per engine *turn*, engines hop between workers mid-cascade,
/// and idle workers park on the taskq handshake — an early quiescence
/// verdict, a lost notify, or a mis-ordered delta publication surfaces
/// as a cascade cut short or a hang. Both mailbox kinds, explicitly.
#[test]
fn quiescence_detection_survives_multiplexed_cascades() {
    let cascades = 8u64;
    let hops = 5_000u64;
    for mailbox in [MailboxKind::Ring, MailboxKind::Channel] {
        let actors: Vec<Ring> = (0..NODES)
            .map(|n| Ring {
                next: NodeId(((n + 1) % NODES) as u32),
                relayed: 0,
            })
            .collect();
        let mut rt = AsyncRuntime::with_config(
            actors,
            config(mailbox, chiller_simnet::DEFAULT_MAILBOX_CAPACITY, 2),
        );
        // Seed the cascades from the control plane, spread around the ring.
        for c in 0..cascades {
            rt.with_actor_ctx(NodeId((c % NODES as u64) as u32), &mut |_a, ctx| {
                let next = NodeId(((ctx.node().idx() + 1) % NODES) as u32);
                ctx.send(next, Verb::OneSided, hops - 1);
            });
        }
        rt.run_to_quiescence(u64::MAX);
        let total: u64 = rt.actors().iter().map(|a| a.relayed).sum();
        assert_eq!(
            total,
            cascades * hops,
            "{mailbox}: a cascade was cut short by a premature quiescence verdict"
        );
    }
}

/// The same cascade regression with far more engines than workers: 64
/// relays on 2 workers, so every hop migrates the cascade across the
/// ready queue and most engines are parked in QUEUED/IDLE at any moment.
#[test]
fn cascades_survive_heavy_multiplexing() {
    let nodes = 64usize;
    let cascades = 8u64;
    let hops = 5_000u64;
    let actors: Vec<Ring> = (0..nodes)
        .map(|n| Ring {
            next: NodeId(((n + 1) % nodes) as u32),
            relayed: 0,
        })
        .collect();
    let mut rt = AsyncRuntime::with_config(actors, config(MailboxKind::Ring, 64, 2));
    for c in 0..cascades {
        rt.with_actor_ctx(NodeId((c % nodes as u64) as u32), &mut |_a, ctx| {
            let next = NodeId(((ctx.node().idx() + 1) % nodes) as u32);
            ctx.send(next, Verb::OneSided, hops - 1);
        });
    }
    rt.run_to_quiescence(u64::MAX);
    let total: u64 = rt.actors().iter().map(|a| a.relayed).sum();
    assert_eq!(
        total,
        cascades * hops,
        "64-engine/2-worker cascade lost hops"
    );
}
