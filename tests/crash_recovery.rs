//! Crash-injection and recovery certification suite.
//!
//! Each scenario runs a durable cluster into the middle of a loaded
//! window, kills it at a [`CrashPlan`] point (WALs flushed, no
//! checkpoint — exactly what a kill-at-flush-boundary crash leaves on
//! disk), then rebuilds against the same directory and demands:
//!
//! 1. the pre-kill history itself certifies serializable (the crash
//!    cannot retroactively excuse an anomaly);
//! 2. recovery runs (checkpoint/initial-load + redo replay + in-doubt
//!    resolution + repair) and reports what it did;
//! 3. every write an *acked* pre-kill commit installed survives into the
//!    recovered stores at (at least) the version it installed — the
//!    durability contract;
//! 4. the recovered cluster keeps committing, and the workload's domain
//!    invariants hold across the crash — SmallBank's conservation check
//!    folds in the pre-kill acked counts plus the commits recovery
//!    resolved that were never acked;
//! 5. the post-restart history certifies serializable too (the checker
//!    treats recovered versions it never saw written as initial state).
//!
//! Covered: mid-TPC-C and mid-SmallBank kills on all three backends,
//! every protocol on the simulator, a double-crash epoch walk, and the
//! off-path contract (durability on vs. off is byte-identical on the
//! deterministic simulator).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_checker::check_history;
use chiller_obs::HistoryEventKind;
use chiller_workload::smallbank::{
    assert_smallbank_invariants, assert_smallbank_invariants_recovered, build_cluster_durable,
    SmallBankConfig,
};
use chiller_workload::tpcc::{
    assert_tpcc_invariants, build_tpcc_cluster_full, TpccConfig, TpccMix,
};
use std::collections::HashSet;
use std::path::PathBuf;

const NODES: usize = 4;

/// Unique scratch WAL directory per scenario (process-qualified so
/// concurrently running test binaries never share logs); recreated empty.
fn wal_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chiller-crash-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch WAL dir");
    dir
}

fn sim_config(seed: u64) -> SimConfig {
    let mut sim = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim.engine.concurrency = 4;
    sim
}

fn contended_config() -> SmallBankConfig {
    SmallBankConfig {
        accounts: 400,
        hot_accounts: 8,
        hot_fraction: 0.4,
    }
}

/// The history the dead cluster left behind must certify serializable,
/// with nothing dropped — a crash is not an excuse for an anomaly.
fn certify_prekill(snap: &CrashSnapshot, label: &str) {
    let rep = check_history(&snap.history, CheckMode::Full);
    assert!(
        rep.is_complete(),
        "{label}: pre-kill history dropped {} events",
        rep.events_dropped
    );
    assert!(
        rep.ok(),
        "{label}: pre-kill anomalies: {:?}",
        rep.violations
    );
}

/// The durability contract: every write installed by a commit that was
/// acked before the kill must be present in the recovered stores — i.e.
/// each written record's recovered version chain reaches at least the
/// version that write installed. Checked *before* the recovered cluster
/// runs any new transactions.
fn assert_acked_writes_survive(snap: &CrashSnapshot, recovered: &chiller::Cluster, label: &str) {
    let acked: HashSet<TxnId> = snap
        .history
        .events
        .iter()
        .filter_map(|e| match e.kind {
            HistoryEventKind::Commit { txn } => Some(txn),
            _ => None,
        })
        .collect();
    let mut checked = 0u64;
    for e in &snap.history.events {
        if let HistoryEventKind::WriteObs {
            txn,
            record,
            version,
        } = e.kind
        {
            if !acked.contains(&txn) {
                continue;
            }
            let recovered_v = recovered
                .engines()
                .iter()
                .map(|eng| eng.store().record_version(record))
                .max()
                .unwrap_or(0);
            assert!(
                recovered_v >= version,
                "{label}: acked write {record:?} v{version} by {txn:?} lost \
                 (recovered chain stops at v{recovered_v})"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 0,
        "{label}: no acked writes before the kill — the crash landed too early to test anything"
    );
}

/// Kill a TPC-C run mid-window, recover, keep going, audit everything.
fn tpcc_crash_recover(
    protocol: Protocol,
    backend: Backend,
    seed: u64,
    window_ms: u64,
    label: &str,
) {
    eprintln!("crash scenario: {label}");
    let dir = wal_dir(label);
    let cfg = TpccConfig::with_warehouses(4);
    let kill_at = CrashPlan::new(seed).kill_point(0, Duration::from_millis(window_ms));

    let mut c1 = build_tpcc_cluster_full(
        &cfg,
        TpccMix::default(),
        protocol,
        sim_config(seed),
        backend,
        None,
        Some(CheckMode::Full),
        Some(&dir),
    );
    assert!(c1.durable(), "{label}: cluster must be durable");
    let r1 = c1.run_more(kill_at);
    assert!(
        r1.total_commits() > 0,
        "{label}: nothing committed before the kill — {}",
        r1.summary()
    );
    let snap = c1.kill();
    certify_prekill(&snap, label);

    let mut c2 = build_tpcc_cluster_full(
        &cfg,
        TpccMix::default(),
        protocol,
        sim_config(seed + 1),
        backend,
        None,
        Some(CheckMode::Full),
        Some(&dir),
    );
    let rec = c2
        .recovery()
        .expect("rebuild against a populated WAL dir must recover")
        .clone();
    assert_eq!(rec.epoch, 1, "{label}: first recovery bumps to epoch 1");
    assert!(
        rec.writes_replayed > 0,
        "{label}: a mid-run kill must leave redo to replay — {rec}"
    );
    assert_acked_writes_survive(&snap, &c2, label);

    let r2 = c2.run(RunSpec::millis(0, window_ms));
    assert!(
        r2.total_commits() > 0,
        "{label}: recovered cluster committed nothing — {}",
        r2.summary()
    );
    c2.quiesce();
    assert_tpcc_invariants(&c2, &cfg, label);
    c2.expect_serializable(label);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill a SmallBank run mid-window, recover, keep going; conservation
/// must hold across both incarnations (live counters + pre-kill acked
/// counts + recovered-but-never-acked commits).
fn smallbank_crash_recover(backend: Backend, seed: u64, window_ms: u64, label: &str) {
    let dir = wal_dir(label);
    let cfg = contended_config();
    let kill_at = CrashPlan::new(seed).kill_point(0, Duration::from_millis(window_ms));

    let mut c1 = build_cluster_durable(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(seed),
        backend,
        None,
        Some(CheckMode::Full),
        Some(&dir),
    );
    let r1 = c1.run_more(kill_at);
    assert!(
        r1.total_commits() > 0,
        "{label}: nothing committed before the kill — {}",
        r1.summary()
    );
    let snap = c1.kill();
    certify_prekill(&snap, label);

    let mut c2 = build_cluster_durable(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(seed + 1),
        backend,
        None,
        Some(CheckMode::Full),
        Some(&dir),
    );
    let rec = c2
        .recovery()
        .expect("rebuild against a populated WAL dir must recover")
        .clone();
    assert_eq!(rec.epoch, 1, "{label}: first recovery bumps to epoch 1");
    assert_acked_writes_survive(&snap, &c2, label);

    let r2 = c2.run(RunSpec::millis(0, window_ms));
    assert!(
        r2.total_commits() > 0,
        "{label}: recovered cluster committed nothing — {}",
        r2.summary()
    );
    c2.quiesce();
    assert_smallbank_invariants_recovered(
        &c2,
        &cfg,
        &[&snap.commits_by_proc, &rec.recovered_unacked],
        label,
    );
    c2.expect_serializable(label);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Simulated backend: every protocol survives a mid-TPC-C kill.
#[test]
fn tpcc_crash_recovery_all_protocols_sim() {
    for (i, protocol) in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ]
        .into_iter()
        .enumerate()
    {
        tpcc_crash_recover(
            protocol,
            Backend::Simulated,
            41 + i as u64,
            10,
            &format!("tpcc-crash-sim-{protocol}"),
        );
    }
}

/// Threaded backend: a mid-TPC-C kill under real OS-thread interleaving.
#[test]
fn tpcc_crash_recovery_threaded() {
    tpcc_crash_recover(
        Protocol::Chiller,
        Backend::Threaded,
        47,
        60,
        "tpcc-crash-threaded",
    );
}

/// Async worker-pool backend: a mid-TPC-C kill while 4 partitions are
/// multiplexed over the pool.
#[test]
fn tpcc_crash_recovery_async() {
    tpcc_crash_recover(
        Protocol::Chiller,
        Backend::Async,
        53,
        60,
        "tpcc-crash-async",
    );
}

/// Simulated backend: SmallBank conservation across a kill.
#[test]
fn smallbank_crash_recovery_sim() {
    smallbank_crash_recover(Backend::Simulated, 59, 10, "smallbank-crash-sim");
}

/// Threaded backend: SmallBank conservation across a kill.
#[test]
fn smallbank_crash_recovery_threaded() {
    smallbank_crash_recover(Backend::Threaded, 61, 60, "smallbank-crash-threaded");
}

/// Async backend: SmallBank conservation across a kill.
#[test]
fn smallbank_crash_recovery_async() {
    smallbank_crash_recover(Backend::Async, 67, 60, "smallbank-crash-async");
}

/// Two crashes back to back: each recovery bumps the epoch (so restarted
/// engines mint TxnIds no dead incarnation could have used), and the
/// conservation ledger folds in both incarnations' acked counts and both
/// recoveries' unacked commits.
#[test]
fn double_crash_walks_the_epoch_chain() {
    let dir = wal_dir("smallbank-double-crash");
    let cfg = contended_config();
    let plan = CrashPlan::new(71);

    let mut c1 = build_cluster_durable(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(71),
        Backend::Simulated,
        None,
        Some(CheckMode::Full),
        Some(&dir),
    );
    c1.run_more(plan.kill_point(0, Duration::from_millis(10)));
    let snap1 = c1.kill();
    certify_prekill(&snap1, "double-crash (first)");

    let mut c2 = build_cluster_durable(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(72),
        Backend::Simulated,
        None,
        Some(CheckMode::Full),
        Some(&dir),
    );
    let rec1 = c2.recovery().expect("first recovery").clone();
    assert_eq!(rec1.epoch, 1);
    c2.run_more(plan.kill_point(1, Duration::from_millis(10)));
    let snap2 = c2.kill();
    certify_prekill(&snap2, "double-crash (second)");

    let mut c3 = build_cluster_durable(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(73),
        Backend::Simulated,
        None,
        Some(CheckMode::Full),
        Some(&dir),
    );
    let rec2 = c3.recovery().expect("second recovery").clone();
    assert_eq!(rec2.epoch, 2, "second recovery bumps to epoch 2");
    assert_acked_writes_survive(&snap2, &c3, "double-crash");

    let r3 = c3.run(RunSpec::millis(0, 10));
    assert!(r3.total_commits() > 0, "{}", r3.summary());
    c3.quiesce();
    assert_smallbank_invariants_recovered(
        &c3,
        &cfg,
        &[
            &snap1.commits_by_proc,
            &rec1.recovered_unacked,
            &snap2.commits_by_proc,
            &rec2.recovered_unacked,
        ],
        "double-crash",
    );
    c3.expect_serializable("double-crash");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The off-path contract: on the deterministic simulator, the same seed
/// produces the identical execution — event for event — whether
/// durability is on or off. Logging rides the commit path without
/// perturbing it.
#[test]
fn durability_is_invisible_to_the_simulation() {
    let cfg = contended_config();
    let run = |durable: Option<&std::path::Path>| {
        let mut cluster = build_cluster_durable(
            &cfg,
            NODES,
            Protocol::Chiller,
            sim_config(29),
            Backend::Simulated,
            None,
            Some(CheckMode::Full),
            durable,
        );
        let report = cluster.run(RunSpec::millis(0, 8));
        cluster.quiesce();
        assert_smallbank_invariants(&cluster, &cfg, "durability-off-path");
        let history = cluster.take_history();
        (report.total_commits(), report.total_aborts(), history)
    };

    let dir = wal_dir("smallbank-offpath");
    let (commits_on, aborts_on, history_on) = run(Some(&dir));
    let (commits_off, aborts_off, history_off) = run(None);

    assert_eq!(commits_on, commits_off, "durability changed commit count");
    assert_eq!(aborts_on, aborts_off, "durability changed abort count");
    assert_eq!(
        history_on.events, history_off.events,
        "durability perturbed the simulated execution"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
