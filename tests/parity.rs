//! Protocol-parity and determinism suite.
//!
//! Every concurrency-control protocol must uphold the same contract on the
//! transfer workload (the serializability witness of "Efficient Black-box
//! Checking of Snapshot Isolation in Databases"-style invariant testing):
//!
//! 1. **Balance conservation** — money moves, it is never created or
//!    destroyed (serializability invariant), and the cluster quiesces with
//!    no leaked locks or zombie transactions.
//! 2. **Determinism** — identical seeds yield *byte-identical*
//!    `EngineReport`s (the whole per-node metric state, not just totals),
//!    which is what makes every experiment in `bench/` reproducible.
//! 3. **Paper-shaped relative results** — under contention with the hot
//!    set co-located, Chiller's two-region execution must beat 2PL+2PC
//!    throughput.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster, build_cluster_checked, build_cluster_on,
    build_shifting_cluster, TransferConfig,
};

const NODES: usize = 4;

fn contended_config() -> TransferConfig {
    TransferConfig {
        accounts: 400,
        hot_set: 8,
        hot_fraction: 0.5,
    }
}

fn sim_config(seed: u64, concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

/// Canonical byte rendering of the full per-node engine state. `MetricSet`
/// stores per-type stats in a `BTreeMap`, so the Debug rendering is a
/// deterministic function of the metric values.
fn report_bytes(report: &chiller::RunReport) -> String {
    format!("{:?}", report.per_node)
}

#[test]
fn all_protocols_conserve_balance_and_quiesce_clean() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let cfg = contended_config();
        let mut cluster = build_cluster(&cfg, NODES, protocol, sim_config(11, 4));
        let report = cluster.run(RunSpec::millis(1, 10));
        assert!(
            report.total_commits() > 100,
            "{protocol}: too few commits — {}",
            report.summary()
        );
        cluster.quiesce();
        assert_serializability_invariants(&cluster, &cfg, &protocol.to_string());
    }
}

#[test]
fn identical_seeds_yield_byte_identical_engine_reports() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let cfg = contended_config();
        let mut a = build_cluster(&cfg, NODES, protocol, sim_config(42, 3));
        let mut b = build_cluster(&cfg, NODES, protocol, sim_config(42, 3));
        let ra = a.run(RunSpec::millis(1, 8));
        let rb = b.run(RunSpec::millis(1, 8));
        assert_eq!(
            report_bytes(&ra),
            report_bytes(&rb),
            "{protocol}: identical seeds must reproduce byte-identical reports"
        );
        // The comparison must have teeth: a different seed must perturb it.
        let mut c = build_cluster(&cfg, NODES, protocol, sim_config(43, 3));
        let rc = c.run(RunSpec::millis(1, 8));
        assert_ne!(
            report_bytes(&ra),
            report_bytes(&rc),
            "{protocol}: seed is being ignored somewhere"
        );
    }
}

/// Build a transfer cluster whose hot set jumps from accounts 0..8 to
/// 200..208 at 3ms, with the online-adaptation loop on: by end of run the
/// planner must have detected the new hot set and migrated records.
fn adaptive_shifting_cluster(seed: u64, concurrency: usize) -> Cluster {
    let cfg = contended_config();
    let adaptive = AdaptiveConfig {
        epoch: Duration::from_millis(1),
        sample_every: 1,
        min_window_txns: 100,
        ..AdaptiveConfig::default()
    };
    build_shifting_cluster(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(seed, concurrency),
        SimTime::from_millis(3),
        200,
        Some(adaptive),
    )
}

#[test]
fn adaptive_migrations_preserve_balance_locks_and_replicas() {
    let mut cluster = adaptive_shifting_cluster(19, 4);
    let report = cluster.run(RunSpec::millis(1, 12));
    assert!(report.total_commits() > 100, "{}", report.summary());
    assert!(
        report.migrations_completed() > 0,
        "the shifted hot set must trigger live migrations \
         (stats: {:?})",
        cluster.adaptive_stats()
    );
    cluster.quiesce();

    // 1. The shared contract — balance conservation across completed
    //    migrations, no leaked locks, no zombie transactions, replicas
    //    matching primaries (including partitions records migrated into
    //    and out of).
    let cfg = contended_config();
    assert_serializability_invariants(&cluster, &cfg, "adaptive migrations");

    // 2. No lost or duplicated records: every account exists exactly once
    //    across the primaries.
    let total_records: usize = cluster
        .engines()
        .iter()
        .map(|e| e.store().num_records())
        .sum();
    assert_eq!(
        total_records, cfg.accounts as usize,
        "records lost or duplicated"
    );

    // 3. No zombie migrations (beyond the shared contract).
    for engine in cluster.engines() {
        assert_eq!(engine.open_migrations(), 0, "zombie migrations");
    }

    // 4. The directory routes every record to the partition that holds it.
    let dir = cluster.directory().expect("adaptive cluster").clone();
    for engine in cluster.engines() {
        let p = engine.store().partition;
        for (table, ts) in engine.store().tables() {
            for (key, _) in ts.iter() {
                let rid = RecordId::new(*table, *key);
                assert_eq!(
                    chiller_storage::placement::Placement::partition_of(&*dir, rid),
                    p,
                    "directory must route {rid} to its owner"
                );
            }
        }
    }
}

#[test]
fn adaptive_runs_are_byte_identical_per_seed() {
    let run = |seed| {
        let mut cluster = adaptive_shifting_cluster(seed, 3);
        let report = cluster.run(RunSpec::millis(1, 10));
        (report_bytes(&report), report.migrations_completed())
    };
    let (a, mig_a) = run(42);
    let (b, _) = run(42);
    assert!(mig_a > 0, "comparison must cover actual migrations");
    assert_eq!(
        a, b,
        "identical seeds must reproduce byte-identical reports with adaptation on"
    );
    let (c, _) = run(43);
    assert_ne!(a, c, "seed is being ignored somewhere in the adaptive path");
}

/// Determinism regression for the runtime-trait extraction: routing the
/// simulator through the backend-neutral `Runtime`/`Mailbox` surface (and
/// selecting it explicitly via `ClusterBuilder::runtime`) must not perturb
/// a single byte of the per-seed engine reports.
#[test]
fn explicit_sim_backend_is_byte_identical_to_default() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let cfg = contended_config();
        let mut default_build = build_cluster(&cfg, NODES, protocol, sim_config(42, 3));
        let mut explicit_build =
            build_cluster_on(&cfg, NODES, protocol, sim_config(42, 3), Backend::Simulated);
        assert_eq!(explicit_build.backend(), Backend::Simulated);
        let ra = default_build.run(RunSpec::millis(1, 8));
        let rb = explicit_build.run(RunSpec::millis(1, 8));
        assert_eq!(ra.backend, Backend::Simulated);
        assert_eq!(
            report_bytes(&ra),
            report_bytes(&rb),
            "{protocol}: explicit Backend::Simulated must be the same runtime"
        );
    }
}

/// Build a transfer cluster on the simulator with explicit trace and
/// check modes (everything else at the suite's defaults).
fn checked_cluster(protocol: Protocol, seed: u64, trace: TraceMode, check: CheckMode) -> Cluster {
    build_cluster_checked(
        &contended_config(),
        NODES,
        protocol,
        sim_config(seed, 4),
        Backend::Simulated,
        None,
        None,
        None,
        Some(trace),
        Some(check),
    )
}

/// The black-box serializability checker must certify every protocol's
/// recorded history on a green run — full-history mode and the bounded
/// sliding window both. This is the differential complement of the
/// balance-conservation witness: conservation catches lost money, the
/// checker catches any dependency cycle (including write skew, which a
/// sum invariant can never see).
#[test]
fn checker_certifies_every_protocol_on_green_runs() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        for check in [CheckMode::Full, CheckMode::Window(64)] {
            let mut cluster = checked_cluster(protocol, 11, TraceMode::Off, check);
            let report = cluster.run(RunSpec::millis(1, 8));
            assert!(
                report.total_commits() > 100,
                "{protocol}: too few commits to certify — {}",
                report.summary()
            );
            cluster.quiesce();
            assert_serializability_invariants(&cluster, &contended_config(), &protocol.to_string());
            let check_report = cluster.check_history();
            assert!(
                check_report.is_complete(),
                "{protocol} ({check:?}): recording ring overflowed — raise the buffer"
            );
            assert!(
                check_report.txns as u64 > 100,
                "{protocol} ({check:?}): checker saw almost no transactions — \
                 the recording hooks are not firing ({})",
                check_report.summary()
            );
            assert!(
                check_report.ok(),
                "{protocol} ({check:?}): serializability violations on a green run:\n{}",
                check_report
                    .violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}

/// History recording must be invisible to the execution: a run with the
/// checker (and tracing) on must be *byte-identical* to the same seed
/// with everything off. Recording uses no RNG, no metrics, and no
/// simulated CPU, so any divergence here means the observation layer
/// perturbed the system under test.
#[test]
fn checked_and_traced_runs_are_byte_identical_to_plain_runs() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let run = |trace: TraceMode, check: CheckMode| {
            let mut cluster = checked_cluster(protocol, 42, trace, check);
            let report = cluster.run(RunSpec::millis(1, 8));
            report_bytes(&report)
        };
        let plain = run(TraceMode::Off, CheckMode::Off);
        let checked = run(TraceMode::Off, CheckMode::Full);
        assert_eq!(
            plain, checked,
            "{protocol}: history recording perturbed the run"
        );
        let traced_checked = run(TraceMode::Full, CheckMode::Full);
        assert_eq!(
            plain, traced_checked,
            "{protocol}: tracing + checking together perturbed the run"
        );
    }
}

#[test]
fn chiller_throughput_beats_2pl_under_contention() {
    // The hot set is co-located on one partition (what the §4 partitioner
    // produces), so Chiller commits the contended inner region unilaterally
    // while 2PL holds hot locks across full 2PC round trips.
    let run = |protocol: Protocol| {
        let cfg = contended_config();
        let mut cluster = build_cluster(&cfg, NODES, protocol, sim_config(7, 6));
        let report = cluster.run(RunSpec::millis(2, 15));
        cluster.quiesce();
        assert_serializability_invariants(&cluster, &cfg, &format!("{protocol} under contention"));
        report
    };
    let chiller = run(Protocol::Chiller);
    let two_pl = run(Protocol::TwoPhaseLocking);
    assert!(
        chiller.throughput() >= two_pl.throughput(),
        "chiller {:.0} txn/s must be >= 2PL {:.0} txn/s under contention",
        chiller.throughput(),
        two_pl.throughput()
    );
}
