//! SmallBank certification suite: the write-heavy banking mix under the
//! black-box serializability checker, per execution backend.
//!
//! SmallBank is the checker's natural certification target: the mix is
//! write-heavy on a small hot set, includes read-modify-write (WriteCheck),
//! read-only (Balance), guarded (SendPayment), and multi-record sweep
//! (Amalgamate) shapes — i.e. every dependency-edge kind the checker
//! builds. Each backend's run must uphold the countable conservation
//! invariant *and* certify serializable from its recorded history.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_workload::smallbank::{
    assert_smallbank_invariants, build_cluster_checked, SmallBankConfig,
};

const NODES: usize = 4;

fn contended_config() -> SmallBankConfig {
    SmallBankConfig {
        accounts: 400,
        hot_accounts: 8,
        hot_fraction: 0.4,
    }
}

fn sim_config(seed: u64) -> SimConfig {
    let mut sim = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim.engine.concurrency = 4;
    sim
}

/// Simulated backend, all protocols, full-history check.
#[test]
fn smallbank_certifies_on_the_simulator() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let cfg = contended_config();
        let mut cluster = build_cluster_checked(
            &cfg,
            NODES,
            protocol,
            sim_config(13),
            Backend::Simulated,
            None,
            Some(CheckMode::Full),
        );
        let report = cluster.run(RunSpec::millis(0, 8));
        assert!(
            report.total_commits() > 100,
            "{protocol}: too few commits — {}",
            report.summary()
        );
        cluster.quiesce();
        assert_smallbank_invariants(&cluster, &cfg, &format!("{protocol} (sim)"));
        cluster.expect_serializable(&format!("smallbank {protocol} (sim)"));
    }
}

/// Threaded backend (one OS thread per engine), windowed check: wall-clock
/// interleavings, bounded checker memory.
#[test]
fn smallbank_certifies_on_the_threaded_backend() {
    let cfg = contended_config();
    let mut cluster = build_cluster_checked(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(17),
        Backend::Threaded,
        None,
        Some(CheckMode::Window(256)),
    );
    let report = cluster.run(RunSpec::millis(0, 100));
    assert!(
        report.total_commits() > 0,
        "threaded smallbank committed nothing — {}",
        report.summary()
    );
    cluster.quiesce();
    assert_smallbank_invariants(&cluster, &cfg, "chiller (threaded)");
    cluster.expect_serializable("smallbank chiller (threaded)");
}

/// Async worker-pool backend, both mailbox kinds.
#[test]
fn smallbank_certifies_on_the_async_backend() {
    for mailbox in [MailboxKind::Ring, MailboxKind::Channel] {
        let cfg = contended_config();
        let mut cluster = build_cluster_checked(
            &cfg,
            NODES,
            Protocol::Chiller,
            sim_config(19),
            Backend::Async,
            Some(mailbox),
            Some(CheckMode::Window(256)),
        );
        let report = cluster.run(RunSpec::millis(0, 100));
        assert!(
            report.total_commits() > 0,
            "async smallbank ({mailbox}) committed nothing — {}",
            report.summary()
        );
        cluster.quiesce();
        assert_smallbank_invariants(&cluster, &cfg, &format!("chiller (async, {mailbox})"));
        cluster.expect_serializable(&format!("smallbank chiller (async, {mailbox})"));
    }
}

/// A checked SmallBank run on the simulator is byte-identical to an
/// unchecked one (the observation layer must not perturb the system).
#[test]
fn smallbank_checked_run_is_byte_identical_to_unchecked() {
    let run = |check: CheckMode| {
        let cfg = contended_config();
        let mut cluster = build_cluster_checked(
            &cfg,
            NODES,
            Protocol::Chiller,
            sim_config(23),
            Backend::Simulated,
            None,
            Some(check),
        );
        let report = cluster.run(RunSpec::millis(0, 8));
        format!("{:?}", report.per_node)
    };
    assert_eq!(
        run(CheckMode::Off),
        run(CheckMode::Full),
        "history recording perturbed the smallbank run"
    );
}
