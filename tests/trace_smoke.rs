//! Trace smoke on the wall-clock backends: a fully-traced run on the
//! threaded and async backends must produce a Chrome `trace_event` document
//! that actually parses (validated with the workspace's strict JSON shim,
//! render → parse round-trip included), carry the lifecycle spans the
//! exporters promise, and report non-trivial runtime telemetry.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_workload::tpcc::{build_tpcc_cluster_traced, TpccConfig, TpccMix};
use chiller_workload::transfer::{build_cluster_traced, TransferConfig};
use serde::json;

const NODES: usize = 4;

fn contended_config() -> TransferConfig {
    TransferConfig {
        accounts: 400,
        hot_set: 8,
        hot_fraction: 0.5,
    }
}

fn run_traced(backend: Backend) -> (RunReport, TraceLog) {
    let mut sim = SimConfig {
        seed: 71,
        ..SimConfig::default()
    };
    sim.engine.concurrency = 4;
    let mut cluster = build_cluster_traced(
        &contended_config(),
        NODES,
        Protocol::Chiller,
        sim,
        backend,
        Some(MailboxKind::Ring),
        Some(PinPolicy::Off),
        Some(2),
        Some(TraceMode::Full),
    );
    // No warm-up (a warm-up reset would discard the begin events of spans
    // straddling the boundary), and short windows: every `run_more` drains
    // the trace rings, so a fast host cannot overflow them mid-run.
    let mut report = cluster.run(RunSpec::millis(0, 15));
    for _ in 0..7 {
        report = cluster.run_more(Duration::from_millis(15));
    }
    cluster.quiesce();
    let log = cluster.take_trace();
    (report, log)
}

/// Count events in a drained log by exporter tag.
fn count(log: &TraceLog, tag: &str) -> usize {
    log.events.iter().filter(|e| e.kind.tag() == tag).count()
}

fn assert_chrome_trace_parses(backend: Backend, report: &RunReport, log: &TraceLog) {
    assert_eq!(
        log.dropped, 0,
        "{backend}: rings overflowed despite per-window drains"
    );
    assert!(
        count(log, "txn_begin") > 0 && count(log, "txn_commit") > 0,
        "{backend}: lifecycle spans missing from the log"
    );
    assert!(
        count(log, "lock_acquire") > 0 && count(log, "send_hop") > 0,
        "{backend}: full mode must record lock spans and hops"
    );

    let chrome = log.to_chrome_trace();
    let doc = json::parse(&chrome)
        .unwrap_or_else(|e| panic!("{backend}: Chrome trace is not valid JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("{backend}: no traceEvents array"));
    assert!(!events.is_empty(), "{backend}: empty traceEvents");

    // Every event is an object with the Chrome-required phase field, and
    // the nestable async span pairs the engine spans are built from exist.
    let mut begins = 0usize;
    let mut ends = 0usize;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("{backend}: event without ph: {ev:?}"));
        match ph {
            "b" => begins += 1,
            "e" => ends += 1,
            _ => {}
        }
    }
    assert!(begins > 0, "{backend}: no span begins");
    assert_eq!(
        ends, begins,
        "{backend}: every attempt span must close (commit or abort)"
    );

    // Abort spans must carry their structured reason into the args.
    if report.total_aborts() > 0 {
        assert!(
            chrome.contains("\"reason\":\"no_wait_conflict\""),
            "{backend}: aborted run lost its abort reasons"
        );
    }

    // The shim renderer is structurally faithful: render → parse must
    // reproduce the same document (serde-shim round-trip).
    let rendered = json::render(&doc);
    let reparsed = json::parse(&rendered).expect("rendered JSON must reparse");
    assert_eq!(doc, reparsed, "{backend}: render/parse round-trip diverged");

    // The JSONL exporter: every line is one standalone JSON object.
    for line in log.to_jsonl().lines() {
        let obj =
            json::parse(line).unwrap_or_else(|e| panic!("{backend}: bad JSONL line {line:?}: {e}"));
        assert!(obj.get("kind").is_some(), "{backend}: JSONL line sans kind");
    }
}

#[test]
fn threaded_full_trace_exports_parse() {
    let (report, log) = run_traced(Backend::Threaded);
    assert!(report.total_commits() > 0, "{}", report.summary());
    assert_chrome_trace_parses(Backend::Threaded, &report, &log);

    // Telemetry must reflect a real threaded run and reach the report.
    assert!(report.telemetry.batches_drained > 0);
    assert_eq!(report.mailbox, Some(MailboxKind::Ring));
    let prom = report.prometheus();
    assert!(prom.contains("chiller_run_info{backend=\"threaded\",mailbox=\"ring\""));
    assert!(prom.contains("chiller_runtime_batches_drained"));
}

/// The paper-headline workload under full tracing, on every backend: a
/// 4-warehouse full-mix TPC-C run traced with `TraceMode::Full` must
/// export a Chrome-loadable timeline with attempt spans, lock spans,
/// hops, and structured abort reasons — simulated, threaded, and async.
#[test]
fn tpcc_full_trace_all_backends() {
    for backend in [Backend::Simulated, Backend::Threaded, Backend::Async] {
        let mut sim = SimConfig {
            seed: 13,
            ..SimConfig::default()
        };
        sim.engine.concurrency = 4;
        let mut cluster = build_tpcc_cluster_traced(
            &TpccConfig::with_warehouses(4),
            TpccMix::default(),
            Protocol::Chiller,
            sim,
            backend,
            Some(TraceMode::Full),
        );
        let mut report = cluster.run(RunSpec::millis(0, 10));
        for _ in 0..3 {
            report = cluster.run_more(Duration::from_millis(10));
        }
        cluster.quiesce();
        let log = cluster.take_trace();
        assert!(
            report.total_commits() > 0,
            "{backend}: {}",
            report.summary()
        );
        assert_chrome_trace_parses(backend, &report, &log);
    }
}

#[test]
fn async_full_trace_exports_parse() {
    let (report, log) = run_traced(Backend::Async);
    assert!(report.total_commits() > 0, "{}", report.summary());
    assert_chrome_trace_parses(Backend::Async, &report, &log);

    // The async pool's telemetry: tasks flowed, and the report knows the
    // pool size it came from.
    assert!(report.telemetry.batches_drained > 0);
    assert!(report.telemetry.tasks_popped > 0);
    assert_eq!(report.workers, 2);
    assert!(report
        .prometheus()
        .contains("chiller_run_info{backend=\"async\",mailbox=\"ring\",workers=\"2\""));
}
