//! Threaded-backend stress suite: the same serializability contract the
//! simulator's parity suite enforces, exercised under *real* parallelism.
//!
//! Four engines on four OS threads hammer the contended transfer workload
//! per protocol; at quiescence the cluster must show balance conservation,
//! no leaked locks, no zombie transactions, and zero replica divergence —
//! any cross-thread race in the protocol layer (messages reordered beyond
//! per-link FIFO, lost wakeups, double-applied writes) surfaces here as a
//! violated invariant.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_common::ids::NodeId;
use chiller_simnet::{Actor, Ctx, Runtime, ThreadedRuntime, Verb};
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster_on, TransferConfig,
};

const NODES: usize = 4;

fn contended_config() -> TransferConfig {
    TransferConfig {
        accounts: 400,
        hot_set: 8,
        hot_fraction: 0.5,
    }
}

fn sim_config(seed: u64, concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

/// Run one protocol on the threaded backend for `measure_ms` of wall time
/// and return the quiesced cluster plus its report.
fn run_threaded(protocol: Protocol, measure_ms: u64) -> (Cluster, RunReport) {
    let cfg = contended_config();
    let mut cluster = build_cluster_on(&cfg, NODES, protocol, sim_config(11, 4), Backend::Threaded);
    assert_eq!(cluster.backend(), Backend::Threaded);
    let report = cluster.run(RunSpec::millis(10, measure_ms));
    cluster.quiesce();
    (cluster, report)
}

#[test]
fn threaded_backend_upholds_invariants_under_all_protocols() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let (cluster, report) = run_threaded(protocol, 150);
        assert!(
            report.total_commits() > 0,
            "{protocol}: no transactions committed on the threaded backend — {}",
            report.summary()
        );
        assert_serializability_invariants(
            &cluster,
            &contended_config(),
            &format!("{protocol} (threaded)"),
        );
    }
}

#[test]
fn threaded_reports_are_labelled_and_wall_clocked() {
    let (_, report) = run_threaded(Protocol::Chiller, 80);
    assert_eq!(report.backend, Backend::Threaded);
    // On the threaded backend the measured window *is* wall time: the two
    // clocks must agree to well within the scheduling slop of a pause.
    let elapsed_ms = report.elapsed.as_nanos() as f64 / 1e6;
    let wall_ms = report.wall_elapsed.as_secs_f64() * 1e3;
    assert!(
        (elapsed_ms - wall_ms).abs() < 50.0,
        "threaded elapsed ({elapsed_ms:.1}ms) and wall ({wall_ms:.1}ms) diverged"
    );
    assert!(
        report.wall_throughput() > 0.0,
        "wall throughput must be measurable"
    );
}

/// Raw-runtime stress actor: floods every peer with sequenced payloads at
/// start and records arrivals per source, so per-link FIFO can be checked
/// exactly after the run.
struct Flood {
    nodes: usize,
    per_link: u64,
    /// `seen[src]` = payloads received from `src`, in arrival order.
    seen: Vec<Vec<u64>>,
}

impl Actor<u64> for Flood {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.node().idx();
        for dst in 0..self.nodes {
            if dst == me {
                continue;
            }
            for i in 0..self.per_link {
                ctx.send(NodeId(dst as u32), Verb::OneSided, i);
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, src: NodeId, _verb: Verb, msg: u64) {
        self.seen[src.idx()].push(msg);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _token: u64) {}
}

/// Batched-draining regression: an all-pairs flood through tiny mailboxes
/// forces every hot-path mechanism at once — channel overflow into the
/// parked-send queues, per-batch flushes, interleaved drains on every
/// worker — and per-link FIFO must still hold exactly: each node sees each
/// peer's payloads complete and in send order.
#[test]
fn batched_draining_preserves_per_link_fifo_under_flood() {
    let per_link = 2_000u64;
    let actors: Vec<Flood> = (0..NODES)
        .map(|_| Flood {
            nodes: NODES,
            per_link,
            seen: (0..NODES).map(|_| Vec::new()).collect(),
        })
        .collect();
    // Capacity 8 guarantees most sends overflow into the parked queues.
    let mut rt = ThreadedRuntime::with_mailbox_capacity(actors, 8);
    rt.run_to_quiescence(u64::MAX);
    let expect: Vec<u64> = (0..per_link).collect();
    for (n, actor) in rt.actors().iter().enumerate() {
        for (src, seen) in actor.seen.iter().enumerate() {
            if src == n {
                assert!(seen.is_empty(), "node {n} got messages from itself");
                continue;
            }
            assert_eq!(
                seen, &expect,
                "link {src}->{n}: payloads lost or reordered under batching"
            );
        }
    }
    let stats = rt.stats();
    let links = (NODES * (NODES - 1)) as u64;
    assert_eq!(stats.events_processed, links * per_link);
}

/// Ring-relay actor for quiescence stress: forwards each payload (a hop
/// countdown) to the next node in the ring.
struct Ring {
    next: NodeId,
    relayed: u64,
}

impl Actor<u64> for Ring {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, u64>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: NodeId, verb: Verb, msg: u64) {
        self.relayed += 1;
        if msg > 0 {
            ctx.send(self.next, verb, msg - 1);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _token: u64) {}
}

/// Quiescence-detection regression: with batched bookkeeping the
/// outstanding-work counter is published per batch, not per event; long
/// concurrent relay cascades must still run to completion — an early
/// quiescence verdict would cut a cascade short and break the hop count.
#[test]
fn quiescence_detection_survives_batching() {
    let cascades = 8u64;
    let hops = 5_000u64;
    let actors: Vec<Ring> = (0..NODES)
        .map(|n| Ring {
            next: NodeId(((n + 1) % NODES) as u32),
            relayed: 0,
        })
        .collect();
    let mut rt = ThreadedRuntime::new(actors);
    // Seed the cascades from the control plane, spread around the ring.
    for c in 0..cascades {
        rt.with_actor_ctx(NodeId((c % NODES as u64) as u32), &mut |_a, ctx| {
            let next = NodeId(((ctx.node().idx() + 1) % NODES) as u32);
            ctx.send(next, Verb::OneSided, hops - 1);
        });
    }
    rt.run_to_quiescence(u64::MAX);
    let total: u64 = rt.actors().iter().map(|a| a.relayed).sum();
    assert_eq!(
        total,
        cascades * hops,
        "a cascade was cut short by a premature quiescence verdict"
    );
}

#[test]
fn threaded_backend_survives_repeated_run_windows() {
    // Pause/resume across windows: in-flight work must survive each pause
    // (run → run_more → quiesce) without losing messages or leaking locks.
    let cfg = contended_config();
    let mut cluster = build_cluster_on(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(23, 4),
        Backend::Threaded,
    );
    let first = cluster.run(RunSpec::millis(5, 40));
    let more = cluster.run_more(Duration::from_millis(40));
    assert!(
        first.total_commits() + more.total_commits() > 0,
        "windows must commit work"
    );
    cluster.quiesce();
    assert_serializability_invariants(&cluster, &cfg, "chiller windows (threaded)");
}
