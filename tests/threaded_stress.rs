//! Threaded-backend stress suite: the same serializability contract the
//! simulator's parity suite enforces, exercised under *real* parallelism.
//!
//! Four engines on four OS threads hammer the contended transfer workload
//! per protocol; at quiescence the cluster must show balance conservation,
//! no leaked locks, no zombie transactions, and zero replica divergence —
//! any cross-thread race in the protocol layer (messages reordered beyond
//! per-link FIFO, lost wakeups, double-applied writes) surfaces here as a
//! violated invariant.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_common::ids::NodeId;
use chiller_simnet::{Actor, Ctx, Runtime, ThreadedConfig, ThreadedRuntime, Verb};
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster_on, build_cluster_tuned, TransferConfig,
};

const NODES: usize = 4;

fn contended_config() -> TransferConfig {
    TransferConfig {
        accounts: 400,
        hot_set: 8,
        hot_fraction: 0.5,
    }
}

fn sim_config(seed: u64, concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

/// Run one protocol on the threaded backend for `measure_ms` of wall time
/// and return the quiesced cluster plus its report.
fn run_threaded(protocol: Protocol, measure_ms: u64) -> (Cluster, RunReport) {
    let cfg = contended_config();
    let mut cluster = build_cluster_on(&cfg, NODES, protocol, sim_config(11, 4), Backend::Threaded);
    assert_eq!(cluster.backend(), Backend::Threaded);
    let report = cluster.run(RunSpec::millis(10, measure_ms));
    cluster.quiesce();
    (cluster, report)
}

#[test]
fn threaded_backend_upholds_invariants_under_all_protocols() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let (cluster, report) = run_threaded(protocol, 150);
        assert!(
            report.total_commits() > 0,
            "{protocol}: no transactions committed on the threaded backend — {}",
            report.summary()
        );
        assert_serializability_invariants(
            &cluster,
            &contended_config(),
            &format!("{protocol} (threaded)"),
        );
    }
}

/// The same serializability contract under *explicit* mailbox choices —
/// independent of the `CHILLER_MAILBOX` environment, so a default flip
/// can never silently drop coverage of either implementation.
#[test]
fn both_mailbox_implementations_uphold_invariants() {
    let cfg = contended_config();
    for mailbox in [MailboxKind::Ring, MailboxKind::Channel] {
        let mut cluster = build_cluster_tuned(
            &cfg,
            NODES,
            Protocol::Chiller,
            sim_config(31, 4),
            Backend::Threaded,
            Some(mailbox),
            Some(PinPolicy::Off),
        );
        let report = cluster.run(RunSpec::millis(10, 120));
        assert!(
            report.total_commits() > 0,
            "{mailbox} mailboxes committed nothing"
        );
        assert!(!report.pinned, "pinning was off");
        cluster.quiesce();
        assert_serializability_invariants(&cluster, &cfg, &format!("chiller ({mailbox} mailbox)"));
    }
}

/// Core pinning end to end: a pinned chiller run must commit, report
/// `pinned = true` (on Linux), and uphold the full contract — including
/// with the initial rows loaded by the pinned engine threads themselves
/// (the first-touch staging path).
#[test]
fn pinned_run_upholds_invariants_and_reports_pinned() {
    let cfg = contended_config();
    let mut cluster = build_cluster_tuned(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(37, 4),
        Backend::Threaded,
        Some(MailboxKind::Ring),
        Some(PinPolicy::Cores),
    );
    let report = cluster.run(RunSpec::millis(10, 120));
    assert!(report.total_commits() > 0, "pinned run committed nothing");
    if cfg!(target_os = "linux") {
        assert!(report.pinned, "Linux pinned run must report pinned");
    }
    cluster.quiesce();
    assert_serializability_invariants(&cluster, &cfg, "chiller (pinned)");
}

#[test]
fn threaded_reports_are_labelled_and_wall_clocked() {
    let (_, report) = run_threaded(Protocol::Chiller, 80);
    assert_eq!(report.backend, Backend::Threaded);
    // On the threaded backend the measured window *is* wall time: the two
    // clocks must agree to well within the scheduling slop of a pause.
    let elapsed_ms = report.elapsed.as_nanos() as f64 / 1e6;
    let wall_ms = report.wall_elapsed.as_secs_f64() * 1e3;
    assert!(
        (elapsed_ms - wall_ms).abs() < 50.0,
        "threaded elapsed ({elapsed_ms:.1}ms) and wall ({wall_ms:.1}ms) diverged"
    );
    assert!(
        report.wall_throughput() > 0.0,
        "wall throughput must be measurable"
    );
}

/// Raw-runtime stress actor: floods every peer with sequenced payloads at
/// start and records arrivals per source, so per-link FIFO can be checked
/// exactly after the run.
struct Flood {
    nodes: usize,
    per_link: u64,
    /// `seen[src]` = payloads received from `src`, in arrival order.
    seen: Vec<Vec<u64>>,
}

impl Actor<u64> for Flood {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.node().idx();
        for dst in 0..self.nodes {
            if dst == me {
                continue;
            }
            for i in 0..self.per_link {
                ctx.send(NodeId(dst as u32), Verb::OneSided, i);
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, src: NodeId, _verb: Verb, msg: u64) {
        self.seen[src.idx()].push(msg);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _token: u64) {}
}

/// Run the all-pairs flood with an explicit mailbox implementation and
/// capacity, returning `seen[node][src]` = the payload sequence each node
/// observed from each peer. Asserts completeness (event count) but leaves
/// order checking to the caller.
fn run_flood(mailbox: MailboxKind, capacity: usize, per_link: u64) -> Vec<Vec<Vec<u64>>> {
    let actors: Vec<Flood> = (0..NODES)
        .map(|_| Flood {
            nodes: NODES,
            per_link,
            seen: (0..NODES).map(|_| Vec::new()).collect(),
        })
        .collect();
    let mut rt = ThreadedRuntime::with_config(
        actors,
        ThreadedConfig {
            capacity,
            mailbox,
            pin: PinPolicy::Off,
        },
    );
    rt.run_to_quiescence(u64::MAX);
    let links = (NODES * (NODES - 1)) as u64;
    assert_eq!(
        rt.stats().events_processed,
        links * per_link,
        "{mailbox} capacity-{capacity} flood lost messages"
    );
    rt.actors().iter().map(|a| a.seen.clone()).collect()
}

/// Assert every link's payload sequence is complete and in send order.
fn assert_links_fifo(seen: &[Vec<Vec<u64>>], per_link: u64, label: &str) {
    let expect: Vec<u64> = (0..per_link).collect();
    for (n, node_seen) in seen.iter().enumerate() {
        for (src, link) in node_seen.iter().enumerate() {
            if src == n {
                assert!(
                    link.is_empty(),
                    "{label}: node {n} got messages from itself"
                );
                continue;
            }
            assert_eq!(
                link, &expect,
                "{label}: link {src}->{n} payloads lost or reordered"
            );
        }
    }
}

/// Batched-draining regression: an all-pairs flood through tiny mailboxes
/// forces every hot-path mechanism at once — mailbox overflow into the
/// parked-send queues, per-batch flushes, interleaved drains on every
/// worker — and per-link FIFO must still hold exactly: each node sees each
/// peer's payloads complete and in send order. Runs under whichever
/// mailbox `CHILLER_MAILBOX` selects (CI runs both).
#[test]
fn batched_draining_preserves_per_link_fifo_under_flood() {
    let per_link = 2_000u64;
    let actors: Vec<Flood> = (0..NODES)
        .map(|_| Flood {
            nodes: NODES,
            per_link,
            seen: (0..NODES).map(|_| Vec::new()).collect(),
        })
        .collect();
    // Capacity 8 guarantees most sends overflow into the parked queues.
    let mut rt = ThreadedRuntime::with_mailbox_capacity(actors, 8);
    rt.run_to_quiescence(u64::MAX);
    let seen: Vec<Vec<Vec<u64>>> = rt.actors().iter().map(|a| a.seen.clone()).collect();
    assert_links_fifo(&seen, per_link, "env-default mailbox");
    let stats = rt.stats();
    let links = (NODES * (NODES - 1)) as u64;
    assert_eq!(stats.events_processed, links * per_link);
}

/// Differential per-link FIFO: the channel backend is the oracle — its
/// per-link sequences are asserted against the contract directly — and
/// the ring backend's correctness is then established *only* through the
/// cross-backend comparison, so the ring is deliberately not checked
/// against the expected sequence itself: if ring delivery ever reordered
/// or dropped a payload, this is the assert that names the diverging
/// link. (Cross-link interleaving is scheduler noise on both backends;
/// the per-link sequence is the contract.)
#[test]
fn ring_delivery_order_matches_channel_per_link() {
    let per_link = 2_000u64;
    let ring = run_flood(MailboxKind::Ring, 8, per_link);
    let channel = run_flood(MailboxKind::Channel, 8, per_link);
    assert_links_fifo(&channel, per_link, "channel (oracle)");
    assert_eq!(
        ring, channel,
        "ring mailboxes diverged from the channel oracle on some link's delivery order"
    );
}

/// Capacity-1 rings under the all-pairs flood: every slot contends, every
/// flush stalls, the wakeup handshake fires constantly — the worst case
/// for the sequence-slot protocol's full/empty boundary.
#[test]
fn capacity_one_rings_survive_all_pairs_flood() {
    let per_link = 500u64;
    let seen = run_flood(MailboxKind::Ring, 1, per_link);
    assert_links_fifo(&seen, per_link, "capacity-1 ring");
}

/// Ring-relay actor for quiescence stress: forwards each payload (a hop
/// countdown) to the next node in the ring.
struct Ring {
    next: NodeId,
    relayed: u64,
}

impl Actor<u64> for Ring {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, u64>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: NodeId, verb: Verb, msg: u64) {
        self.relayed += 1;
        if msg > 0 {
            ctx.send(self.next, verb, msg - 1);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _token: u64) {}
}

/// Quiescence-detection regression: with batched bookkeeping the
/// outstanding-work counter is published per batch, not per event; long
/// concurrent relay cascades must still run to completion — an early
/// quiescence verdict would cut a cascade short and break the hop count.
/// Pinned to ring mailboxes explicitly: the ring path replaces the
/// channel's blocking receive with the park/unpark handshake, and a lost
/// wakeup or a mis-ordered delta publication would surface here as a
/// cascade cut short or a hang.
#[test]
fn quiescence_detection_survives_batching() {
    let cascades = 8u64;
    let hops = 5_000u64;
    let actors: Vec<Ring> = (0..NODES)
        .map(|n| Ring {
            next: NodeId(((n + 1) % NODES) as u32),
            relayed: 0,
        })
        .collect();
    let mut rt = ThreadedRuntime::with_config(
        actors,
        ThreadedConfig {
            capacity: chiller_simnet::DEFAULT_MAILBOX_CAPACITY,
            mailbox: MailboxKind::Ring,
            pin: PinPolicy::Off,
        },
    );
    // Seed the cascades from the control plane, spread around the ring.
    for c in 0..cascades {
        rt.with_actor_ctx(NodeId((c % NODES as u64) as u32), &mut |_a, ctx| {
            let next = NodeId(((ctx.node().idx() + 1) % NODES) as u32);
            ctx.send(next, Verb::OneSided, hops - 1);
        });
    }
    rt.run_to_quiescence(u64::MAX);
    let total: u64 = rt.actors().iter().map(|a| a.relayed).sum();
    assert_eq!(
        total,
        cascades * hops,
        "a cascade was cut short by a premature quiescence verdict"
    );
}

#[test]
fn threaded_backend_survives_repeated_run_windows() {
    // Pause/resume across windows: in-flight work must survive each pause
    // (run → run_more → quiesce) without losing messages or leaking locks.
    let cfg = contended_config();
    let mut cluster = build_cluster_on(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(23, 4),
        Backend::Threaded,
    );
    let first = cluster.run(RunSpec::millis(5, 40));
    let more = cluster.run_more(Duration::from_millis(40));
    assert!(
        first.total_commits() + more.total_commits() > 0,
        "windows must commit work"
    );
    cluster.quiesce();
    assert_serializability_invariants(&cluster, &cfg, "chiller windows (threaded)");
}
