//! Threaded-backend stress suite: the same serializability contract the
//! simulator's parity suite enforces, exercised under *real* parallelism.
//!
//! Four engines on four OS threads hammer the contended transfer workload
//! per protocol; at quiescence the cluster must show balance conservation,
//! no leaked locks, no zombie transactions, and zero replica divergence —
//! any cross-thread race in the protocol layer (messages reordered beyond
//! per-link FIFO, lost wakeups, double-applied writes) surfaces here as a
//! violated invariant.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster_on, TransferConfig,
};

const NODES: usize = 4;

fn contended_config() -> TransferConfig {
    TransferConfig {
        accounts: 400,
        hot_set: 8,
        hot_fraction: 0.5,
    }
}

fn sim_config(seed: u64, concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

/// Run one protocol on the threaded backend for `measure_ms` of wall time
/// and return the quiesced cluster plus its report.
fn run_threaded(protocol: Protocol, measure_ms: u64) -> (Cluster, RunReport) {
    let cfg = contended_config();
    let mut cluster = build_cluster_on(&cfg, NODES, protocol, sim_config(11, 4), Backend::Threaded);
    assert_eq!(cluster.backend(), Backend::Threaded);
    let report = cluster.run(RunSpec::millis(10, measure_ms));
    cluster.quiesce();
    (cluster, report)
}

#[test]
fn threaded_backend_upholds_invariants_under_all_protocols() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let (cluster, report) = run_threaded(protocol, 150);
        assert!(
            report.total_commits() > 0,
            "{protocol}: no transactions committed on the threaded backend — {}",
            report.summary()
        );
        assert_serializability_invariants(
            &cluster,
            &contended_config(),
            &format!("{protocol} (threaded)"),
        );
    }
}

#[test]
fn threaded_reports_are_labelled_and_wall_clocked() {
    let (_, report) = run_threaded(Protocol::Chiller, 80);
    assert_eq!(report.backend, Backend::Threaded);
    // On the threaded backend the measured window *is* wall time: the two
    // clocks must agree to well within the scheduling slop of a pause.
    let elapsed_ms = report.elapsed.as_nanos() as f64 / 1e6;
    let wall_ms = report.wall_elapsed.as_secs_f64() * 1e3;
    assert!(
        (elapsed_ms - wall_ms).abs() < 50.0,
        "threaded elapsed ({elapsed_ms:.1}ms) and wall ({wall_ms:.1}ms) diverged"
    );
    assert!(
        report.wall_throughput() > 0.0,
        "wall throughput must be measurable"
    );
}

#[test]
fn threaded_backend_survives_repeated_run_windows() {
    // Pause/resume across windows: in-flight work must survive each pause
    // (run → run_more → quiesce) without losing messages or leaking locks.
    let cfg = contended_config();
    let mut cluster = build_cluster_on(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(23, 4),
        Backend::Threaded,
    );
    let first = cluster.run(RunSpec::millis(5, 40));
    let more = cluster.run_more(Duration::from_millis(40));
    assert!(
        first.total_commits() + more.total_commits() > 0,
        "windows must commit work"
    );
    cluster.quiesce();
    assert_serializability_invariants(&cluster, &cfg, "chiller windows (threaded)");
}
