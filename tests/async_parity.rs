//! Async-backend differential parity suite.
//!
//! The async backend multiplexes engines onto a fixed worker pool against
//! a wall clock, so its runs are *not* byte-reproducible — parity with
//! the deterministic simulator is instead established differentially:
//! for each seed and protocol, the async run and the simulated oracle
//! run must both uphold the full serializability contract at quiescence
//! (balance conservation, no leaked locks, no zombie transactions, zero
//! replica divergence). Any executor bug that reorders messages beyond
//! per-link FIFO, loses a wakeup, or quiesces early surfaces here as a
//! violated invariant on the async side that the oracle side rules out
//! as a workload/protocol problem.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster, build_cluster_checked, build_cluster_scaled,
    TransferConfig,
};

const NODES: usize = 4;

fn contended_config() -> TransferConfig {
    TransferConfig {
        accounts: 400,
        hot_set: 8,
        hot_fraction: 0.5,
    }
}

fn sim_config(seed: u64, concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

/// Run one protocol on the async backend with an explicit pool size and
/// mailbox kind, quiesce, and return the cluster plus its report.
fn run_async(
    protocol: Protocol,
    seed: u64,
    mailbox: MailboxKind,
    workers: usize,
    measure_ms: u64,
) -> (Cluster, RunReport) {
    let cfg = contended_config();
    let mut cluster = build_cluster_scaled(
        &cfg,
        NODES,
        protocol,
        sim_config(seed, 4),
        Backend::Async,
        Some(mailbox),
        Some(PinPolicy::Off),
        Some(workers),
    );
    assert_eq!(cluster.backend(), Backend::Async);
    let report = cluster.run(RunSpec::millis(10, measure_ms));
    cluster.quiesce();
    (cluster, report)
}

/// The differential core: same seeds, async execution vs the simulated
/// oracle, full invariant set on both sides, every protocol. Covers both
/// mailbox implementations explicitly so a `CHILLER_MAILBOX` default
/// flip can never silently drop coverage.
#[test]
fn async_and_simulated_uphold_the_same_contract_per_seed() {
    for (seed, mailbox) in [(11, MailboxKind::Ring), (31, MailboxKind::Channel)] {
        for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
            let cfg = contended_config();

            // Async side: real pool, wall clock.
            let (cluster, report) = run_async(protocol, seed, mailbox, 2, 120);
            assert!(
                report.total_commits() > 0,
                "{protocol} seed {seed} ({mailbox}): async backend committed nothing — {}",
                report.summary()
            );
            assert_serializability_invariants(
                &cluster,
                &cfg,
                &format!("{protocol} seed {seed} (async, {mailbox})"),
            );

            // Oracle side: the deterministic simulator on the same seed.
            let mut oracle = build_cluster(&cfg, NODES, protocol, sim_config(seed, 4));
            let oracle_report = oracle.run(RunSpec::millis(1, 10));
            assert!(
                oracle_report.total_commits() > 0,
                "{protocol} seed {seed}: oracle committed nothing"
            );
            oracle.quiesce();
            assert_serializability_invariants(
                &oracle,
                &cfg,
                &format!("{protocol} seed {seed} (simulated oracle)"),
            );
        }
    }
}

/// Reports must identify the backend and the pool that produced them:
/// `backend = Async`, `workers` = the requested pool size (clamped), and
/// the measured window tracks wall time like the threaded backend's.
#[test]
fn async_reports_are_labelled_with_backend_and_workers() {
    let (_, report) = run_async(Protocol::Chiller, 17, MailboxKind::Ring, 2, 80);
    assert_eq!(report.backend, Backend::Async);
    assert_eq!(report.workers, 2, "report must carry the pool size");
    let elapsed_ms = report.elapsed.as_nanos() as f64 / 1e6;
    let wall_ms = report.wall_elapsed.as_secs_f64() * 1e3;
    assert!(
        (elapsed_ms - wall_ms).abs() < 50.0,
        "async elapsed ({elapsed_ms:.1}ms) and wall ({wall_ms:.1}ms) diverged"
    );
    assert!(report.wall_throughput() > 0.0);

    // The other backends' labels stay distinct: the simulator reports
    // zero workers (it runs on the calling thread).
    let cfg = contended_config();
    let mut oracle = build_cluster(&cfg, NODES, Protocol::Chiller, sim_config(17, 4));
    let oracle_report = oracle.run(RunSpec::millis(1, 5));
    assert_eq!(oracle_report.backend, Backend::Simulated);
    assert_eq!(oracle_report.workers, 0, "the simulator has no workers");
}

/// The contract must hold at every pool size — 1 worker (pure
/// multiplexing, no parallelism), an undersized pool, and one worker per
/// engine (the threaded backend's shape on the async executor).
#[test]
fn every_pool_size_upholds_invariants() {
    let cfg = contended_config();
    for workers in [1usize, 2, NODES] {
        let (cluster, report) = run_async(Protocol::Chiller, 23, MailboxKind::Ring, workers, 100);
        assert!(
            report.total_commits() > 0,
            "{workers}-worker pool committed nothing"
        );
        assert_eq!(report.workers, workers);
        assert_serializability_invariants(&cluster, &cfg, &format!("chiller ({workers} workers)"));
    }
}

/// Pause/resume across run windows on the async backend: in-flight work
/// must survive each pause (run → run_more → quiesce) without losing
/// messages or leaking locks — the phase-boundary moves of engines in
/// and out of the worker pool are the mechanism under test.
#[test]
fn async_backend_survives_repeated_run_windows() {
    let cfg = contended_config();
    let mut cluster = build_cluster_scaled(
        &cfg,
        NODES,
        Protocol::Chiller,
        sim_config(23, 4),
        Backend::Async,
        Some(MailboxKind::Ring),
        Some(PinPolicy::Off),
        Some(2),
    );
    let first = cluster.run(RunSpec::millis(5, 40));
    let more = cluster.run_more(Duration::from_millis(40));
    assert!(
        first.total_commits() + more.total_commits() > 0,
        "windows must commit work"
    );
    cluster.quiesce();
    assert_serializability_invariants(&cluster, &cfg, "chiller windows (async)");
}

/// The serializability checker on the async backend, both mailbox kinds:
/// engines run on real threads against a wall clock, so the recorded
/// history exercises genuinely concurrent interleavings (not the
/// simulator's serial event loop). Every protocol's history must still
/// certify clean — an executor bug that reorders messages beyond
/// per-link FIFO surfaces here as a dependency cycle even when the
/// balance sum happens to survive.
#[test]
fn checker_certifies_async_runs_on_both_mailboxes() {
    for (seed, mailbox) in [(11u64, MailboxKind::Ring), (31, MailboxKind::Channel)] {
        for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
            let cfg = contended_config();
            let mut cluster = build_cluster_checked(
                &cfg,
                NODES,
                protocol,
                sim_config(seed, 4),
                Backend::Async,
                Some(mailbox),
                Some(PinPolicy::Off),
                Some(2),
                Some(TraceMode::Off),
                Some(CheckMode::Window(256)),
            );
            let report = cluster.run(RunSpec::millis(10, 100));
            assert!(
                report.total_commits() > 0,
                "{protocol} ({mailbox}): committed nothing — {}",
                report.summary()
            );
            cluster.quiesce();
            assert_serializability_invariants(
                &cluster,
                &cfg,
                &format!("{protocol} (async checked, {mailbox})"),
            );
            cluster.expect_serializable(&format!("{protocol} (async, {mailbox})"));
        }
    }
}

/// The multiplexing headline at cluster level: many more partitions than
/// workers, full contract at drain. (The 1000-partition version runs in
/// `bench_async_scale`; this keeps a fast always-on regression in CI.)
#[test]
fn many_partitions_on_a_small_pool_uphold_invariants() {
    let nodes = 64usize;
    let cfg = TransferConfig {
        accounts: 1280,
        hot_set: 8,
        hot_fraction: 0.3,
    };
    let mut cluster = build_cluster_scaled(
        &cfg,
        nodes,
        Protocol::Chiller,
        sim_config(29, 4),
        Backend::Async,
        Some(MailboxKind::Ring),
        Some(PinPolicy::Off),
        Some(2),
    );
    let report = cluster.run(RunSpec::millis(10, 120));
    assert!(
        report.total_commits() > 0,
        "64 partitions on 2 workers committed nothing — {}",
        report.summary()
    );
    assert_eq!(report.workers, 2);
    cluster.quiesce();
    assert_serializability_invariants(&cluster, &cfg, "chiller (64 partitions, 2 workers)");
}
