//! The paper's Figure 4 flight-booking transaction, end to end.
//!
//! Demonstrates the full Chiller pipeline on the paper's own running
//! example: the dependency graph (pk-deps vs v-deps), the run-time region
//! decision for a concrete instance, and an execution where hot flights are
//! updated in inner regions.
//!
//! ```sh
//! cargo run --release --example flight_booking
//! ```

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_sproc::decide_regions;
use chiller_workload::flight::{self, FlightConfig};

fn main() {
    let proc = flight::booking_proc();

    println!("== Static analysis (§3.2) ==");
    println!("{proc:?}");
    println!(
        "pk-children of the flight read: {:?}",
        proc.graph.pk_children[0]
    );
    println!(
        "v-deps of the balance update:   {:?}\n",
        proc.graph.v_parents[4]
    );

    // Run-time decision for one instance (§3.3): the flight (and the seat
    // insert that pk-depends on it) is hot and lives on partition 1; the
    // customer and tax rows are elsewhere.
    println!("== Run-time region decision (§3.3) ==");
    let parts = [
        Some(PartitionId(1)), // flight
        Some(PartitionId(0)), // customer
        Some(PartitionId(2)), // tax
        Some(PartitionId(1)), // flight update
        Some(PartitionId(0)), // customer update
        Some(PartitionId(1)), // seat insert (same flight prefix)
    ];
    let hot = [true, false, false, true, false, false];
    let split = decide_regions(&proc, &parts, &hot);
    println!("inner host: {:?}", split.inner_host);
    println!("inner ops:  {:?}", split.inner_ops);
    println!("outer ops:  {:?}", split.outer_ops);
    println!("guards:     {:?}\n", split.guard_sites);

    println!("== Execution on a 4-node cluster ==");
    let cfg = FlightConfig {
        flights: 16,
        customers: 5_000,
        theta: 1.1,
        ..Default::default()
    };
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking] {
        let mut sim = SimConfig::default();
        sim.engine.concurrency = 4;
        sim.seed = 7;
        let mut cluster = flight::build_cluster(&cfg, 4, protocol, sim);
        let report = cluster.run(RunSpec::millis(1, 10));
        println!("{protocol:>8}: {}", report.summary());
    }
    println!("\nPopular flights are booked concurrently from every node; Chiller's");
    println!("inner region makes the flight-row contention span a local operation.");
}
