//! Quickstart: build a 4-node simulated cluster, run a money-transfer
//! workload under Chiller's two-region execution, and print the metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_workload::transfer::{build_cluster, total_balance, TransferConfig, INITIAL_BALANCE};

fn main() {
    let cfg = TransferConfig {
        accounts: 2_000,
        hot_set: 8,
        hot_fraction: 0.3,
    };

    println!("Running the transfer workload on 4 nodes under each protocol…\n");
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let mut sim = SimConfig::default();
        sim.engine.concurrency = 4;
        sim.seed = 42;
        let mut cluster = build_cluster(&cfg, 4, protocol, sim);

        // 1 ms virtual warm-up, 10 ms measured.
        let report = cluster.run(RunSpec::millis(1, 10));
        println!("{protocol:>8}: {}", report.summary());

        // Serializability witness: money is conserved.
        cluster.quiesce();
        let total = total_balance(&cluster);
        let expected = cfg.accounts as f64 * INITIAL_BALANCE;
        assert!(
            (total - expected).abs() < 1e-6,
            "balance leak under {protocol}!"
        );
    }
    println!("\nAll protocols conserved the total balance — serializable execution.");
    println!("Note how Chiller's abort rate stays low: the hot accounts are");
    println!("co-located and updated in inner regions with tiny contention spans.");
}
