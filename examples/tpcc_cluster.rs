//! Full TPC-C on a simulated 8-warehouse cluster, comparing the three
//! execution models at several concurrency levels (a miniature Figure 9).
//!
//! ```sh
//! cargo run --release --example tpcc_cluster
//! ```

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};

fn main() {
    let cfg = TpccConfig::with_warehouses(8);
    println!(
        "TPC-C: {} warehouses, {} customers/district, {} items/warehouse\n",
        cfg.warehouses, cfg.customers_per_district, cfg.items
    );
    println!(
        "{:<10} {:>4}  {:>12} {:>10} {:>12} {:>14}",
        "protocol", "conc", "ktps", "abort", "latency(us)", "payment-abort"
    );
    for protocol in [Protocol::TwoPhaseLocking, Protocol::Occ, Protocol::Chiller] {
        for conc in [1usize, 2, 4] {
            let mut sim = SimConfig::default();
            sim.engine.concurrency = conc;
            sim.seed = 1;
            let mut cluster = build_tpcc_cluster(&cfg, TpccMix::default(), protocol, sim);
            let report = cluster.run(RunSpec::millis(2, 15));
            println!(
                "{:<10} {:>4}  {:>12.1} {:>10.3} {:>12.1} {:>14.3}",
                protocol.to_string(),
                conc,
                report.throughput() / 1e3,
                report.abort_rate(),
                report.mean_latency_us(),
                report.abort_rate_of("Payment"),
            );
        }
    }
    println!("\nThe paper's Figure 9 story: with more concurrent transactions per");
    println!("warehouse, 2PL and OCC drown in district/warehouse-row aborts while");
    println!("Chiller's two-region execution keeps scaling until CPU-bound.");
}
