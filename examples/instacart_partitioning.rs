//! Contention-aware partitioning on the Instacart-like workload: run the
//! whole §4 pipeline (statistics → contention likelihood → star graph →
//! multilevel partitioning → hot lookup table), compare with Schism and
//! hash partitioning, then execute all three (a miniature Figures 7+8).
//!
//! ```sh
//! cargo run --release --example instacart_partitioning
//! ```

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_partition::chiller_part::distributed_ratio;
use chiller_partition::{ChillerPartitioner, ContentionModel, LoadMetric, SchismPartitioner};
use chiller_workload::instacart::{self, InstacartConfig};
use std::sync::Arc;

fn main() {
    let cfg = InstacartConfig::default();
    let k = 4usize;

    // The sampling statistics service output (§4.1).
    let trace = instacart::trace(&cfg, 4_000, 8_000_000);
    let model = ContentionModel::new(30_000.0, trace.window_ns as f64);

    // Chiller pipeline.
    let mut partitioner = ChillerPartitioner::new(k as u32, model);
    partitioner.load_metric = LoadMetric::Transactions;
    partitioner.hot_threshold = 0.05;
    partitioner.epsilon = 8.0;
    let chiller = partitioner.partition(&trace);
    println!("== Chiller partitioning (§4) ==");
    println!(
        "star graph: {} vertices, {} edges",
        chiller.graph_vertices, chiller.graph_edges
    );
    println!("hot records (lookup-table entries): {}", chiller.num_hot());
    for (r, pc) in chiller.hot_likelihoods.iter().take(5) {
        println!(
            "  {r}: contention likelihood {pc:.3} → {:?}",
            chiller.hot_assignments[r]
        );
    }

    // Schism baseline.
    let schism = SchismPartitioner::new(k as u32).partition(&trace);
    println!("\n== Schism baseline ==");
    println!(
        "clique graph: {} vertices, {} edges",
        schism.graph_vertices, schism.graph_edges
    );
    println!("lookup-table entries: {}", schism.lookup_entries());

    // Distributed-transaction ratios (Figure 8).
    let hash = HashPlacement::new(k as u32);
    println!("\n== Distributed-transaction ratio (Figure 8) ==");
    println!("hashing: {:.3}", distributed_ratio(&trace.txns, &hash));
    println!(
        "schism:  {:.3}",
        distributed_ratio(&trace.txns, &schism.into_placement())
    );
    println!(
        "chiller: {:.3}",
        distributed_ratio(&trace.txns, &chiller.into_lookup_table())
    );

    // Execute (Figure 7, one point).
    println!("\n== Execution at {k} partitions ==");
    let schism2 = SchismPartitioner::new(k as u32).partition(&trace);
    type Run = (
        &'static str,
        Arc<dyn Placement + Send + Sync>,
        Vec<RecordId>,
        Protocol,
    );
    let runs: Vec<Run> = vec![
        (
            "hashing",
            Arc::new(HashPlacement::new(k as u32)),
            vec![],
            Protocol::TwoPhaseLocking,
        ),
        (
            "schism",
            Arc::new(schism2.into_placement()),
            vec![],
            Protocol::TwoPhaseLocking,
        ),
        (
            "chiller",
            Arc::new(partitioner.partition(&trace).into_lookup_table()),
            chiller.hot_assignments.keys().copied().collect(),
            Protocol::Chiller,
        ),
    ];
    for (name, placement, hot, protocol) in runs {
        let mut sim = SimConfig::default();
        sim.engine.concurrency = 4;
        sim.seed = 3;
        let mut cluster = instacart::build_cluster(&cfg, k, placement, hot, protocol, sim);
        let report = cluster.run(RunSpec::millis(2, 10));
        println!("{name:>8}: {}", report.summary());
    }
    println!("\nChiller produces MORE distributed transactions than Schism yet runs");
    println!("faster — the paper's core claim: on fast networks, optimize for");
    println!("contention, not for transaction locality.");
}
