//! The deterministic discrete-event backend: event loop and network/CPU
//! model. Implements the backend-neutral [`Runtime`] surface from
//! [`crate::runtime`]; the actor trait and `Ctx` handle live there.

use crate::runtime::{Actor, Backend, Clock, Ctx, Mailbox, NetStats, Runtime, Verb};
use chiller_common::config::NetworkConfig;
use chiller_common::ids::NodeId;
use chiller_common::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// What gets scheduled in the event queue.
enum EventKind<M> {
    /// A network message arriving at `dst`.
    Deliver {
        src: NodeId,
        dst: NodeId,
        verb: Verb,
        msg: M,
    },
    /// A timer registered by the actor on `node` with an opaque token.
    Timer { node: NodeId, token: u64 },
    /// Engine became free: drain the node's pending RPC queue.
    Wake { node: NodeId },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Core simulator state shared with actors through [`Ctx`].
struct SimCore<M> {
    clock: SimTime,
    queue: BinaryHeap<Reverse<Event<M>>>,
    seq: u64,
    network: NetworkConfig,
    /// Per-link last-arrival horizon, enforcing FIFO delivery per (src,dst).
    link_horizon: HashMap<(NodeId, NodeId), SimTime>,
    /// Per-node engine-core busy horizon.
    busy_until: Vec<SimTime>,
    /// Per-node queue of RPCs that arrived while the engine was busy.
    rpc_backlog: Vec<VecDeque<(NodeId, M)>>,
    /// Whether a Wake event is already pending for a node.
    wake_pending: Vec<bool>,
    stats: NetStats,
}

impl<M> SimCore<M> {
    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        debug_assert!(at >= self.clock, "scheduling into the past");
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn one_way_latency(&self, src: NodeId, dst: NodeId, verb: Verb) -> Duration {
        if src == dst {
            return Duration::from_nanos(self.network.local_ns);
        }
        match verb {
            Verb::OneSided => Duration::from_nanos(self.network.one_sided_ns),
            Verb::Rpc => Duration::from_nanos(self.network.rpc_ns),
        }
    }
}

/// The simulator's [`Mailbox`]: virtual clock, modelled latencies, engine
/// busy horizon, per-link FIFO.
struct SimMailbox<'a, M> {
    core: &'a mut SimCore<M>,
    /// The node whose actor is currently running.
    node: NodeId,
}

impl<M> SimMailbox<'_, M> {
    /// Time at which work issued *now* by this engine actually departs:
    /// the engine finishes its queued CPU first.
    fn departure_time(&self) -> SimTime {
        self.core.busy_until[self.node.idx()].max(self.core.clock)
    }
}

impl<M> Mailbox<M> for SimMailbox<'_, M> {
    #[inline]
    fn now(&self) -> SimTime {
        self.core.clock
    }

    #[inline]
    fn node(&self) -> NodeId {
        self.node
    }

    fn use_cpu(&mut self, d: Duration) {
        let b = self.core.busy_until[self.node.idx()].max(self.core.clock);
        self.core.busy_until[self.node.idx()] = b + d;
    }

    fn send(&mut self, dst: NodeId, verb: Verb, msg: M) {
        let src = self.node;
        let depart = self.departure_time();
        let lat = self.core.one_way_latency(src, dst, verb);
        let naive_arrival = depart + lat;
        let horizon = self
            .core
            .link_horizon
            .get(&(src, dst))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let arrival = naive_arrival.max(horizon);
        self.core.link_horizon.insert((src, dst), arrival);
        if src == dst {
            self.core.stats.local_msgs += 1;
        } else {
            match verb {
                Verb::OneSided => self.core.stats.one_sided_msgs += 1,
                Verb::Rpc => self.core.stats.rpc_msgs += 1,
            }
        }
        self.core.push(
            arrival,
            EventKind::Deliver {
                src,
                dst,
                verb,
                msg,
            },
        );
    }

    fn set_timer(&mut self, d: Duration, token: u64) {
        let at = self.core.clock + d;
        self.core.push(
            at,
            EventKind::Timer {
                node: self.node,
                token,
            },
        );
    }

    fn set_timer_when_free(&mut self, d: Duration, token: u64) {
        let at = self.departure_time() + d;
        self.core.push(
            at,
            EventKind::Timer {
                node: self.node,
                token,
            },
        );
    }
}

/// The simulation: a set of actors (one per node) plus the event core.
pub struct Simulation<M, A: Actor<M>> {
    actors: Vec<A>,
    core: SimCore<M>,
    started: bool,
}

impl<M, A: Actor<M>> Simulation<M, A> {
    /// Build a simulation over the given actors; actor `i` runs on `NodeId(i)`.
    pub fn new(actors: Vec<A>, network: NetworkConfig) -> Self {
        let n = actors.len();
        Simulation {
            actors,
            core: SimCore {
                clock: SimTime::ZERO,
                queue: BinaryHeap::new(),
                seq: 0,
                network,
                link_horizon: HashMap::new(),
                busy_until: vec![SimTime::ZERO; n],
                rpc_backlog: (0..n).map(|_| VecDeque::new()).collect(),
                wake_pending: vec![false; n],
                stats: NetStats::default(),
            },
            started: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// Network counters accumulated so far (all nodes).
    pub fn stats(&self) -> NetStats {
        self.core.stats
    }

    /// The actors, in node order.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutable actor access, in node order.
    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    /// Number of simulated nodes (one actor each).
    pub fn num_nodes(&self) -> usize {
        self.actors.len()
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let node = NodeId(i as u32);
            let mut mb = SimMailbox {
                core: &mut self.core,
                node,
            };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            self.actors[i].on_start(&mut ctx);
        }
    }

    /// Dispatch an RPC to the engine: charges the configured handler CPU
    /// cost, then runs the actor handler.
    fn dispatch_rpc(&mut self, src: NodeId, dst: NodeId, msg: M) {
        let cpu = Duration::from_nanos(self.core.network.rpc_handler_cpu_ns);
        let mut mb = SimMailbox {
            core: &mut self.core,
            node: dst,
        };
        mb.use_cpu(cpu);
        let mut ctx = Ctx::from_mailbox(&mut mb);
        self.actors[dst.idx()].on_message(&mut ctx, src, Verb::Rpc, msg);
    }

    /// If the engine at `node` is free and has backlog, handle the next
    /// backlog entry; schedule a wake when it will next be free.
    fn drain_backlog(&mut self, node: NodeId) {
        loop {
            if self.core.busy_until[node.idx()] > self.core.clock {
                // Busy: come back when free.
                if !self.core.rpc_backlog[node.idx()].is_empty()
                    && !self.core.wake_pending[node.idx()]
                {
                    self.core.wake_pending[node.idx()] = true;
                    let at = self.core.busy_until[node.idx()];
                    self.core.push(at, EventKind::Wake { node });
                }
                return;
            }
            match self.core.rpc_backlog[node.idx()].pop_front() {
                None => return,
                Some((src, msg)) => self.dispatch_rpc(src, node, msg),
            }
        }
    }

    /// Process a single event. Returns false when the queue is exhausted.
    fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.core.clock, "time went backwards");
        self.core.clock = ev.at;
        self.core.stats.events_processed += 1;
        match ev.kind {
            EventKind::Deliver {
                src,
                dst,
                verb,
                msg,
            } => match verb {
                Verb::OneSided => {
                    // NIC-side: bypasses the engine queue entirely.
                    let mut mb = SimMailbox {
                        core: &mut self.core,
                        node: dst,
                    };
                    let mut ctx = Ctx::from_mailbox(&mut mb);
                    self.actors[dst.idx()].on_message(&mut ctx, src, Verb::OneSided, msg);
                }
                Verb::Rpc => {
                    self.core.rpc_backlog[dst.idx()].push_back((src, msg));
                    self.drain_backlog(dst);
                }
            },
            EventKind::Timer { node, token } => {
                self.core.stats.timer_fires += 1;
                let mut mb = SimMailbox {
                    core: &mut self.core,
                    node,
                };
                let mut ctx = Ctx::from_mailbox(&mut mb);
                self.actors[node.idx()].on_timer(&mut ctx, token);
            }
            EventKind::Wake { node } => {
                self.core.wake_pending[node.idx()] = false;
                self.drain_backlog(node);
            }
        }
        true
    }

    /// Run until the virtual clock passes `until` or the event queue drains.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        self.start();
        let mut n = 0;
        while let Some(Reverse(ev)) = self.core.queue.peek() {
            if ev.at > until {
                break;
            }
            self.step();
            n += 1;
        }
        // Advance the clock to the horizon so rate computations use the full
        // window even if the queue drained early.
        if self.core.clock < until {
            self.core.clock = until;
        }
        n
    }

    /// Run until the event queue is empty (or `max_events` is hit, as a
    /// runaway guard). Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.start();
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Run `f` against one actor with a live [`Ctx`] at the current virtual
    /// time, outside normal event dispatch. This is the control-plane
    /// injection point: an epoch scheduler pauses the simulation at a
    /// boundary, inspects/mutates actors, and lets them send messages or
    /// set timers. Determinism is preserved as long as callers inject at
    /// deterministic times in a deterministic node order.
    pub fn with_actor_ctx<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<'_, M>) -> R,
    ) -> R {
        let mut mb = SimMailbox {
            core: &mut self.core,
            node,
        };
        let mut ctx = Ctx::from_mailbox(&mut mb);
        f(&mut self.actors[node.idx()], &mut ctx)
    }
}

impl<M, A: Actor<M>> Clock for Simulation<M, A> {
    fn now(&self) -> SimTime {
        self.core.clock
    }
}

impl<M, A: Actor<M>> Runtime<M, A> for Simulation<M, A> {
    fn backend(&self) -> Backend {
        Backend::Simulated
    }

    fn stats(&self) -> NetStats {
        Simulation::stats(self)
    }

    fn num_nodes(&self) -> usize {
        Simulation::num_nodes(self)
    }

    fn actors(&self) -> &[A] {
        Simulation::actors(self)
    }

    fn actors_mut(&mut self) -> &mut [A] {
        Simulation::actors_mut(self)
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        Simulation::run_until(self, until)
    }

    fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        Simulation::run_to_quiescence(self, max_events)
    }

    fn with_actor_ctx(&mut self, node: NodeId, f: &mut dyn FnMut(&mut A, &mut Ctx<'_, M>)) {
        Simulation::with_actor_ctx(self, node, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::config::NetworkConfig;

    /// Test actor that records everything it sees.
    #[derive(Default)]
    struct Recorder {
        received: Vec<(SimTime, NodeId, u64)>,
        timers: Vec<(SimTime, u64)>,
        /// Messages to send at start: (dst, verb, payload, cpu_before_ns)
        plan: Vec<(NodeId, Verb, u64, u64)>,
        echo: bool,
        cpu_per_rpc_ns: u64,
    }

    impl Actor<u64> for Recorder {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let plan = std::mem::take(&mut self.plan);
            for (dst, verb, payload, cpu_ns) in plan {
                if cpu_ns > 0 {
                    ctx.use_cpu(Duration::from_nanos(cpu_ns));
                }
                ctx.send(dst, verb, payload);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, verb: Verb, msg: u64) {
            self.received.push((ctx.now(), src, msg));
            if verb == Verb::Rpc && self.cpu_per_rpc_ns > 0 {
                ctx.use_cpu(Duration::from_nanos(self.cpu_per_rpc_ns));
            }
            if self.echo {
                ctx.send(src, verb, msg + 1000);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
    }

    fn net() -> NetworkConfig {
        NetworkConfig {
            one_sided_ns: 1_000,
            rpc_ns: 2_000,
            local_ns: 100,
            rpc_handler_cpu_ns: 0,
        }
    }

    #[test]
    fn one_sided_latency_applied() {
        let mut a = Recorder::default();
        a.plan.push((NodeId(1), Verb::OneSided, 7, 0));
        let sim_actors = vec![a, Recorder::default()];
        let mut sim = Simulation::new(sim_actors, net());
        sim.run_to_quiescence(100);
        let recv = &sim.actors()[1].received;
        assert_eq!(recv.len(), 1);
        assert_eq!(recv[0], (SimTime(1_000), NodeId(0), 7));
    }

    #[test]
    fn local_messages_use_local_latency() {
        let mut a = Recorder::default();
        a.plan.push((NodeId(0), Verb::Rpc, 9, 0));
        let mut sim = Simulation::new(vec![a], net());
        sim.run_to_quiescence(100);
        assert_eq!(sim.actors()[0].received[0].0, SimTime(100));
        assert_eq!(sim.stats().local_msgs, 1);
    }

    #[test]
    fn per_link_fifo_preserved() {
        // Two messages sent back-to-back on the same link must arrive in
        // order even if the latency model would otherwise allow reordering.
        let mut a = Recorder::default();
        a.plan.push((NodeId(1), Verb::Rpc, 1, 0));
        a.plan.push((NodeId(1), Verb::Rpc, 2, 0));
        let mut sim = Simulation::new(vec![a, Recorder::default()], net());
        sim.run_to_quiescence(100);
        let payloads: Vec<u64> = sim.actors()[1].received.iter().map(|r| r.2).collect();
        assert_eq!(payloads, vec![1, 2]);
    }

    #[test]
    fn rpc_queues_behind_busy_engine_but_one_sided_does_not() {
        // Node 1's engine is made busy by an RPC that charges 10us of CPU.
        // A second RPC and a one-sided message arrive during that window:
        // the one-sided must be served on arrival, the RPC only when free.
        let mut a = Recorder::default();
        a.plan.push((NodeId(1), Verb::Rpc, 1, 0)); // arrives t=2000, busy till 12000
        a.plan.push((NodeId(1), Verb::Rpc, 2, 0)); // arrives t=2000+, queued
        a.plan.push((NodeId(1), Verb::OneSided, 3, 0)); // arrives t=1000? no: FIFO separate per verb? same link!
        let b = Recorder {
            cpu_per_rpc_ns: 10_000,
            ..Recorder::default()
        };
        let mut sim = Simulation::new(vec![a, b], net());
        sim.run_to_quiescence(1000);
        let recv = &sim.actors()[1].received;
        let find = |p: u64| recv.iter().find(|r| r.2 == p).unwrap().0;
        let t1 = find(1);
        let t2 = find(2);
        let t3 = find(3);
        // msg 1 handled at arrival (engine free), msg 3 (one-sided) on
        // arrival despite busy engine, msg 2 only after the 10us of CPU.
        assert_eq!(t1, SimTime(2_000));
        assert!(t3 < SimTime(12_000), "one-sided must bypass busy engine");
        assert_eq!(t2, SimTime(12_000));
    }

    #[test]
    fn cpu_charge_delays_departure() {
        // use_cpu before send: the message leaves only after the CPU burn.
        let mut a = Recorder::default();
        a.plan.push((NodeId(1), Verb::OneSided, 5, 7_000));
        let mut sim = Simulation::new(vec![a, Recorder::default()], net());
        sim.run_to_quiescence(100);
        assert_eq!(sim.actors()[1].received[0].0, SimTime(8_000));
    }

    #[test]
    fn timers_fire_in_order() {
        struct T;
        impl Actor<u64> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.set_timer(Duration::from_nanos(500), 2);
                ctx.set_timer(Duration::from_nanos(100), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, _: Verb, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
                if token == 1 {
                    assert_eq!(ctx.now(), SimTime(100));
                } else {
                    assert_eq!(ctx.now(), SimTime(500));
                }
            }
        }
        let mut sim = Simulation::new(vec![T], net());
        assert_eq!(sim.run_to_quiescence(10), 2);
        assert_eq!(sim.stats().timer_fires, 2);
    }

    #[test]
    fn echo_round_trip_time() {
        let mut a = Recorder::default();
        a.plan.push((NodeId(1), Verb::OneSided, 1, 0));
        let b = Recorder {
            echo: true,
            ..Recorder::default()
        };
        let mut sim = Simulation::new(vec![a, b], net());
        sim.run_to_quiescence(100);
        // RTT = 2 * one-way.
        assert_eq!(sim.actors()[0].received[0].0, SimTime(2_000));
        assert_eq!(sim.actors()[0].received[0].2, 1_001);
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        struct Ticker;
        impl Actor<u64> for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.set_timer(Duration::from_nanos(10), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, _: Verb, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _: u64) {
                ctx.set_timer(Duration::from_nanos(10), 0);
            }
        }
        let mut sim = Simulation::new(vec![Ticker], net());
        let n = sim.run_until(SimTime(95));
        assert_eq!(n, 9);
        assert_eq!(sim.now(), SimTime(95));
        // Continue: no events were lost.
        let n2 = sim.run_until(SimTime(200));
        assert!(n2 > 0);
    }

    #[test]
    fn with_actor_ctx_injects_sends_and_timers() {
        let mut sim = Simulation::new(vec![Recorder::default(), Recorder::default()], net());
        sim.run_until(SimTime(10));
        // Control-plane injection at t=10: node 0 sends to node 1 and arms
        // a timer on itself.
        sim.with_actor_ctx(NodeId(0), |_actor, ctx| {
            assert_eq!(ctx.now(), SimTime(10));
            assert_eq!(ctx.node(), NodeId(0));
            ctx.send(NodeId(1), Verb::OneSided, 77);
            ctx.set_timer(Duration::from_nanos(5), 9);
        });
        sim.run_to_quiescence(100);
        assert_eq!(
            sim.actors()[1].received,
            vec![(SimTime(1_010), NodeId(0), 77)]
        );
        assert_eq!(sim.actors()[0].timers, vec![(SimTime(15), 9)]);
    }

    #[test]
    fn deterministic_reruns() {
        let build = || {
            let mut a = Recorder::default();
            for i in 0..50 {
                a.plan
                    .push((NodeId(1 + (i % 2) as u32), Verb::Rpc, i, (i * 13) % 700));
            }
            let b = Recorder {
                echo: true,
                cpu_per_rpc_ns: 300,
                ..Recorder::default()
            };
            let c = Recorder {
                echo: true,
                ..Recorder::default()
            };
            Simulation::new(vec![a, b, c], net())
        };
        let mut s1 = build();
        let mut s2 = build();
        s1.run_to_quiescence(10_000);
        s2.run_to_quiescence(10_000);
        assert_eq!(s1.actors()[0].received, s2.actors()[0].received);
        assert_eq!(s1.now(), s2.now());
        assert_eq!(s1.stats().events_processed, s2.stats().events_processed);
    }

    #[test]
    fn stats_classify_verbs() {
        let mut a = Recorder::default();
        a.plan.push((NodeId(1), Verb::OneSided, 1, 0));
        a.plan.push((NodeId(1), Verb::Rpc, 2, 0));
        a.plan.push((NodeId(0), Verb::OneSided, 3, 0));
        let mut sim = Simulation::new(vec![a, Recorder::default()], net());
        sim.run_to_quiescence(100);
        let st = sim.stats();
        assert_eq!(st.one_sided_msgs, 1);
        assert_eq!(st.rpc_msgs, 1);
        assert_eq!(st.local_msgs, 1);
    }

    #[test]
    fn simulation_works_through_the_runtime_trait_object() {
        // The cluster layer drives the simulator through
        // `Box<dyn Runtime>`; the trait path must behave exactly like the
        // inherent one.
        let mut a = Recorder::default();
        a.plan.push((NodeId(1), Verb::OneSided, 7, 0));
        let sim = Simulation::new(vec![a, Recorder::default()], net());
        let mut rt: Box<dyn Runtime<u64, Recorder>> = Box::new(sim);
        assert_eq!(rt.backend(), Backend::Simulated);
        rt.run_to_quiescence(100);
        assert_eq!(
            rt.actors()[1].received,
            vec![(SimTime(1_000), NodeId(0), 7)]
        );
        rt.with_actor_ctx(NodeId(1), &mut |_actor, ctx| {
            ctx.send(NodeId(0), Verb::OneSided, 9);
        });
        rt.run_to_quiescence(100);
        assert_eq!(rt.actors()[0].received.last().unwrap().2, 9);
        assert_eq!(rt.stats().one_sided_msgs, 2);
    }
}
