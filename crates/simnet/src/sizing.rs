//! Worker-pool sizing shared by the threaded and async backends.
//!
//! Both real-thread backends need the same two answers — "how parallel
//! is this host?" and "how many workers should a cluster of `n` engines
//! get?" — and before this module each call site re-derived them ad hoc
//! (the threaded backend's spin heuristic read `available_parallelism`
//! inline; nothing resolved `CHILLER_WORKERS` at all). Centralizing the
//! policy keeps the two backends' reports comparable and gives
//! `RunReport::workers` one source of truth.

/// Detected host parallelism: `std::thread::available_parallelism`, or 1
/// when the host refuses to say (restricted cgroups, exotic platforms —
/// the conservative answer for sizing decisions).
pub fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Worker count of the threaded backend for `engines` engines: always
/// one OS thread per engine — that backend's whole point is measuring
/// dedicated-thread behavior, so `CHILLER_WORKERS` does not apply.
pub fn threaded_workers(engines: usize) -> usize {
    engines
}

/// Worker-pool size of the async backend for `engines` engines:
/// `CHILLER_WORKERS` when set (panics on an unparsable or zero value —
/// silently mis-sizing the pool would poison every scaling number),
/// otherwise the detected parallelism; either way clamped to
/// `1..=engines` (a pool larger than the engine count would only park).
pub fn async_workers(engines: usize) -> usize {
    let requested = match std::env::var("CHILLER_WORKERS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("CHILLER_WORKERS must be a positive integer, got `{v}`"),
        },
        Err(_) => detected_parallelism(),
    };
    requested.clamp(1, engines.max(1))
}

/// Whether spin-waiting is safe for a pool of `workers` threads: true
/// only when the host has at least one core per worker, i.e. a spinning
/// worker cannot starve a sibling that has real work.
pub fn spin_allowed(workers: usize) -> bool {
    detected_parallelism() >= workers.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_is_one_thread_per_engine() {
        assert_eq!(threaded_workers(7), 7);
        assert_eq!(threaded_workers(1000), 1000);
    }

    #[test]
    fn async_clamps_to_engine_count() {
        // Whatever the host parallelism, a 1-engine cluster gets 1 worker.
        if std::env::var("CHILLER_WORKERS").is_err() {
            assert_eq!(async_workers(1), 1);
            let w = async_workers(1_000);
            assert!((1..=1_000).contains(&w));
            assert_eq!(w, detected_parallelism().min(1_000));
        }
    }

    #[test]
    fn parallelism_is_positive() {
        assert!(detected_parallelism() >= 1);
    }
}
