//! # chiller-simnet
//!
//! Deterministic discrete-event simulation of a NAM-DB-style RDMA cluster
//! (§6 of the Chiller paper). This is the substrate substitution for the
//! paper's 8-machine InfiniBand testbed: it models exactly the properties
//! the evaluation depends on and nothing more —
//!
//! * **Latency classes**: one-sided RDMA verbs (READ/WRITE/CAS) vs two-sided
//!   RPCs vs local memory accesses, with configurable one-way latencies.
//! * **NIC bypass**: one-sided verbs are serviced on arrival regardless of
//!   how busy the destination's CPU is (the defining property of one-sided
//!   RDMA); RPCs queue behind the single-threaded execution engine and charge
//!   CPU when handled.
//! * **Per-link FIFO**: messages between a given (src, dst) pair arrive in
//!   send order, mirroring RDMA's queue-pair in-order delivery — the
//!   assumption Chiller's inner-region replication protocol (§5) relies on.
//! * **Engine CPU model**: each node owns one engine core with a
//!   `busy_until` horizon; handlers charge virtual CPU with
//!   [`Ctx::use_cpu`], producing the CPU-bound saturation visible in the
//!   paper's Figure 9a.
//! * **Determinism**: FIFO tie-breaking by sequence number makes reruns
//!   bit-identical.
//!
//! The transaction engines in `chiller-cc` are [`Actor`]s plugged into a
//! [`Simulation`].

pub mod sim;

pub use sim::{Actor, Ctx, NetStats, Simulation, Verb};
