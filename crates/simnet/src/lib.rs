//! # chiller-simnet
//!
//! The execution substrate of the reproduction: a backend-neutral actor
//! runtime with two interchangeable backends.
//!
//! * [`Simulation`] — deterministic discrete-event simulation of a
//!   NAM-DB-style RDMA cluster (§6 of the Chiller paper). This is the
//!   substrate substitution for the paper's 8-machine InfiniBand testbed:
//!   it models exactly the properties the evaluation depends on — latency
//!   classes (one-sided verbs vs RPCs vs local), NIC bypass, per-link
//!   FIFO, an engine CPU model — and makes reruns bit-identical, so it
//!   serves as the correctness and paper-parity **oracle**.
//! * [`ThreadedRuntime`] — one OS thread per node with bounded mpsc
//!   mailboxes and a monotonic wall clock. No modelled latencies: it
//!   measures what the machine actually sustains, so it serves as the
//!   hardware **benchmark** path.
//! * [`AsyncRuntime`] — a fixed worker pool multiplexing every node over
//!   a work-stealing ready queue, so thousands of partitions run on a
//!   handful of OS threads. The hardware **scale** path.
//!
//! All three implement the [`Runtime`] trait over the same [`Actor`]
//! surface; the transaction engines in `chiller-cc` are [`Actor`]s
//! plugged into any backend unchanged. See [`runtime`] for the trait
//! contracts.

#![warn(missing_docs)]

pub mod affinity;
pub mod async_rt;
pub mod runtime;
pub mod sim;
pub mod sizing;
pub mod threaded;
pub mod timer_wheel;

pub use async_rt::{AsyncConfig, AsyncRuntime};
pub use runtime::{Actor, Backend, Clock, Ctx, Mailbox, NetStats, Runtime, Verb};
pub use sim::Simulation;
pub use threaded::{
    MailboxKind, PinPolicy, ThreadedConfig, ThreadedRuntime, DEFAULT_MAILBOX_CAPACITY,
};
pub use timer_wheel::TimerWheel;
