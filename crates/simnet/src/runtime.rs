//! Backend-neutral execution runtime: the actor-facing surface shared by
//! the deterministic simulator and the real multi-threaded backend.
//!
//! The transaction engines in `chiller-cc` are written against exactly
//! three things defined here —
//!
//! * [`Actor`]: the event-handler trait (start / message / timer);
//! * [`Ctx`]: the handle an actor uses to read the clock, send messages,
//!   set timers and charge CPU. It is a thin wrapper over a
//!   [`Mailbox`] trait object, so actor code compiles once and runs on
//!   any backend;
//! * [`Runtime`]: the driver loop owning the actors. The deterministic
//!   [`Simulation`](crate::Simulation) interprets time as virtual
//!   nanoseconds and replays bit-identically per seed; the
//!   [`ThreadedRuntime`](crate::ThreadedRuntime) runs each actor on its
//!   own OS thread against a monotonic wall clock.
//!
//! The split gives the repo a *sim-as-oracle, threads-as-benchmark*
//! architecture: protocol correctness and paper parity are checked on the
//! simulator, hardware throughput is measured on the threads — same
//! engines, same messages, same workloads.

use chiller_common::ids::NodeId;
use chiller_common::time::{Duration, SimTime};

/// Message class, determining latency and delivery semantics.
///
/// The simulator models the two classes faithfully (NIC bypass, engine
/// queueing, CPU charges); the threaded backend delivers both through the
/// same mailbox and only keeps the classification for stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    /// One-sided RDMA verb (READ / WRITE / atomic CAS-style lock word
    /// manipulation). Serviced by the destination *NIC*: delivered the
    /// moment it arrives, never queued behind the destination engine, and
    /// handlers for it must not charge CPU.
    OneSided,
    /// Two-sided RPC (send/recv). Queued until the destination engine core
    /// is free; handling charges `rpc_handler_cpu_ns` plus whatever the
    /// actor itself charges.
    Rpc,
}

/// Counters describing network usage of a run; exposed so experiments can
/// report message overhead alongside throughput. The threaded backend
/// keeps one per worker thread and merges them on read.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// One-sided RDMA verbs sent between distinct nodes.
    pub one_sided_msgs: u64,
    /// Two-sided RPCs sent between distinct nodes.
    pub rpc_msgs: u64,
    /// Messages a node sent to itself (no network traversal).
    pub local_msgs: u64,
    /// Timer callbacks delivered.
    pub timer_fires: u64,
    /// Total events handled (messages + timer fires), all nodes.
    pub events_processed: u64,
}

impl NetStats {
    /// Fold another thread's (or node's) counters into this one.
    pub fn merge(&mut self, other: &NetStats) {
        self.one_sided_msgs += other.one_sided_msgs;
        self.rpc_msgs += other.rpc_msgs;
        self.local_msgs += other.local_msgs;
        self.timer_fires += other.timer_fires;
        self.events_processed += other.events_processed;
    }
}

/// Which execution backend drives a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Deterministic discrete-event simulation: virtual time, modelled
    /// network/CPU costs, bit-identical replays per seed. The correctness
    /// and paper-parity oracle.
    #[default]
    Simulated,
    /// One OS thread per node, bounded mpsc mailboxes, monotonic wall
    /// clock. Reports what the machine actually sustains; not
    /// deterministic.
    Threaded,
    /// A fixed worker pool multiplexing every node: engines are tasks on
    /// a work-stealing ready queue, so thousands of partitions run on a
    /// handful of OS threads (`CHILLER_WORKERS`, default = detected
    /// parallelism). Wall clock, not deterministic.
    Async,
}

impl Backend {
    /// Stable label used in reports and BENCH_*.json files.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Simulated => "simulated",
            Backend::Threaded => "threaded",
            Backend::Async => "async",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A source of "now". Virtual nanoseconds on the simulator; monotonic
/// wall-clock nanoseconds since runtime creation on the threaded backend.
pub trait Clock {
    /// Current time: virtual on the simulator, wall-clock offset on the
    /// threaded backend.
    fn now(&self) -> SimTime;
}

/// The per-actor runtime surface behind [`Ctx`] — one implementation per
/// backend. Actor code never sees this trait directly; it goes through
/// [`Ctx`], which keeps call sites monomorphic and lets handlers stay
/// object-safe.
pub trait Mailbox<M> {
    /// Current time (see [`Clock`] for the per-backend meaning).
    fn now(&self) -> SimTime;

    /// The node whose actor is currently running.
    fn node(&self) -> NodeId;

    /// Send a message to `dst` with the given verb class. Both backends
    /// guarantee per-link FIFO: messages between a given (src, dst) pair
    /// arrive in send order (RDMA queue-pair in-order delivery — the
    /// assumption Chiller's inner-region replication protocol relies on).
    fn send(&mut self, dst: NodeId, verb: Verb, msg: M);

    /// Schedule `on_timer(token)` on this node after `d`.
    fn set_timer(&mut self, d: Duration, token: u64);

    /// Schedule a timer relative to when the engine becomes free, rather
    /// than now — used for "process next input when you have capacity".
    /// On the threaded backend the engine is free whenever it is not
    /// executing, so this degrades to [`Mailbox::set_timer`].
    fn set_timer_when_free(&mut self, d: Duration, token: u64);

    /// Charge `d` of CPU time on this node's engine core. The simulator
    /// delays subsequent sends and queues arriving RPCs behind the charge;
    /// the threaded backend ignores it — real CPU is consumed by actually
    /// executing the handler.
    fn use_cpu(&mut self, d: Duration);
}

/// Handle given to actors during event handling. Lets the actor read the
/// clock, send messages, charge CPU, and set timers — on any backend.
pub struct Ctx<'a, M> {
    mailbox: &'a mut dyn Mailbox<M>,
}

impl<'a, M> Ctx<'a, M> {
    /// Wrap a backend's mailbox. Backends call this; actors never do.
    pub fn from_mailbox(mailbox: &'a mut dyn Mailbox<M>) -> Self {
        Ctx { mailbox }
    }

    /// Current time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.mailbox.now()
    }

    /// The node this actor instance runs on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.mailbox.node()
    }

    /// Charge `d` of CPU time on this node's engine core (see
    /// [`Mailbox::use_cpu`]).
    #[inline]
    pub fn use_cpu(&mut self, d: Duration) {
        self.mailbox.use_cpu(d);
    }

    /// Send a message to `dst` with the given verb class. Delivery respects
    /// per-link FIFO ordering and the backend's latency/queueing semantics.
    #[inline]
    pub fn send(&mut self, dst: NodeId, verb: Verb, msg: M) {
        self.mailbox.send(dst, verb, msg);
    }

    /// Schedule `on_timer(token)` on this node after `d`.
    #[inline]
    pub fn set_timer(&mut self, d: Duration, token: u64) {
        self.mailbox.set_timer(d, token);
    }

    /// Schedule a timer relative to when the engine becomes free (see
    /// [`Mailbox::set_timer_when_free`]).
    #[inline]
    pub fn set_timer_when_free(&mut self, d: Duration, token: u64) {
        self.mailbox.set_timer_when_free(d, token);
    }
}

/// A simulated machine: one partition's storage plus its execution engine.
///
/// `M` is the protocol message type, defined by the concurrency-control
/// layer. Handlers must be deterministic functions of their inputs plus any
/// actor-owned seeded RNG state (the simulator turns that determinism into
/// bit-identical replays; the threaded backend interleaves handlers in
/// wall-clock order).
pub trait Actor<M> {
    /// Called once at runtime start so engines can kick off their initial
    /// transactions.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>);

    /// A message arrived. For `Verb::OneSided` the handler models NIC
    /// processing and must not call `use_cpu`; for `Verb::Rpc` the simulator
    /// has already charged the configured handler cost and the actor may
    /// charge more.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, src: NodeId, verb: Verb, msg: M);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64);

    /// The wall-clock backends drained a batch of events for this actor
    /// and are about to look for more work. Amortized side effects —
    /// group-commit WAL fsyncs, most prominently — hang off this hook, the
    /// same boundary remote sends already flush on. Never called by the
    /// simulator (virtual time has no batches; the sim flushes at
    /// count-based thresholds and control-plane pauses instead, keeping
    /// its determinism contract). Default: nothing.
    fn on_batch_end(&mut self) {}
}

/// A cluster execution backend: owns the actors, delivers messages and
/// timers, and reports merged network counters.
///
/// Object-safe by design — the cluster layer holds a
/// `Box<dyn Runtime<Msg, EngineActor>>` and drives either backend through
/// the same warm-up / measure / quiesce protocol. Between `run_*` calls
/// the runtime is paused: [`Runtime::actors`], [`Runtime::actors_mut`] and
/// [`Runtime::with_actor_ctx`] give the control plane (metric resets,
/// epoch scheduling, invariant checks) exclusive access to actor state on
/// both backends.
pub trait Runtime<M, A: Actor<M>>: Clock {
    /// Which backend this is (drives report labelling).
    fn backend(&self) -> Backend;

    /// Merged network counters across all nodes/threads.
    fn stats(&self) -> NetStats;

    /// Number of nodes in the cluster (one actor each).
    fn num_nodes(&self) -> usize;

    /// The actors, in node order. Valid while the runtime is paused.
    fn actors(&self) -> &[A];

    /// Mutable actor access, in node order. Valid while paused.
    fn actors_mut(&mut self) -> &mut [A];

    /// Advance until `now()` passes `until` (virtual time for the
    /// simulator; wall-clock offset since runtime start for the threaded
    /// backend), then pause. In-flight messages and timers survive the
    /// pause. Returns the number of events processed.
    fn run_until(&mut self, until: SimTime) -> u64;

    /// Run until no work remains anywhere: no queued messages, no armed
    /// timers, no handler mid-flight. `max_events` bounds runaway loops.
    /// Returns the number of events processed.
    fn run_to_quiescence(&mut self, max_events: u64) -> u64;

    /// Whether this runtime's worker threads are pinned to CPU cores.
    /// Always false on the simulator (there are no worker threads); the
    /// threaded backend reports true once a phase has run with an active
    /// pin policy and no `sched_setaffinity` failure.
    fn pinned(&self) -> bool {
        false
    }

    /// Number of OS worker threads that drive a run phase: 0 on the
    /// simulator (it runs on the calling thread), one per engine on the
    /// threaded backend, the fixed pool size on the async backend. Lets
    /// reports distinguish a 1000-engine run on 1000 threads from the
    /// same run multiplexed onto 4.
    fn workers(&self) -> usize {
        0
    }

    /// Scheduler-internal counters accumulated so far (batches drained,
    /// flush stalls, park/unpark handshakes, steals, timer slop — see
    /// [`chiller_obs::RuntimeTelemetry`]). Empty on the simulator, which
    /// has no scheduler: events pop off one ordered heap and timers are
    /// exact by construction.
    fn telemetry(&self) -> chiller_obs::RuntimeTelemetry {
        chiller_obs::RuntimeTelemetry::default()
    }

    /// Mailbox implementation in use, for self-describing reports. `None`
    /// on the simulator (messages travel through the event heap, not
    /// mailboxes).
    fn mailbox_kind(&self) -> Option<crate::threaded::MailboxKind> {
        None
    }

    /// Run `f` against one actor with a live [`Ctx`], outside normal event
    /// dispatch. This is the control-plane injection point: an epoch
    /// scheduler pauses the runtime at a boundary, inspects/mutates
    /// actors, and lets them send messages or set timers. On the simulator
    /// determinism is preserved as long as callers inject at deterministic
    /// times in a deterministic node order.
    fn with_actor_ctx(&mut self, node: NodeId, f: &mut dyn FnMut(&mut A, &mut Ctx<'_, M>));
}
