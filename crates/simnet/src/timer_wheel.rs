//! A coarse hashed timer wheel for the threaded backend's per-worker
//! timer path.
//!
//! The previous implementation kept armed timers in a `BinaryHeap` and
//! slept in `recv_timeout` until the earliest due time, which ties timer
//! fidelity to the OS sleep granularity (~50–100µs of slop per fire).
//! The wheel keeps the data-structure costs flat — O(1) arm, O(slots
//! visited) expiry — and, more importantly, exposes a cheap conservative
//! [`TimerWheel::next_due`] bound that lets the worker sleep *short* of
//! the due time and spin the final approach (see `threaded.rs`), cutting
//! slop well below the sleep granularity.
//!
//! ## Structure
//!
//! Time is divided into ticks of `granularity_ns`. A timer due at `d`
//! hashes to slot `(d / granularity_ns) % slots.len()`; far-future timers
//! share slots with near ones and are simply skipped (kept in place) when
//! their slot is visited before they are due — the classic "hashed wheel
//! with unbounded interval" scheme, chosen over a hierarchical wheel
//! because engines arm few, short, retry-backoff-scale timers.
//!
//! ## Ordering contract
//!
//! [`TimerWheel::pop_expired`] returns every entry due at or before `now`,
//! sorted by `(due, arm-sequence)` — the same order a min-heap pops them —
//! so replacing the heap cannot reorder same-instant timers (FIFO among
//! equal due times is part of the backend's documented behavior). A timer
//! never fires early; lateness is bounded by how often the owner calls
//! [`TimerWheel::pop_expired`], not by the wheel itself.

/// Default tick width. 16µs is comfortably finer than the OS sleep
/// granularity the wheel is compensating for, and coarse enough that a
/// retry-backoff timer rarely spans more than a few ticks.
pub const DEFAULT_GRANULARITY_NS: u64 = 16_384;

/// Default slot count: with the default granularity the wheel spans ~4ms
/// per revolution, several times the longest backoff the engines arm.
pub const DEFAULT_SLOTS: usize = 256;

/// One armed timer: absolute due time, arm sequence (FIFO tiebreak for
/// equal due times), and the opaque token handed back to the actor.
#[derive(Debug, Clone, Copy)]
struct Entry {
    due: u64,
    seq: u64,
    token: u64,
}

/// A hashed timer wheel over absolute nanosecond deadlines. See the
/// module docs for the design and the ordering contract.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity_ns: u64,
    /// Next tick to visit; never ahead of any armed entry's tick.
    cursor: u64,
    /// Armed entries across all slots.
    len: usize,
    /// Monotone arm counter (FIFO among equal due times).
    seq: u64,
    /// Exact earliest due among armed entries (`u64::MAX` when empty).
    earliest: u64,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new(DEFAULT_GRANULARITY_NS, DEFAULT_SLOTS)
    }
}

impl TimerWheel {
    /// Build a wheel with `slots` ticks of `granularity_ns` each per
    /// revolution.
    pub fn new(granularity_ns: u64, slots: usize) -> Self {
        assert!(granularity_ns >= 1, "granularity must be positive");
        assert!(slots >= 1, "need at least one slot");
        TimerWheel {
            slots: vec![Vec::new(); slots],
            granularity_ns,
            cursor: 0,
            len: 0,
            seq: 0,
            earliest: u64::MAX,
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arm a timer due at absolute time `due` (ns). O(1).
    pub fn insert(&mut self, due: u64, token: u64) {
        self.seq += 1;
        let entry = Entry {
            due,
            seq: self.seq,
            token,
        };
        let tick = due / self.granularity_ns;
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(entry);
        self.len += 1;
        self.earliest = self.earliest.min(due);
    }

    /// Exact earliest due time among armed timers, or `None` when empty.
    /// Safe to sleep until: no armed timer is due before it.
    pub fn next_due(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.earliest)
        }
    }

    /// Remove every entry due at or before `now` and append them to `out`
    /// as `(due, token)`, sorted by `(due, arm-sequence)`. Returns the
    /// number of expired entries.
    pub fn pop_expired(&mut self, now: u64, out: &mut Vec<(u64, u64)>) -> usize {
        let target = now / self.granularity_ns;
        if self.len == 0 || self.earliest > now {
            // Nothing can be due; still advance the cursor so future
            // visits start from the current tick.
            self.cursor = self.cursor.max(target);
            return 0;
        }
        let start = out.len();
        let n_slots = self.slots.len() as u64;
        // Walk from the earliest armed tick (a `restore` can park an entry
        // behind the cursor) to the current tick; a full revolution touches
        // every slot, so cap the walk there.
        let first = self.cursor.min(self.earliest / self.granularity_ns);
        let ticks = (target - first + 1).min(n_slots);
        let mut expired: Vec<Entry> = Vec::new();
        for t in first..first + ticks {
            let slot = (t % n_slots) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].due <= now {
                    expired.push(entries.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = target;
        self.len -= expired.len();
        expired.sort_unstable_by_key(|e| (e.due, e.seq));
        out.extend(expired.iter().map(|e| (e.due, e.token)));
        // Recompute the exact earliest bound over the survivors.
        self.earliest = self
            .slots
            .iter()
            .flatten()
            .map(|e| e.due)
            .min()
            .unwrap_or(u64::MAX);
        out.len() - start
    }

    /// Re-arm an entry that was popped but could not be fired (phase
    /// deadline or event limit tripped mid-batch). Keeps its original due
    /// time; relative order among re-inserted entries is preserved when
    /// they are re-inserted in popped order.
    pub fn restore(&mut self, due: u64, token: u64) {
        self.insert(due, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference implementation: the min-heap the wheel replaced.
    struct HeapTimers {
        heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
        seq: u64,
    }

    impl HeapTimers {
        fn new() -> Self {
            HeapTimers {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn insert(&mut self, due: u64, token: u64) {
            self.seq += 1;
            self.heap.push(Reverse((due, self.seq, token)));
        }
        fn pop_expired(&mut self, now: u64, out: &mut Vec<(u64, u64)>) {
            while let Some(Reverse((due, _, token))) = self.heap.peek().copied() {
                if due > now {
                    break;
                }
                self.heap.pop();
                out.push((due, token));
            }
        }
    }

    /// Deterministic pseudo-random stream (no external rand dependency
    /// needed at this layer).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn fires_in_heap_order() {
        // The wheel must pop the exact sequence the heap would, for any
        // interleaving of arms and expiry sweeps.
        let mut wheel = TimerWheel::new(1_000, 16);
        let mut heap = HeapTimers::new();
        let mut rng = 0x5EED_u64;
        let mut now = 0u64;
        let mut wheel_out = Vec::new();
        let mut heap_out = Vec::new();
        for round in 0..200 {
            // Arm a burst of timers at pseudo-random offsets, including
            // duplicates of the same due time (FIFO tiebreak must match).
            for _ in 0..(xorshift(&mut rng) % 5) {
                let due = now + xorshift(&mut rng) % 50_000;
                let token = round;
                wheel.insert(due, token);
                heap.insert(due, token);
            }
            now += xorshift(&mut rng) % 20_000;
            wheel.pop_expired(now, &mut wheel_out);
            heap.pop_expired(now, &mut heap_out);
            assert_eq!(wheel_out, heap_out, "diverged at now={now}");
        }
        // Drain the stragglers.
        now += 1_000_000;
        wheel.pop_expired(now, &mut wheel_out);
        heap.pop_expired(now, &mut heap_out);
        assert_eq!(wheel_out, heap_out);
        assert!(wheel.is_empty());
        assert!(wheel_out.len() > 100, "test must actually fire timers");
    }

    #[test]
    fn same_due_timers_fire_in_arm_order() {
        let mut wheel = TimerWheel::new(1_000, 8);
        for token in 0..50 {
            wheel.insert(7_777, token);
        }
        let mut out = Vec::new();
        wheel.pop_expired(10_000, &mut out);
        let tokens: Vec<u64> = out.iter().map(|&(_, t)| t).collect();
        assert_eq!(tokens, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn never_fires_early() {
        let mut wheel = TimerWheel::default();
        let mut rng = 0xABCD_u64;
        for _ in 0..500 {
            wheel.insert(xorshift(&mut rng) % 10_000_000, 0);
        }
        let mut now = 0;
        let mut out = Vec::new();
        while !wheel.is_empty() {
            now += 100_000;
            out.clear();
            wheel.pop_expired(now, &mut out);
            for &(due, _) in &out {
                assert!(due <= now, "fired {due} early at {now}");
            }
        }
    }

    #[test]
    fn far_future_timers_survive_revolutions() {
        // A timer many revolutions out shares a slot with near timers and
        // must stay armed until actually due.
        let mut wheel = TimerWheel::new(1_000, 8); // 8µs revolution
        wheel.insert(100_000, 42); // 12.5 revolutions out
        wheel.insert(500, 1);
        let mut out = Vec::new();
        for step in 1..=120 {
            out.clear();
            wheel.pop_expired(step * 1_000, &mut out);
            for &(_, t) in &out {
                assert!(t != 42 || step * 1_000 >= 100_000, "fired early");
            }
        }
        assert!(wheel.is_empty(), "both timers fired eventually");
    }

    #[test]
    fn past_due_insert_fires_on_next_sweep() {
        let mut wheel = TimerWheel::default();
        let mut out = Vec::new();
        wheel.pop_expired(1_000_000, &mut out); // advance the cursor
        wheel.insert(999_999, 7); // due in the past relative to the cursor
        wheel.pop_expired(1_000_001, &mut out);
        assert_eq!(out, vec![(999_999, 7)]);
    }

    #[test]
    fn next_due_is_exact_and_safe_to_sleep_until() {
        let mut wheel = TimerWheel::default();
        assert_eq!(wheel.next_due(), None);
        wheel.insert(5_000_000, 1);
        wheel.insert(3_000_000, 2);
        assert_eq!(wheel.next_due(), Some(3_000_000));
        let mut out = Vec::new();
        wheel.pop_expired(3_000_000, &mut out);
        assert_eq!(out, vec![(3_000_000, 2)]);
        // After a pop the bound is recomputed over the survivors.
        assert_eq!(wheel.next_due(), Some(5_000_000));
    }

    #[test]
    fn restore_preserves_pending_order() {
        let mut wheel = TimerWheel::default();
        wheel.insert(1_000, 1);
        wheel.insert(1_000, 2);
        wheel.insert(2_000, 3);
        let mut out = Vec::new();
        wheel.pop_expired(5_000, &mut out);
        assert_eq!(out.len(), 3);
        // Fire only the first; give the rest back.
        for &(due, token) in &out[1..] {
            wheel.restore(due, token);
        }
        let mut again = Vec::new();
        wheel.pop_expired(5_000, &mut again);
        assert_eq!(again, vec![(1_000, 2), (2_000, 3)]);
    }
}
