//! CPU affinity for the threaded backend's engine threads.
//!
//! A thin, dependency-free FFI over Linux `sched_getaffinity` /
//! `sched_setaffinity` (std already links libc, so plain `extern "C"`
//! declarations resolve at link time — no `libc` crate needed). On every
//! other platform the functions degrade to "no cores, pinning fails",
//! which callers treat as *pinning unavailable*, never as an error: a
//! non-Linux build runs identically with affinity left to the OS.
//!
//! Core identifiers are the kernel's CPU numbers. [`allowed_cpus`]
//! reports the calling thread's current affinity mask rather than
//! assuming `0..ncpus`, so pinning cooperates with cgroup/cpuset
//! restrictions (pinning to a core outside the allowed set would fail
//! with `EINVAL`).

/// Upper bound on addressable CPUs: 16 × 64 = 1024, the same limit as
/// glibc's default `cpu_set_t`.
const MASK_WORDS: usize = 16;

#[cfg(target_os = "linux")]
mod imp {
    use super::MASK_WORDS;

    extern "C" {
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// CPU numbers the calling thread may run on, ascending; empty when
    /// the affinity mask cannot be read.
    pub fn allowed_cpus() -> Vec<usize> {
        let mut mask = [0u64; MASK_WORDS];
        // pid 0 = the calling thread (Linux affinity is per-thread).
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) };
        if rc != 0 {
            return Vec::new();
        }
        let mut cpus = Vec::new();
        for (w, word) in mask.iter().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                cpus.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        cpus
    }

    /// Pin the calling thread to a single CPU; `false` on failure (bad
    /// CPU number, insufficient privileges, exotic kernels).
    pub fn pin_current_thread(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    /// Non-Linux: affinity control is unavailable; report no cores.
    pub fn allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    /// Non-Linux: pinning is unavailable and always reports failure.
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

pub use imp::{allowed_cpus, pin_current_thread};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn allowed_cpus_nonempty_and_pinnable_on_linux() {
        let cpus = allowed_cpus();
        assert!(!cpus.is_empty(), "a running thread has at least one CPU");
        // Pin to the first allowed core and back to verify the syscall
        // path; restore the full mask afterwards is unnecessary for the
        // test binary (each test runs on its own thread).
        assert!(pin_current_thread(cpus[0]));
        assert_eq!(allowed_cpus(), vec![cpus[0]]);
    }

    #[test]
    fn pinning_to_an_absurd_cpu_fails_gracefully() {
        assert!(!pin_current_thread(MASK_WORDS * 64 + 1));
    }
}
