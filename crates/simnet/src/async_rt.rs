//! The async multiplexing backend: thousands of engines on a fixed
//! worker pool.
//!
//! The threaded backend ([`crate::ThreadedRuntime`]) dedicates one OS
//! thread to each engine — faithful to the paper's one-engine-per-core
//! deployment, but it caps the cluster at roughly the host's core count.
//! This backend breaks that cap: engines are inert [`Actor`] state
//! machines already, so they become *tasks* on a work-stealing ready
//! queue (`taskq`), driven by `N = CHILLER_WORKERS` workers (default =
//! detected parallelism). A 1000-partition cluster runs on a laptop.
//!
//! ## Executor model
//!
//! Each engine id has a `taskq::SchedState` (IDLE / QUEUED / RUNNING /
//! DIRTY) guaranteeing the id sits in the ready queue at most once and
//! that wakeups are never lost: delivering work to an engine calls
//! `notify()`, which either enqueues the id (IDLE), finds it already
//! scheduled, or marks the in-flight run DIRTY so the runner re-enqueues
//! it on finish. A popped engine runs **exclusively** on one worker —
//! the state machine is the mutual-exclusion proof; the `Mutex` around
//! each engine slot is uncontended by construction and exists to move
//! ownership safely between workers and the paused-phase main thread.
//!
//! ## What carries over from the threaded backend, and how
//!
//! The PR-4/5 protocols are load-bearing and survive verbatim, adapted
//! from thread granularity to engine granularity:
//!
//! * **Never-blocking sends, global-FIFO flush** — each engine parks
//!   remote sends in a per-engine `pending` queue, flushed in send order
//!   across *all* destinations and stalling entirely at the first full
//!   mailbox (cross-destination send order is replica-divergence-
//!   critical; see DESIGN.md §11–12). A stalled engine is simply
//!   re-enqueued instead of its thread spinning: the destinations are
//!   drained by the same pool, so capacity frees up and the retry makes
//!   progress. Because an engine runs on one worker at a time, its flush
//!   order is exactly the single-thread order the invariant needs.
//! * **Quiescence** — the same global outstanding-work counter
//!   (spawns − retirements), accumulated per engine and published in a
//!   single atomic add *before* the flush, so no worker can consume a
//!   message whose registration is pending. Workers exit when the
//!   counter reads zero.
//! * **Park/unpark** — idle workers use the same publish-then-recheck
//!   handshake (`taskq::Parker`); making an engine ready wakes one
//!   sleeping worker, and a missed race costs at most one bounded park.
//!
//! ## What changes
//!
//! * **Mailboxes are shared, not per-sender** — `ringq::mpsc::Producer`
//!   pushes through `&self`, so all engines share **one** producer per
//!   destination: O(n) outbox state instead of the threaded backend's
//!   O(n²) per-sender clone matrix, which is what makes 1000 partitions
//!   affordable. (The ring's ticket order still gives each destination
//!   the cross-sender arrival FIFO the replication path relies on.)
//! * **Timer wheels are per-worker, not per-engine** — each worker owns
//!   a hashed [`TimerWheel`] plus a slab mapping wheel tokens to
//!   `(engine, actor token)`. Expired entries are routed to the owning
//!   engine's fire queue and the engine is notified; the engine fires
//!   them at the start of its next run. Timer slop is therefore bounded
//!   by park granularity plus queueing delay — this backend measures
//!   scheduling scale, not timer fidelity (the threaded backend keeps
//!   the spin-before-sleep precision story).
//! * **`CHILLER_WORKERS`** sizes the pool (see [`crate::sizing`]).
//!
//! Run phases, pauses, control-plane injection ([`Runtime::actors_mut`],
//! [`Runtime::with_actor_ctx`]) behave exactly as on the other backends:
//! workers exist only inside scoped run phases; between phases the main
//! thread has exclusive actor access, and in-flight messages, parked
//! sends, armed timers and the ready queue itself survive the pause.

use crate::affinity;
use crate::runtime::{Actor, Backend, Clock, Ctx, Mailbox, NetStats, Runtime, Verb};
use crate::sizing;
use crate::threaded::{MailboxKind, PinPolicy, DEFAULT_MAILBOX_CAPACITY};
use crate::timer_wheel::TimerWheel;
use chiller_common::ids::NodeId;
use chiller_common::metrics::Histogram;
use chiller_common::time::{Duration, SimTime};
use chiller_obs::RuntimeTelemetry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::Instant;

/// Longest a worker sleeps before re-checking the deadline, the ready
/// queue and the quiescence counter (responsiveness, not correctness).
const MAX_PARK_NS: u64 = 200_000;

/// Most events (timer fires + messages) an engine handles per scheduling
/// turn before it yields the worker: bounds both scheduling latency for
/// other ready engines and the phase-control latency (deadline / event
/// limit are re-checked between turns).
const EVENT_BATCH: usize = 64;

/// Construction options for an [`AsyncRuntime`].
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Per-engine mailbox bound (messages). Rounded up to a power of two
    /// by the ring mailboxes.
    pub capacity: usize,
    /// Mailbox implementation (shared with the threaded backend).
    pub mailbox: MailboxKind,
    /// Worker-pool size; `None` resolves `CHILLER_WORKERS` / detected
    /// parallelism via [`sizing::async_workers`]. Clamped to the engine
    /// count either way.
    pub workers: Option<usize>,
    /// Core-pinning policy for the pool's workers.
    pub pin: PinPolicy,
}

impl Default for AsyncConfig {
    /// Defaults resolve the environment knobs: capacity
    /// [`DEFAULT_MAILBOX_CAPACITY`], mailbox from `CHILLER_MAILBOX`,
    /// workers from `CHILLER_WORKERS`, pinning from `CHILLER_PIN`.
    fn default() -> Self {
        AsyncConfig {
            capacity: DEFAULT_MAILBOX_CAPACITY,
            mailbox: MailboxKind::from_env(),
            workers: None,
            pin: PinPolicy::from_env(),
        }
    }
}

/// A message in flight between two engines.
struct Envelope<M> {
    src: NodeId,
    verb: Verb,
    msg: M,
}

/// Receiving end of an engine's mailbox. Unlike the threaded backend
/// there is no SPSC fast path: any worker may run any sending engine, so
/// every mailbox is multi-producer by construction.
enum Inbox<M> {
    /// `sync_channel` fallback.
    Channel(Receiver<Envelope<M>>),
    /// Lock-free MPSC ring.
    Ring(ringq::mpsc::Consumer<Envelope<M>>),
}

/// Outcome of a non-blocking receive.
enum Recv<M> {
    Msg(Envelope<M>),
    Empty,
}

impl<M> Inbox<M> {
    /// Occupancy snapshot (rings only — `sync_channel` has no cheap
    /// length, so the channel fallback reports 0 and the occupancy HWM
    /// telemetry is a ring-mailbox feature, same as the threaded backend).
    #[inline]
    fn len(&self) -> usize {
        match self {
            Inbox::Channel(_) => 0,
            Inbox::Ring(rx) => rx.len(),
        }
    }

    #[inline]
    fn try_recv(&mut self) -> Recv<M> {
        match self {
            // A disconnect is impossible while the runtime lives (the
            // shared outboxes hold every sender), so it reads as Empty.
            Inbox::Channel(rx) => match rx.try_recv() {
                Ok(env) => Recv::Msg(env),
                Err(_) => Recv::Empty,
            },
            Inbox::Ring(rx) => match rx.pop() {
                Some(env) => Recv::Msg(env),
                None => Recv::Empty,
            },
        }
    }
}

/// Sending end of one destination's mailbox — **one shared instance per
/// destination**, used by every sender concurrently (`ringq` producers
/// push through `&self`; `SyncSender` is `Sync`). This is the O(n)
/// outbox layout that replaces the threaded backend's O(n²) per-sender
/// clone matrix.
enum SharedOutbox<M> {
    Channel(SyncSender<Envelope<M>>),
    Ring(ringq::mpsc::Producer<Envelope<M>>),
}

/// Outcome of a non-blocking send.
enum SendOutcome<M> {
    Ok,
    Full(Envelope<M>),
}

impl<M> SharedOutbox<M> {
    #[inline]
    fn try_send(&self, env: Envelope<M>) -> SendOutcome<M> {
        match self {
            SharedOutbox::Channel(tx) => match tx.try_send(env) {
                Ok(()) => SendOutcome::Ok,
                Err(TrySendError::Full(env)) => SendOutcome::Full(env),
                // Teardown-only; dropping is harmless (mirrors threaded).
                Err(TrySendError::Disconnected(_)) => SendOutcome::Ok,
            },
            SharedOutbox::Ring(tx) => match tx.push(env) {
                Ok(()) => SendOutcome::Ok,
                Err(env) => SendOutcome::Full(env),
            },
        }
    }
}

/// Per-engine state that persists across run phases. While a phase runs
/// it lives inside the engine's slot (owned by whichever worker holds
/// the engine); between phases it moves back into the runtime so the
/// control plane can reach it without locks.
struct EngineState<M> {
    node: NodeId,
    inbox: Inbox<M>,
    /// Remote sends parked until this engine's next flush, in send order
    /// across *all* destinations (global FIFO — see the module docs and
    /// the threaded backend's `NodeState::pending` for why per-
    /// destination order is not enough).
    pending: VecDeque<(NodeId, Envelope<M>)>,
    /// Self-sends: exactly one producer and one consumer (whichever
    /// worker currently runs this engine), so a plain queue suffices.
    local: VecDeque<Envelope<M>>,
    /// Spawns (sends + armed timers) minus retirements not yet published
    /// to `Shared::outstanding`.
    outstanding_delta: i64,
    /// Whether `on_start` has run.
    started: bool,
    stats: NetStats,
    /// Scheduler counters owned by this engine (merged on read while
    /// paused; the pool-wide counters live in [`Shared`] instead).
    tel: RuntimeTelemetry,
}

impl<M> EngineState<M> {
    /// Publish the accumulated outstanding-work delta. Must run before
    /// the engine's envelopes are flushed and before its worker may
    /// check quiescence — same ordering argument as the threaded
    /// backend's `publish_outstanding`.
    #[inline]
    fn publish_outstanding(&mut self, shared: &Shared<M>) {
        if self.outstanding_delta != 0 {
            shared
                .outstanding
                .fetch_add(self.outstanding_delta, Ordering::SeqCst);
            self.outstanding_delta = 0;
        }
    }
}

/// An engine slot: actor + state, owned by at most one worker at a time.
/// `None` only between phases (state is moved back into the runtime).
/// The mutex is uncontended while a phase runs — the `SchedState`
/// machine already serializes access — it exists to make the ownership
/// handoff between workers (and the phase-boundary moves) safe Rust.
struct EngineSlot<M, A> {
    cell: Mutex<Option<Engine<M, A>>>,
}

struct Engine<M, A> {
    actor: A,
    st: EngineState<M>,
}

/// One worker's timer state: a hashed wheel whose tokens index a slab of
/// `(engine, actor token)` pairs. Owned exclusively by worker `w` across
/// all phases (`&mut` handed into the scoped thread), so timer arming
/// and expiry are synchronization-free.
struct WorkerTimers {
    wheel: TimerWheel,
    slab: Vec<(usize, u64)>,
    free: Vec<usize>,
    /// Scratch for expired batches (reused).
    fired: Vec<(u64, u64)>,
    /// Firing slop (expiry wall time − due time) for this worker's wheel.
    /// Expected to be coarser than the threaded backend's: bounded by
    /// park granularity plus queueing delay, not spin precision.
    slop: Histogram,
}

impl WorkerTimers {
    fn new() -> Self {
        WorkerTimers {
            wheel: TimerWheel::default(),
            slab: Vec::new(),
            free: Vec::new(),
            fired: Vec::new(),
            slop: Histogram::new(),
        }
    }

    /// Arm `token` for `engine` at absolute `due` ns.
    fn arm(&mut self, due: u64, engine: usize, token: u64) {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = (engine, token);
                i
            }
            None => {
                self.slab.push((engine, token));
                self.slab.len() - 1
            }
        };
        self.wheel.insert(due, idx as u64);
    }
}

/// Coordination state shared by all workers during a phase (and by the
/// control plane between phases).
struct Shared<M> {
    /// Origin of the monotonic wall clock.
    start: Instant,
    /// Queued messages + armed timers + handlers mid-flight, cluster-wide.
    outstanding: AtomicI64,
    /// Wall-clock deadline (ns since `start`) of the current phase.
    deadline_ns: AtomicU64,
    /// Runaway guard for `run_to_quiescence`.
    event_limit: AtomicU64,
    /// Total events processed (published per engine turn — approximate
    /// while a turn is mid-flight).
    events: AtomicU64,
    /// One shared sender per destination engine (O(n) total).
    outboxes: Vec<SharedOutbox<M>>,
    /// Per-engine scheduling state machines.
    scheds: Vec<taskq::SchedState>,
    /// Per-engine expired-timer tokens awaiting delivery (pushed by the
    /// worker whose wheel expired them, drained by the engine's runner).
    fires: Vec<Mutex<VecDeque<u64>>>,
    /// The ready queue of engine ids.
    queue: taskq::TaskQueue,
    /// One park slot per *worker* (not per engine).
    parkers: Vec<taskq::Parker>,
    /// Set when any worker's `sched_setaffinity` call fails.
    pin_failed: AtomicBool,
    /// Notifies that won the enqueue duty (engine went IDLE → QUEUED).
    notifies: AtomicU64,
    /// Turns that neither handled an event nor delivered a parked
    /// envelope (pure flush-stall retries — the yield path).
    zero_progress_turns: AtomicU64,
    /// Park handshakes cancelled by the publish-then-recheck leg finding
    /// ready work — each one is a wakeup the handshake refused to lose.
    lost_wakeups_avoided: AtomicU64,
}

impl<M> Shared<M> {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    #[inline]
    fn limit_hit(&self) -> bool {
        self.events.load(Ordering::Relaxed) >= self.event_limit.load(Ordering::Relaxed)
    }

    /// Make engine `e` ready: hand the enqueue duty through its state
    /// machine, push onto the caller's local deque (worker context) or
    /// the injector (control plane), and wake one sleeping worker.
    fn notify(&self, e: usize, from_worker: Option<usize>) {
        if self.scheds[e].notify() {
            self.notifies.fetch_add(1, Ordering::Relaxed);
            match from_worker {
                Some(w) => self.queue.push_local(w, e),
                None => self.queue.inject(e),
            }
            self.wake_one(from_worker);
        }
    }

    /// Wake one sleeping worker (skipping the caller, which is awake).
    fn wake_one(&self, except: Option<usize>) {
        for (i, p) in self.parkers.iter().enumerate() {
            if Some(i) != except && p.wake() {
                return;
            }
        }
    }
}

/// A fixed pool of workers multiplexing every engine. See the module
/// docs for the executor model; see [`crate::ThreadedRuntime`] for the
/// protocols this backend inherits.
pub struct AsyncRuntime<M, A> {
    /// Actors, in node order — populated between phases, drained into
    /// the slots while a phase runs.
    actors: Vec<A>,
    /// Engine states, same lifecycle as `actors`.
    states: Vec<EngineState<M>>,
    slots: Vec<EngineSlot<M, A>>,
    /// One timer domain per worker, `&mut`-borrowed by that worker
    /// during phases.
    worker_timers: Vec<WorkerTimers>,
    shared: Shared<M>,
    nworkers: usize,
    started: bool,
    mailbox: MailboxKind,
    pin: PinPolicy,
    /// CPUs the process may use (empty when pinning is off/unknown).
    pin_cpus: Vec<usize>,
}

impl<M: Send, A: Actor<M> + Send> AsyncRuntime<M, A> {
    /// Build an async runtime over the given actors; actor `i` runs as
    /// engine `NodeId(i)`. All knobs resolve from the environment (see
    /// [`AsyncConfig::default`]).
    pub fn new(actors: Vec<A>) -> Self {
        Self::with_config(actors, AsyncConfig::default())
    }

    /// Build with explicit options.
    pub fn with_config(actors: Vec<A>, cfg: AsyncConfig) -> Self {
        assert!(
            cfg.capacity >= 1,
            "mailboxes must hold at least one message"
        );
        let n = actors.len();
        let nworkers = cfg
            .workers
            .map(|w| w.clamp(1, n.max(1)))
            .unwrap_or_else(|| sizing::async_workers(n));
        let mut inboxes: Vec<Inbox<M>> = Vec::with_capacity(n);
        let mut outboxes: Vec<SharedOutbox<M>> = Vec::with_capacity(n);
        for _ in 0..n {
            match cfg.mailbox {
                MailboxKind::Channel => {
                    let (tx, rx) = sync_channel(cfg.capacity);
                    inboxes.push(Inbox::Channel(rx));
                    outboxes.push(SharedOutbox::Channel(tx));
                }
                MailboxKind::Ring => {
                    let (tx, rx) = ringq::mpsc::bounded(cfg.capacity);
                    inboxes.push(Inbox::Ring(rx));
                    outboxes.push(SharedOutbox::Ring(tx));
                }
            }
        }
        let states: Vec<EngineState<M>> = inboxes
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| EngineState {
                node: NodeId(i as u32),
                inbox,
                pending: VecDeque::new(),
                local: VecDeque::new(),
                outstanding_delta: 0,
                started: false,
                stats: NetStats::default(),
                tel: RuntimeTelemetry::default(),
            })
            .collect();
        let pin_cpus = match cfg.pin {
            PinPolicy::Off => Vec::new(),
            PinPolicy::Cores => affinity::allowed_cpus(),
        };
        AsyncRuntime {
            actors,
            states,
            slots: (0..n)
                .map(|_| EngineSlot {
                    cell: Mutex::new(None),
                })
                .collect(),
            worker_timers: (0..nworkers).map(|_| WorkerTimers::new()).collect(),
            shared: Shared {
                start: Instant::now(),
                outstanding: AtomicI64::new(0),
                deadline_ns: AtomicU64::new(0),
                event_limit: AtomicU64::new(u64::MAX),
                events: AtomicU64::new(0),
                outboxes,
                scheds: (0..n).map(|_| taskq::SchedState::new()).collect(),
                fires: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
                queue: taskq::TaskQueue::new(nworkers),
                parkers: (0..nworkers).map(|_| taskq::Parker::new()).collect(),
                pin_failed: AtomicBool::new(false),
                notifies: AtomicU64::new(0),
                zero_progress_turns: AtomicU64::new(0),
                lost_wakeups_avoided: AtomicU64::new(0),
            },
            nworkers,
            started: false,
            mailbox: cfg.mailbox,
            pin: cfg.pin,
            pin_cpus,
        }
    }

    /// The mailbox implementation this runtime was built with.
    pub fn mailbox_kind(&self) -> MailboxKind {
        self.mailbox
    }

    /// The worker-pool size (fixed at construction).
    pub fn worker_count(&self) -> usize {
        self.nworkers
    }

    /// The timer domain of engine `node` for control-plane injection:
    /// timers armed while paused go to the engine's home worker's wheel.
    /// (While running, timers go to whichever worker is running the
    /// engine — domains only affect which thread fires them.)
    fn home_worker(&self, node: usize) -> usize {
        node % self.nworkers
    }

    /// Run one phase: move actors+states into the slots, spawn the
    /// worker pool (scoped), join when every worker has hit the deadline,
    /// observed quiescence, or tripped the event limit; then move the
    /// state back. Returns events processed during the phase.
    fn run_phase(&mut self, deadline_ns: u64, max_events: u64) -> u64 {
        let n = self.actors.len();
        let first = !self.started;
        if first {
            self.started = true;
            // Startup hold: no worker may observe "quiescent" before
            // every engine's on_start has armed its initial work.
            self.shared
                .outstanding
                .fetch_add(n as i64, Ordering::SeqCst);
            // Seed the ready queue round-robin across the workers'
            // deques so on_start work spreads without stealing.
            for e in 0..n {
                if self.shared.scheds[e].notify() {
                    self.shared.queue.push_local(e % self.nworkers, e);
                }
            }
        }
        self.shared.deadline_ns.store(deadline_ns, Ordering::SeqCst);
        let before = self.shared.events.load(Ordering::SeqCst);
        self.shared
            .event_limit
            .store(before.saturating_add(max_events), Ordering::SeqCst);
        // Hand each engine to the pool.
        for (e, (actor, st)) in self.actors.drain(..).zip(self.states.drain(..)).enumerate() {
            *self.slots[e].cell.lock().expect("engine slot lock") = Some(Engine { actor, st });
        }
        let shared = &self.shared;
        let slots = &self.slots;
        let pin_cpus = &self.pin_cpus;
        std::thread::scope(|scope| {
            for (w, timers) in self.worker_timers.iter_mut().enumerate() {
                let pin = (!pin_cpus.is_empty()).then(|| pin_cpus[w % pin_cpus.len()]);
                scope.spawn(move || worker_loop(w, timers, shared, slots, pin));
            }
        });
        // Reclaim the engines for the paused control plane.
        for slot in &self.slots {
            let eng = slot
                .cell
                .lock()
                .expect("engine slot lock")
                .take()
                .expect("engine present at phase end");
            self.actors.push(eng.actor);
            self.states.push(eng.st);
        }
        self.shared.events.load(Ordering::SeqCst) - before
    }

    /// Whether this runtime's workers are pinned (same honesty contract
    /// as the threaded backend: requested, resolvable, ran, never failed).
    fn pinned_now(&self) -> bool {
        self.pin == PinPolicy::Cores
            && !self.pin_cpus.is_empty()
            && self.started
            && !self.shared.pin_failed.load(Ordering::Relaxed)
    }
}

/// Push parked sends into their destination mailboxes in send order,
/// stalling entirely at the first full mailbox (global-FIFO invariant —
/// see `EngineState::pending`). Successful deliveries notify the
/// destination engine. Returns how many envelopes were delivered.
fn flush_pending<M>(st: &mut EngineState<M>, shared: &Shared<M>, w: usize) -> u64 {
    st.tel.parked_depth_hwm = st.tel.parked_depth_hwm.max(st.pending.len() as u64);
    let mut delivered = 0;
    while let Some((dst, env)) = st.pending.pop_front() {
        match shared.outboxes[dst.idx()].try_send(env) {
            SendOutcome::Ok => {
                delivered += 1;
                shared.notify(dst.idx(), Some(w));
            }
            SendOutcome::Full(env) => {
                st.pending.push_front((dst, env));
                st.tel.flush_stalls += 1;
                break;
            }
        }
    }
    delivered
}

/// Expire worker `w`'s due timers: route each expired token to its
/// engine's fire queue and notify the engine. Returns how many expired.
fn expire_timers<M>(timers: &mut WorkerTimers, shared: &Shared<M>, w: usize) -> usize {
    let mut batch = std::mem::take(&mut timers.fired);
    batch.clear();
    let now = shared.now_ns();
    timers.wheel.pop_expired(now, &mut batch);
    let count = batch.len();
    for &(due, slab_idx) in &batch {
        timers.slop.record(now.saturating_sub(due));
        let (engine, token) = timers.slab[slab_idx as usize];
        timers.free.push(slab_idx as usize);
        shared.fires[engine]
            .lock()
            .expect("fire queue lock")
            .push_back(token);
        shared.notify(engine, Some(w));
    }
    timers.fired = batch;
    count
}

/// One scheduling turn of engine `e` on worker `w`: run `on_start` if
/// needed, fire queued timer tokens, drain up to [`EVENT_BATCH`] events,
/// publish bookkeeping, flush parked sends, then hand the engine back to
/// the state machine (re-enqueueing when observable work remains).
///
/// Returns whether the turn made progress (handled an event or delivered
/// a parked envelope). A zero-progress turn means the engine exists only
/// to retry a stalled flush — the worker yields its timeslice so the
/// destination's worker can drain (on oversubscribed hosts the retry
/// loop would otherwise starve the very engine it is waiting on).
fn run_engine<M, A: Actor<M>>(
    e: usize,
    w: usize,
    timers: &mut WorkerTimers,
    shared: &Shared<M>,
    slots: &[EngineSlot<M, A>],
) -> bool {
    shared.scheds[e].begin();
    let mut guard = slots[e].cell.lock().expect("engine slot lock");
    let eng = guard.as_mut().expect("engine present during phase");
    let (actor, st) = (&mut eng.actor, &mut eng.st);

    if !st.started {
        st.started = true;
        {
            let mut mb = AsyncMailbox { st, timers, shared };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            actor.on_start(&mut ctx);
        }
        st.publish_outstanding(shared);
        // Release this engine's startup hold.
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    }

    let mut handled = 0u64;

    // 1. Fire expired timer tokens routed here by the worker wheels.
    //    Drained in bounded chunks so a timer storm cannot monopolize
    //    the worker past the batch budget.
    while handled < EVENT_BATCH as u64 {
        let token = {
            let mut q = shared.fires[e].lock().expect("fire queue lock");
            match q.pop_front() {
                Some(t) => t,
                None => break,
            }
        };
        st.stats.timer_fires += 1;
        st.stats.events_processed += 1;
        handled += 1;
        let mut mb = AsyncMailbox { st, timers, shared };
        let mut ctx = Ctx::from_mailbox(&mut mb);
        actor.on_timer(&mut ctx, token);
    }

    // 2. Drain messages: self-sends first (no synchronization), then the
    //    shared inbox. `drained_dry` records whether we stopped because
    //    the sources were empty (vs the batch budget) — the has_more
    //    computation must not depend on peeking a channel.
    st.tel.ring_occupancy_hwm = st.tel.ring_occupancy_hwm.max(st.inbox.len() as u64);
    let mut drained_dry = false;
    while handled < EVENT_BATCH as u64 {
        if let Some(env) = st.local.pop_front() {
            st.stats.events_processed += 1;
            handled += 1;
            let mut mb = AsyncMailbox { st, timers, shared };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            actor.on_message(&mut ctx, env.src, env.verb, env.msg);
            continue;
        }
        match st.inbox.try_recv() {
            Recv::Msg(env) => {
                st.stats.events_processed += 1;
                handled += 1;
                let mut mb = AsyncMailbox { st, timers, shared };
                let mut ctx = Ctx::from_mailbox(&mut mb);
                actor.on_message(&mut ctx, env.src, env.verb, env.msg);
            }
            Recv::Empty => {
                drained_dry = true;
                break;
            }
        }
    }

    // 3. Retire the batch and publish the delta *before* flushing, so
    //    the registration of every spawned message precedes its
    //    availability (quiescence soundness — see module docs).
    if handled > 0 {
        shared.events.fetch_add(handled, Ordering::Relaxed);
        st.outstanding_delta -= handled as i64;
        st.tel.batches_drained += 1;
    }
    // End of this engine's turn: amortized side effects (group-commit
    // fsyncs) flush at the same boundary parked sends do. Also covers the
    // zero-progress case — an engine going idle must not leave a commit
    // buffered. No-op unless something is pending.
    actor.on_batch_end();
    st.publish_outstanding(shared);
    let delivered = flush_pending(st, shared, w);

    // 4. Observable work left? Un-drained sources, a stalled flush, or
    //    timer tokens that arrived while we ran. Anything that arrives
    //    after this check is covered by notify(): the state machine is
    //    RUNNING, so the producer marks it DIRTY and finish() converts
    //    that into a re-enqueue.
    let has_more = !drained_dry
        || !st.pending.is_empty()
        || !shared.fires[e].lock().expect("fire queue lock").is_empty();
    drop(guard);
    if shared.scheds[e].finish(has_more) {
        shared.queue.push_local(w, e);
        // No wake: this worker just freed up and pops it next turn, and
        // siblings steal it if they idle first.
    }
    handled > 0 || delivered > 0
}

/// The worker loop: expire own timers, run one ready engine, re-check
/// phase controls; park when idle. The loop invariant matches the
/// threaded backend: every engine's `outstanding_delta` is published
/// whenever no worker holds it, so the quiescence check is sound.
fn worker_loop<M, A: Actor<M>>(
    w: usize,
    timers: &mut WorkerTimers,
    shared: &Shared<M>,
    slots: &[EngineSlot<M, A>],
    pin: Option<usize>,
) {
    if let Some(cpu) = pin {
        if !affinity::pin_current_thread(cpu) {
            shared.pin_failed.store(true, Ordering::Relaxed);
        }
    }
    shared.parkers[w].register();
    loop {
        let deadline = shared.deadline_ns.load(Ordering::SeqCst);
        if shared.now_ns() >= deadline {
            return; // Pause: all state survives for the next phase.
        }
        if shared.limit_hit() {
            return; // Runaway guard tripped.
        }

        expire_timers(timers, shared, w);

        if let Some(e) = shared.queue.pop(w) {
            if !run_engine(e, w, timers, shared, slots) {
                // Pure flush-stall retry: give the destination's worker
                // the CPU before spinning another fruitless turn.
                shared.zero_progress_turns.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
            continue;
        }

        // Nothing ready here; if nothing is outstanding anywhere, the
        // cluster is quiescent.
        if shared.outstanding.load(Ordering::SeqCst) == 0 {
            return;
        }

        // Idle: park until this worker's next timer, the deadline, or a
        // bounded tick — whichever is first. Ready-queue pushes wake us.
        let now = shared.now_ns();
        let wake = timers
            .wheel
            .next_due()
            .unwrap_or(u64::MAX)
            .min(deadline)
            .min(now.saturating_add(MAX_PARK_NS));
        let parker = &shared.parkers[w];
        parker.prepare_park();
        // Re-check after publishing the flag (the handshake's re-check
        // leg): a push that happened before the publish is ours to see.
        if shared.queue.has_ready() {
            parker.cancel_park();
            shared.lost_wakeups_avoided.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if shared.outstanding.load(Ordering::SeqCst) == 0 {
            parker.cancel_park();
            continue;
        }
        parker.park_timeout(wake.saturating_sub(now).max(1));
    }
}

impl<M: Send, A: Actor<M> + Send> Clock for AsyncRuntime<M, A> {
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }
}

impl<M: Send, A: Actor<M> + Send> Runtime<M, A> for AsyncRuntime<M, A> {
    fn backend(&self) -> Backend {
        Backend::Async
    }

    fn stats(&self) -> NetStats {
        let mut merged = NetStats::default();
        for st in &self.states {
            merged.merge(&st.stats);
        }
        merged
    }

    fn num_nodes(&self) -> usize {
        self.actors.len()
    }

    fn actors(&self) -> &[A] {
        &self.actors
    }

    fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        self.run_phase(until.as_nanos(), u64::MAX)
    }

    fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.run_phase(u64::MAX, max_events)
    }

    fn pinned(&self) -> bool {
        self.pinned_now()
    }

    fn workers(&self) -> usize {
        self.nworkers
    }

    fn telemetry(&self) -> RuntimeTelemetry {
        let mut tel = RuntimeTelemetry::default();
        for st in &self.states {
            tel.merge(&st.tel);
        }
        for wt in &self.worker_timers {
            tel.timer_slop.merge(&wt.slop);
        }
        for p in &self.shared.parkers {
            tel.parks += p.parks();
            tel.unparks += p.wakes();
        }
        let q = self.shared.queue.stats();
        tel.tasks_pushed = q.pushed;
        tel.tasks_injected = q.injected;
        tel.tasks_popped = q.popped;
        tel.tasks_stolen = q.stolen;
        tel.steal_batches = q.steal_batches;
        tel.notifies = self.shared.notifies.load(Ordering::Relaxed);
        tel.zero_progress_turns = self.shared.zero_progress_turns.load(Ordering::Relaxed);
        tel.lost_wakeups_avoided = self.shared.lost_wakeups_avoided.load(Ordering::Relaxed);
        tel
    }

    fn mailbox_kind(&self) -> Option<MailboxKind> {
        Some(self.mailbox)
    }

    fn with_actor_ctx(&mut self, node: NodeId, f: &mut dyn FnMut(&mut A, &mut Ctx<'_, M>)) {
        let e = node.idx();
        let w = self.home_worker(e);
        let st = &mut self.states[e];
        {
            let mut mb = AsyncMailbox {
                st,
                timers: &mut self.worker_timers[w],
                shared: &self.shared,
            };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            f(&mut self.actors[e], &mut ctx);
        }
        // Register injected sends/timers now; the envelopes themselves
        // stay parked until the engine's first turn next phase — which
        // the notify below guarantees happens.
        st.publish_outstanding(&self.shared);
        if !st.pending.is_empty() || !st.local.is_empty() {
            self.shared.notify(e, None);
        }
    }
}

/// The async backend's [`Mailbox`]: same send/timer semantics as the
/// threaded backend's, but timers go to the *current worker's* wheel and
/// sends park in the *engine's* pending queue.
struct AsyncMailbox<'a, M> {
    st: &'a mut EngineState<M>,
    timers: &'a mut WorkerTimers,
    shared: &'a Shared<M>,
}

impl<M> Mailbox<M> for AsyncMailbox<'_, M> {
    #[inline]
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }

    #[inline]
    fn node(&self) -> NodeId {
        self.st.node
    }

    fn send(&mut self, dst: NodeId, verb: Verb, msg: M) {
        let src = self.st.node;
        self.st.outstanding_delta += 1;
        if src == dst {
            self.st.stats.local_msgs += 1;
            self.st.local.push_back(Envelope { src, verb, msg });
        } else {
            match verb {
                Verb::OneSided => self.st.stats.one_sided_msgs += 1,
                Verb::Rpc => self.st.stats.rpc_msgs += 1,
            }
            self.st
                .pending
                .push_back((dst, Envelope { src, verb, msg }));
        }
    }

    fn set_timer(&mut self, d: Duration, token: u64) {
        self.st.outstanding_delta += 1;
        let due = self.shared.now_ns().saturating_add(d.as_nanos());
        self.timers.arm(due, self.st.node.idx(), token);
    }

    fn set_timer_when_free(&mut self, d: Duration, token: u64) {
        // No modelled busy horizon on real threads (same as threaded).
        self.set_timer(d, token);
    }

    fn use_cpu(&mut self, _d: Duration) {
        // Real CPU is consumed by actually executing the handler.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirrors the threaded backend's test roles so the two executors
    /// face the same conformance suite.
    enum TestActor {
        Pinger {
            count: u64,
            replies: u64,
        },
        Echo {
            received: Vec<(NodeId, u64)>,
        },
        Recorder {
            received: Vec<u64>,
        },
        Ticker {
            fired: u64,
            limit: u64,
            delay_ns: u64,
        },
        Relay {
            next: NodeId,
            received: u64,
        },
    }

    impl Actor<u64> for TestActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            match self {
                TestActor::Pinger { count, .. } => {
                    for i in 0..*count {
                        ctx.send(NodeId(1), Verb::OneSided, i);
                    }
                }
                TestActor::Ticker { delay_ns, .. } => {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), 1)
                }
                _ => {}
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, verb: Verb, msg: u64) {
            match self {
                TestActor::Pinger { replies, .. } => *replies += 1,
                TestActor::Echo { received } => {
                    received.push((src, msg));
                    if msg < 1000 {
                        ctx.send(src, verb, msg + 1000);
                    }
                }
                TestActor::Recorder { received } => received.push(msg),
                TestActor::Ticker { .. } => {}
                TestActor::Relay { next, received } => {
                    *received += 1;
                    if msg > 0 {
                        ctx.send(*next, verb, msg - 1);
                    }
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            if let TestActor::Ticker {
                fired,
                limit,
                delay_ns,
            } = self
            {
                *fired += 1;
                if fired < limit {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), token);
                }
            }
        }
    }

    fn replies(a: &TestActor) -> u64 {
        match a {
            TestActor::Pinger { replies, .. } => *replies,
            _ => 0,
        }
    }

    fn config(mailbox: MailboxKind, capacity: usize, workers: usize) -> AsyncConfig {
        AsyncConfig {
            capacity,
            mailbox,
            workers: Some(workers),
            pin: PinPolicy::Off,
        }
    }

    #[test]
    fn ping_pong_reaches_quiescence() {
        let mut rt = AsyncRuntime::with_config(
            vec![
                TestActor::Pinger {
                    count: 500,
                    replies: 0,
                },
                TestActor::Echo {
                    received: Vec::new(),
                },
            ],
            config(MailboxKind::Ring, 64, 2),
        );
        rt.run_to_quiescence(u64::MAX);
        assert_eq!(replies(&rt.actors()[0]), 500);
        let stats = rt.stats();
        assert_eq!(stats.one_sided_msgs, 1000);
        assert_eq!(stats.events_processed, 1000);
    }

    #[test]
    fn ping_pong_on_both_mailbox_kinds_and_any_pool_size() {
        for kind in [MailboxKind::Ring, MailboxKind::Channel] {
            for workers in [1usize, 2, 4] {
                let mut actors = vec![
                    TestActor::Pinger {
                        count: 300,
                        replies: 0,
                    },
                    TestActor::Echo {
                        received: Vec::new(),
                    },
                ];
                for _ in 0..3 {
                    actors.push(TestActor::Recorder {
                        received: Vec::new(),
                    });
                }
                let mut rt = AsyncRuntime::with_config(actors, config(kind, 64, workers));
                rt.run_to_quiescence(u64::MAX);
                assert_eq!(
                    replies(&rt.actors()[0]),
                    300,
                    "{kind} mailbox with {workers} workers lost replies"
                );
                assert_eq!(rt.mailbox_kind(), kind);
                assert_eq!(rt.worker_count(), workers);
            }
        }
    }

    /// Per-link FIFO through the shared-producer mailboxes, with a tiny
    /// capacity so most sends overflow into the parked-flush path and
    /// the stall-and-requeue logic runs constantly.
    #[test]
    fn per_link_fifo_survives_mailbox_overflow() {
        let n = 500u64;
        for kind in [MailboxKind::Ring, MailboxKind::Channel] {
            let mut rt = AsyncRuntime::with_config(
                vec![
                    TestActor::Pinger {
                        count: n,
                        replies: 0,
                    },
                    TestActor::Recorder {
                        received: Vec::new(),
                    },
                ],
                config(kind, 4, 2),
            );
            rt.run_to_quiescence(u64::MAX);
            let TestActor::Recorder { received } = &rt.actors()[1] else {
                panic!("node 1 is the recorder");
            };
            assert_eq!(received, &(0..n).collect::<Vec<_>>(), "{kind} reordered");
        }
    }

    /// 1000 engines on a 4-worker pool: the multiplexing headline in
    /// miniature. A relay ring where every engine forwards to the next —
    /// every hop crosses engines, so the ready queue, stealing and the
    /// notify protocol all churn.
    #[test]
    fn thousand_engines_on_four_workers() {
        let n = 1000usize;
        let hops = 10_000u64;
        let actors: Vec<TestActor> = (0..n)
            .map(|i| TestActor::Relay {
                next: NodeId(((i + 1) % n) as u32),
                received: 0,
            })
            .collect();
        let mut rt = AsyncRuntime::with_config(actors, config(MailboxKind::Ring, 64, 4));
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            ctx.send(NodeId(1), Verb::OneSided, hops - 1);
        });
        rt.run_to_quiescence(u64::MAX);
        let total: u64 = rt
            .actors()
            .iter()
            .map(|a| match a {
                TestActor::Relay { received, .. } => *received,
                _ => 0,
            })
            .sum();
        assert_eq!(total, hops, "relay ring lost hops");
    }

    #[test]
    fn quiescence_waits_for_chained_cascades() {
        let hops = 10_000u64;
        let mut rt = AsyncRuntime::with_config(
            vec![
                TestActor::Relay {
                    next: NodeId(1),
                    received: 0,
                },
                TestActor::Relay {
                    next: NodeId(0),
                    received: 0,
                },
            ],
            config(MailboxKind::Ring, 64, 2),
        );
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            ctx.send(NodeId(1), Verb::OneSided, hops - 1);
        });
        rt.run_to_quiescence(u64::MAX);
        let total: u64 = rt
            .actors()
            .iter()
            .map(|a| match a {
                TestActor::Relay { received, .. } => *received,
                _ => 0,
            })
            .sum();
        assert_eq!(total, hops, "cascade cut short by premature quiescence");
    }

    #[test]
    fn timers_fire_and_pause_resumes() {
        let mut rt = AsyncRuntime::with_config(
            vec![TestActor::Ticker {
                fired: 0,
                limit: 20,
                delay_ns: 50_000,
            }],
            config(MailboxKind::Ring, 64, 1),
        );
        let start = rt.now();
        rt.run_until(start + Duration::from_micros(300));
        let TestActor::Ticker { fired: mid, .. } = rt.actors()[0] else {
            panic!()
        };
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= mid);
        assert_eq!(fired, 20);
        assert_eq!(rt.stats().timer_fires, 20);
    }

    #[test]
    fn control_plane_injection_between_phases() {
        let mut rt = AsyncRuntime::with_config(
            vec![
                TestActor::Pinger {
                    count: 0,
                    replies: 0,
                },
                TestActor::Echo {
                    received: Vec::new(),
                },
            ],
            config(MailboxKind::Ring, 64, 2),
        );
        rt.run_to_quiescence(u64::MAX);
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            assert_eq!(ctx.node(), NodeId(0));
            ctx.send(NodeId(1), Verb::Rpc, 7);
        });
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Echo { received } = &rt.actors()[1] else {
            panic!()
        };
        assert_eq!(received.len(), 1);
        assert_eq!(replies(&rt.actors()[0]), 1);
    }

    #[test]
    fn event_limit_bounds_runaway_loops() {
        let mut rt = AsyncRuntime::with_config(
            vec![TestActor::Ticker {
                fired: 0,
                limit: u64::MAX,
                delay_ns: 50_000,
            }],
            config(MailboxKind::Ring, 64, 1),
        );
        rt.run_to_quiescence(10);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 10, "guard must not fire before the limit");
        assert!(fired < 1000, "guard must stop the runaway ticker");
    }

    #[test]
    fn zero_delay_timer_rearm_cannot_hang_a_phase() {
        let mut rt = AsyncRuntime::with_config(
            vec![TestActor::Ticker {
                fired: 0,
                limit: u64::MAX,
                delay_ns: 0,
            }],
            config(MailboxKind::Ring, 64, 1),
        );
        rt.run_to_quiescence(1_000);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 1_000, "guard must not fire before the limit");
        assert!(fired < 100_000, "guard must stop the zero-delay ticker");
    }

    /// The pool-wide telemetry reflects an actual run: a relay ring with
    /// a tiny mailbox forces flush stalls, batching, queue traffic and
    /// timers, and each counter family must show it.
    #[test]
    fn telemetry_counters_reflect_the_run() {
        let mut rt = AsyncRuntime::with_config(
            vec![
                TestActor::Pinger {
                    count: 400,
                    replies: 0,
                },
                TestActor::Echo {
                    received: Vec::new(),
                },
            ],
            config(MailboxKind::Ring, 2, 2),
        );
        rt.run_to_quiescence(u64::MAX);
        let tel = Runtime::telemetry(&rt);
        assert!(tel.batches_drained > 0, "batches: {tel:?}");
        assert!(tel.flush_stalls > 0, "capacity-2 ring must stall flushes");
        assert!(tel.parked_depth_hwm > 0, "sends must have parked");
        assert!(
            tel.tasks_popped >= tel.batches_drained,
            "every drained batch rode a popped task"
        );
        assert!(tel.notifies > 0, "deliveries must have enqueued engines");
        assert_eq!(
            Runtime::mailbox_kind(&rt),
            Some(MailboxKind::Ring),
            "trait reports the mailbox it was built with"
        );

        let mut ticker = AsyncRuntime::with_config(
            vec![TestActor::Ticker {
                fired: 0,
                limit: 10,
                delay_ns: 30_000,
            }],
            config(MailboxKind::Ring, 64, 1),
        );
        ticker.run_to_quiescence(u64::MAX);
        let tel = Runtime::telemetry(&ticker);
        assert_eq!(tel.timer_slop.count(), 10, "one slop sample per fire");
    }

    #[test]
    fn clock_is_monotonic_and_workers_reported() {
        let rt = AsyncRuntime::<u64, TestActor>::with_config(
            vec![TestActor::Recorder {
                received: Vec::new(),
            }],
            config(MailboxKind::Ring, 64, 1),
        );
        let a = rt.now();
        let b = rt.now();
        assert!(b >= a);
        assert_eq!(rt.workers(), 1);
        assert_eq!(rt.backend(), Backend::Async);
    }
}
