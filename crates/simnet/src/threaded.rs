//! The real multi-threaded backend: one OS thread per node, lock-free
//! ring (or bounded mpsc channel) mailboxes, a monotonic wall clock,
//! optional core pinning.
//!
//! Where the simulator *models* a cluster (virtual latencies, CPU
//! charges), this backend *is* one — each [`Actor`] runs on its own
//! thread and the reported throughput is what the host machine actually
//! sustains. The same engines, messages and workloads run unmodified;
//! only the [`Mailbox`] behind [`Ctx`] differs:
//!
//! * **Clock** — monotonic wall-clock nanoseconds since runtime creation
//!   (the `SimTime` values actors see are real elapsed time).
//! * **Send** — one bounded mailbox per node, selected by
//!   [`MailboxKind`]: a lock-free sequence-slot ring (`ringq::mpsc`,
//!   default — no mutex anywhere on the message path, with an SPSC
//!   fast-path ring for topologies whose mailboxes have a single
//!   producer) or the `std::sync::mpsc::sync_channel` fallback. Sends
//!   never block and never touch the mailbox mid-handler: remote sends
//!   park in a local queue flushed once per worker-loop batch, and
//!   self-sends go to a zero-synchronization local queue that never
//!   touches a mailbox at all. Cyclic protocols (engine A mid-handler
//!   sending to B while B sends to A) cannot deadlock. The flush
//!   preserves not just per-link FIFO but each sender's *global* send
//!   order across destinations (stalling at a full mailbox instead of
//!   skipping it) — protocols build happens-before chains through third
//!   nodes that a weaker ordering would break. Both mailbox kinds also
//!   preserve *cross-sender arrival order* at each destination (the ring
//!   by consuming tickets in claim order), which the replication path
//!   additionally relies on — see DESIGN.md §11 for why per-link rings
//!   without that merge order would diverge replicas.
//! * **Wakeup** — rings have no blocking receive, so idle workers use a
//!   park/unpark protocol: a worker publishes "sleeping", re-checks its
//!   mailbox, then parks with a bounded timeout; a producer that fills a
//!   sleeping destination's mailbox unparks it. A missed wakeup is
//!   impossible to *lose* (the flag handshake) and at worst costs one
//!   park timeout (`MAX_PARK_NS`, 200µs). The channel fallback keeps using
//!   `recv_timeout`, whose condvar provides the same wakeup.
//! * **Timers** — a per-thread hashed [`TimerWheel`]; the worker sleeps
//!   until *short of* the next due time and spins the final approach,
//!   keeping timer slop well below the OS sleep granularity.
//! * **Pinning** — with [`PinPolicy::Cores`], every engine thread pins
//!   itself to one allowed CPU (`sched_setaffinity` via
//!   [`crate::affinity`], Linux only, off by default) before running
//!   `on_start`, so engine-thread cache/NUMA locality is stable and
//!   first-touch allocations made during `on_start` land on the pinned
//!   core's NUMA node. On non-Linux hosts the policy degrades to "not
//!   pinned" without error.
//! * **`use_cpu`** — a no-op: real CPU is consumed by actually executing
//!   the handler.
//!
//! ## The batched hot path
//!
//! Each worker-loop iteration (1) flushes parked sends, (2) fires due
//! timers, (3) drains up to `MESSAGE_BATCH` envelopes from its mailbox,
//! handling each in place. Bookkeeping that used to cost one atomic RMW
//! per event — the cluster-wide outstanding-work counter, the global
//! event counter — is accumulated in thread-local deltas and published
//! once per batch. On a contended host this turns the per-message cost
//! from several cross-core atomics plus a possible futex wake into plain
//! local arithmetic for all but the last message of each batch. With ring
//! mailboxes the remaining per-message cost is one claim-CAS at the
//! sender and two slot-sequence accesses — no mutex, no syscall unless
//! the destination is actually asleep.
//!
//! ## Run phases and quiescence
//!
//! Worker threads only exist inside [`Runtime::run_until`] /
//! [`Runtime::run_to_quiescence`] (scoped threads). Between phases the
//! main thread has exclusive access to the actors —
//! [`Runtime::actors_mut`] and [`Runtime::with_actor_ctx`] work exactly
//! as on the simulator, which is what lets the cluster layer reset
//! metrics at the warm-up boundary, drive the adaptive epoch scheduler,
//! and check invariants after a drain. In-flight messages, parked sends
//! and armed timers survive a pause and resume with the next phase.
//!
//! Quiescence is detected with a global outstanding-work counter:
//! incremented for every queued message and armed timer, decremented
//! only *after* the receiving handler returns (so work spawned by a
//! handler keeps the count positive). Zero therefore means no queued
//! message, no armed timer, and no handler mid-flight anywhere — workers
//! observe it and exit. Batching keeps this sound by construction: a
//! worker publishes its accumulated delta (spawns minus retirements)
//! in a *single* atomic add before it flushes the spawned messages to
//! their destination mailboxes, so no other thread can consume a message
//! whose registration is still pending, and un-retired batch messages
//! hold the count positive throughout.

use crate::affinity;
use crate::runtime::{Actor, Backend, Clock, Ctx, Mailbox, NetStats, Runtime, Verb};
use crate::timer_wheel::TimerWheel;
use chiller_common::ids::NodeId;
use chiller_common::time::{Duration, SimTime};
use chiller_obs::RuntimeTelemetry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::Instant;

/// Default bound of each node's mailbox (messages, not bytes).
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

/// Longest a worker sleeps before re-checking the deadline and the
/// quiescence counter (pause responsiveness, not correctness).
const MAX_PARK_NS: u64 = 200_000;

/// Most messages a worker handles per loop iteration before it re-flushes
/// parked sends and re-checks timers, the deadline and the event limit.
/// Bounds both control-latency (pause responsiveness) and the burst a
/// destination can lag behind its own timers.
const MESSAGE_BATCH: usize = 64;

/// When the next armed timer is within this horizon the worker spins
/// (polling its mailbox) instead of sleeping; when it is further out the
/// worker sleeps until `due - SPIN_BEFORE_SLEEP_NS` and spins the final
/// approach. 50µs ≈ the OS sleep slop being compensated for.
///
/// Spinning only happens when the host has a core per worker (see
/// [`Shared::spin_allowed`]): on an oversubscribed host a spinning
/// worker holds the core hostage from workers with real work, and
/// blocking with a timeout is better for aggregate throughput than
/// timer fidelity is worth.
const SPIN_BEFORE_SLEEP_NS: u64 = 50_000;

/// During a spin phase, yield to the OS scheduler every this many
/// iterations as a safety valve (e.g. when other processes share the
/// worker's core even though the cluster itself is not oversubscribed).
const SPIN_YIELD_EVERY: u32 = 64;

/// Which mailbox implementation the threaded backend's nodes use.
///
/// Both kinds deliver identical ordering guarantees (per-link FIFO *and*
/// cross-sender arrival order per destination); they differ only in cost.
/// The kind is normally taken from the `CHILLER_MAILBOX` environment
/// variable (see [`MailboxKind::from_env`]) so stress suites and benches
/// can A/B them without code changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MailboxKind {
    /// Lock-free bounded rings (`ringq`): a sequence-slot MPSC ring per
    /// node, or an SPSC ring when the topology gives the mailbox a single
    /// producer (≤ 2 nodes). The default.
    #[default]
    Ring,
    /// `std::sync::mpsc::sync_channel` per node — the PR-3/4 mailbox,
    /// kept as a live fallback and differential-testing oracle. Takes a
    /// mutex per send/recv.
    Channel,
}

impl MailboxKind {
    /// Read `CHILLER_MAILBOX` (`ring` | `channel`); unset means
    /// [`MailboxKind::Ring`]. Panics on an unrecognized value — silently
    /// measuring the wrong mailbox would poison every A/B number.
    pub fn from_env() -> Self {
        match std::env::var("CHILLER_MAILBOX") {
            Ok(v) if v == "ring" => MailboxKind::Ring,
            Ok(v) if v == "channel" => MailboxKind::Channel,
            Ok(other) => panic!("CHILLER_MAILBOX must be `ring` or `channel`, got `{other}`"),
            Err(_) => MailboxKind::Ring,
        }
    }

    /// Stable label used in reports and BENCH_*.json rows.
    pub fn label(self) -> &'static str {
        match self {
            MailboxKind::Ring => "ring",
            MailboxKind::Channel => "channel",
        }
    }
}

impl std::fmt::Display for MailboxKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether engine threads pin themselves to CPUs.
///
/// Off by default: pinning helps when the cluster has the machine to
/// itself and hurts when it shares cores. Normally taken from the
/// `CHILLER_PIN` environment variable (see [`PinPolicy::from_env`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PinPolicy {
    /// Leave thread placement to the OS scheduler. The default.
    #[default]
    Off,
    /// Pin worker `i` to the `i`-th CPU of the process's allowed set
    /// (round-robin when there are more workers than CPUs), each phase,
    /// before `on_start` runs — so first-touch allocations made by
    /// `on_start` land on the pinned core's NUMA node. Linux only; on
    /// other platforms (or when `sched_setaffinity` fails) the run
    /// proceeds unpinned and reports `pinned = false`.
    Cores,
}

impl PinPolicy {
    /// Read `CHILLER_PIN` (`1`/`true`/`cores` → [`PinPolicy::Cores`];
    /// `0`/`false` or unset → [`PinPolicy::Off`]). Panics on an
    /// unrecognized value.
    pub fn from_env() -> Self {
        match std::env::var("CHILLER_PIN") {
            Ok(v) if v == "1" || v == "true" || v == "cores" => PinPolicy::Cores,
            Ok(v) if v == "0" || v == "false" => PinPolicy::Off,
            Ok(other) => panic!("CHILLER_PIN must be 0/1/true/false/cores, got `{other}`"),
            Err(_) => PinPolicy::Off,
        }
    }
}

/// Construction options for a [`ThreadedRuntime`].
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Per-node mailbox bound (messages). Rounded up to a power of two by
    /// the ring mailboxes.
    pub capacity: usize,
    /// Mailbox implementation.
    pub mailbox: MailboxKind,
    /// Core-pinning policy.
    pub pin: PinPolicy,
}

impl Default for ThreadedConfig {
    /// Defaults resolve the environment knobs: capacity
    /// [`DEFAULT_MAILBOX_CAPACITY`], mailbox from `CHILLER_MAILBOX`
    /// (default ring), pinning from `CHILLER_PIN` (default off).
    fn default() -> Self {
        ThreadedConfig {
            capacity: DEFAULT_MAILBOX_CAPACITY,
            mailbox: MailboxKind::from_env(),
            pin: PinPolicy::from_env(),
        }
    }
}

/// A message in flight between two nodes.
struct Envelope<M> {
    src: NodeId,
    verb: Verb,
    msg: M,
}

/// Per-node wakeup slot for the ring mailboxes (rings have no blocking
/// receive). The worker registers its thread handle each phase; the
/// `sleeping` flag makes the park/unpark handshake race-free in the
/// direction that matters: a producer that pushes *after* the consumer
/// published `sleeping = true` observes the flag and unparks; a producer
/// that pushed *before* is observed by the consumer's mailbox re-check
/// between publishing the flag and parking. Any residual interleaving is
/// bounded by the park timeout, never lost.
#[derive(Default)]
struct Parker {
    /// True from just before the worker's pre-park mailbox re-check until
    /// it wakes.
    sleeping: AtomicBool,
    /// The worker thread currently servicing this node, while a phase runs.
    thread: Mutex<Option<std::thread::Thread>>,
}

impl Parker {
    /// Producer side: wake the worker if (and only if) it is parked or
    /// about to park. The fast path — destination awake — is one relaxed
    /// load. Returns whether a wake was actually delivered (feeds the
    /// `unparks` telemetry counter).
    #[inline]
    fn wake(&self) -> bool {
        if self.sleeping.load(Ordering::Relaxed) && self.sleeping.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("parker lock").as_ref() {
                t.unpark();
                return true;
            }
        }
        false
    }
}

/// Coordination state shared by all worker threads during a phase.
struct Shared {
    /// Origin of the monotonic wall clock.
    start: Instant,
    /// Queued messages + armed timers + handlers mid-flight, cluster-wide.
    outstanding: AtomicI64,
    /// Wall-clock deadline (ns since `start`) of the current phase.
    deadline_ns: AtomicU64,
    /// Runaway guard for `run_to_quiescence`: stop once
    /// `events_processed` passes this.
    event_limit: AtomicU64,
    /// Total events processed across all threads (guard bookkeeping;
    /// published per batch, so approximate while a batch is mid-flight).
    events: AtomicU64,
    /// Whether workers may spin-wait for near timers: true only when the
    /// host has at least one core per worker, i.e. spinning cannot starve
    /// another worker that has real work.
    spin_allowed: bool,
    /// One wakeup slot per node (used by the ring mailboxes).
    parkers: Vec<Parker>,
    /// Set when any worker's `sched_setaffinity` call fails; a run
    /// reports `pinned` only if pinning was requested and never failed.
    pin_failed: AtomicBool,
}

impl Shared {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    #[inline]
    fn limit_hit(&self) -> bool {
        self.events.load(Ordering::Relaxed) >= self.event_limit.load(Ordering::Relaxed)
    }
}

/// Receiving end of a node's mailbox.
enum Inbox<M> {
    /// `sync_channel` fallback.
    Channel(Receiver<Envelope<M>>),
    /// Lock-free MPSC ring (many senders).
    RingMpsc(ringq::mpsc::Consumer<Envelope<M>>),
    /// Lock-free SPSC ring (topology guarantees a single sender).
    RingSpsc(ringq::spsc::Consumer<Envelope<M>>),
}

/// Outcome of a non-blocking receive.
enum Recv<M> {
    Msg(Envelope<M>),
    Empty,
    /// Channel teardown (rings never disconnect).
    Disconnected,
}

impl<M> Inbox<M> {
    #[inline]
    fn try_recv(&mut self) -> Recv<M> {
        match self {
            Inbox::Channel(rx) => match rx.try_recv() {
                Ok(env) => Recv::Msg(env),
                Err(std::sync::mpsc::TryRecvError::Empty) => Recv::Empty,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => Recv::Disconnected,
            },
            Inbox::RingMpsc(rx) => match rx.pop() {
                Some(env) => Recv::Msg(env),
                None => Recv::Empty,
            },
            Inbox::RingSpsc(rx) => match rx.pop() {
                Some(env) => Recv::Msg(env),
                None => Recv::Empty,
            },
        }
    }

    /// Whether a message is poppable right now (rings only; the channel
    /// fallback never parks, so it never asks).
    #[inline]
    fn has_ready(&self) -> bool {
        match self {
            Inbox::Channel(_) => false,
            Inbox::RingMpsc(rx) => rx.has_ready(),
            Inbox::RingSpsc(rx) => rx.has_ready(),
        }
    }

    /// Approximate occupancy (rings only — the channel exposes no length).
    /// Feeds the `ring_occupancy_hwm` telemetry gauge.
    #[inline]
    fn len(&self) -> usize {
        match self {
            Inbox::Channel(_) => 0,
            Inbox::RingMpsc(rx) => rx.len(),
            Inbox::RingSpsc(rx) => rx.len(),
        }
    }
}

/// Sending end of one destination's mailbox, held by every other node.
enum Outbox<M> {
    Channel(SyncSender<Envelope<M>>),
    RingMpsc(ringq::mpsc::Producer<Envelope<M>>),
    RingSpsc(ringq::spsc::Producer<Envelope<M>>),
}

/// Outcome of a non-blocking send.
enum SendOutcome<M> {
    Ok,
    Full(Envelope<M>),
    /// Channel teardown (rings never disconnect).
    Disconnected,
}

impl<M> Outbox<M> {
    #[inline]
    fn try_send(&mut self, env: Envelope<M>) -> SendOutcome<M> {
        match self {
            Outbox::Channel(tx) => match tx.try_send(env) {
                Ok(()) => SendOutcome::Ok,
                Err(TrySendError::Full(env)) => SendOutcome::Full(env),
                Err(TrySendError::Disconnected(_)) => SendOutcome::Disconnected,
            },
            Outbox::RingMpsc(tx) => match tx.push(env) {
                Ok(()) => SendOutcome::Ok,
                Err(env) => SendOutcome::Full(env),
            },
            Outbox::RingSpsc(tx) => match tx.push(env) {
                Ok(()) => SendOutcome::Ok,
                Err(env) => SendOutcome::Full(env),
            },
        }
    }
}

/// Per-node state that persists across run phases; mutably borrowed by
/// that node's worker thread while a phase runs.
struct NodeState<M> {
    node: NodeId,
    inbox: Inbox<M>,
    /// Senders to every node's mailbox (index = destination node). The
    /// entry at this node's own index is never used to send — self-sends
    /// bypass mailboxes — and is `None` for the ring kinds; the channel
    /// kind keeps a (unused) self-sender there so a single-node cluster's
    /// receiver does not observe a spurious disconnect.
    txs: Vec<Option<Outbox<M>>>,
    /// Armed timers, hashed by due tick (see [`TimerWheel`]).
    timers: TimerWheel,
    /// Scratch buffer for expired-timer batches (reused across fires).
    fired: Vec<(u64, u64)>,
    /// Remote sends parked locally until the per-batch flush, in send
    /// order across *all* destinations. Global (not per-destination)
    /// FIFO is load-bearing: protocols build happens-before chains that
    /// route through third nodes (e.g. a commit's `Replicate` to a
    /// replica holder must be enqueued before its unlock reaches the
    /// primary, or a later transaction's `Replicate` can overtake it),
    /// so the flush must never let a later send to one destination pass
    /// an earlier send to another.
    pending: VecDeque<(NodeId, Envelope<M>)>,
    /// Self-sends, delivered without touching the mailbox: the self link
    /// has exactly one sender and one receiver (this thread), so a plain
    /// FIFO queue preserves its order at zero synchronization cost.
    local: VecDeque<Envelope<M>>,
    /// Spawns (sends + armed timers) minus retirements (handled events)
    /// not yet published to `Shared::outstanding`.
    outstanding_delta: i64,
    stats: NetStats,
    /// Scheduler counters (plain fields, merged on read — one increment
    /// per batch, not per message).
    tel: RuntimeTelemetry,
}

impl<M> NodeState<M> {
    /// Publish the accumulated outstanding-work delta. Must run before
    /// this thread flushes pending sends, sleeps, or checks quiescence —
    /// see the module docs for why this ordering keeps quiescence sound.
    #[inline]
    fn publish_outstanding(&mut self, shared: &Shared) {
        if self.outstanding_delta != 0 {
            shared
                .outstanding
                .fetch_add(self.outstanding_delta, Ordering::SeqCst);
            self.outstanding_delta = 0;
        }
    }

    /// Push parked sends into their destination mailboxes in send order.
    /// Stops entirely at the first full mailbox: letting later sends
    /// overtake the blocked one would break the cross-destination
    /// ordering documented on [`NodeState::pending`]. The stall blocks
    /// only the flush, never this worker (it keeps draining its own
    /// mailbox, which is what frees the peer's capacity), so cyclic
    /// full-mailbox configurations still make progress.
    fn flush_pending(&mut self, shared: &Shared) {
        self.tel.parked_depth_hwm = self.tel.parked_depth_hwm.max(self.pending.len() as u64);
        while let Some((dst, env)) = self.pending.pop_front() {
            let tx = self.txs[dst.idx()]
                .as_mut()
                .expect("remote send routed to the sender's own mailbox");
            match tx.try_send(env) {
                SendOutcome::Ok => {
                    if shared.parkers[dst.idx()].wake() {
                        self.tel.unparks += 1;
                    }
                }
                SendOutcome::Full(env) => {
                    self.pending.push_front((dst, env));
                    self.tel.flush_stalls += 1;
                    break;
                }
                // Receivers live as long as the runtime; a disconnect can
                // only mean teardown, where dropping is harmless.
                SendOutcome::Disconnected => {}
            }
        }
    }

    /// Block until a message arrives, `sleep_ns` passes, or (channel
    /// only) the mailbox disconnects. The mailbox kinds wait differently:
    /// the channel blocks in `recv_timeout` (its condvar is the wakeup),
    /// the rings use the [`Parker`] handshake. Either way the wait is
    /// bounded, so deadline/quiescence re-checks at the loop top are
    /// never starved.
    fn await_message(&mut self, shared: &Shared, sleep_ns: u64) -> Recv<M> {
        match &mut self.inbox {
            Inbox::Channel(rx) => {
                self.tel.parks += 1;
                match rx.recv_timeout(std::time::Duration::from_nanos(sleep_ns)) {
                    Ok(env) => Recv::Msg(env),
                    Err(RecvTimeoutError::Timeout) => Recv::Empty,
                    Err(RecvTimeoutError::Disconnected) => Recv::Disconnected,
                }
            }
            Inbox::RingMpsc(_) | Inbox::RingSpsc(_) => {
                let parker = &shared.parkers[self.node.idx()];
                parker.sleeping.store(true, Ordering::SeqCst);
                // Re-check after publishing the flag: a producer that
                // pushed before the store cannot have seen it, so it falls
                // to us to notice the message; one that pushes after will
                // see the flag and unpark us.
                if self.inbox.has_ready() {
                    parker.sleeping.store(false, Ordering::Relaxed);
                    // A producer pushed in the publish-recheck window: the
                    // handshake just prevented a lost wakeup.
                    self.tel.lost_wakeups_avoided += 1;
                    return Recv::Empty;
                }
                if shared.outstanding.load(Ordering::SeqCst) == 0 {
                    parker.sleeping.store(false, Ordering::Relaxed);
                    return Recv::Empty;
                }
                self.tel.parks += 1;
                std::thread::park_timeout(std::time::Duration::from_nanos(sleep_ns));
                parker.sleeping.store(false, Ordering::Relaxed);
                // Let the worker loop re-drain; an extra iteration is
                // cheaper than duplicating the batch path here.
                Recv::Empty
            }
        }
    }
}

/// One OS thread per actor, scoped to each run phase. See the module docs
/// for the execution model and the batched hot path.
pub struct ThreadedRuntime<M, A> {
    actors: Vec<A>,
    states: Vec<NodeState<M>>,
    shared: Shared,
    started: bool,
    mailbox: MailboxKind,
    pin: PinPolicy,
    /// CPUs the process may use (resolved once; empty when unknown or
    /// pinning is off). Worker `i` pins to `pin_cpus[i % len]`.
    pin_cpus: Vec<usize>,
}

impl<M: Send, A: Actor<M> + Send> ThreadedRuntime<M, A> {
    /// Build a threaded runtime over the given actors; actor `i` runs on
    /// `NodeId(i)`. Mailbox kind and pin policy resolve from the
    /// environment (see [`ThreadedConfig::default`]).
    pub fn new(actors: Vec<A>) -> Self {
        Self::with_config(actors, ThreadedConfig::default())
    }

    /// Build with an explicit per-node mailbox bound (environment
    /// defaults for everything else).
    pub fn with_mailbox_capacity(actors: Vec<A>, capacity: usize) -> Self {
        Self::with_config(
            actors,
            ThreadedConfig {
                capacity,
                ..ThreadedConfig::default()
            },
        )
    }

    /// Build with explicit options.
    pub fn with_config(actors: Vec<A>, cfg: ThreadedConfig) -> Self {
        assert!(
            cfg.capacity >= 1,
            "mailboxes must hold at least one message"
        );
        let n = actors.len();
        let mut inboxes: Vec<Inbox<M>> = Vec::with_capacity(n);
        let mut txs_per_node: Vec<Vec<Option<Outbox<M>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        match cfg.mailbox {
            MailboxKind::Channel => {
                for dst in 0..n {
                    let (tx, rx) = sync_channel(cfg.capacity);
                    inboxes.push(Inbox::Channel(rx));
                    // Every slot gets a sender — including dst's own,
                    // which is never used to send (self-sends bypass
                    // mailboxes) but keeps the channel connected: a
                    // single-node cluster would otherwise drop the only
                    // sender and its worker would read Disconnected
                    // before ever firing its timers.
                    for txs in txs_per_node.iter_mut() {
                        txs[dst] = Some(Outbox::Channel(tx.clone()));
                    }
                }
            }
            // ≤ 2 nodes: each mailbox has exactly one possible producer
            // (the single other node — self-sends bypass mailboxes, and
            // the control plane only injects between phases), so the
            // cheaper SPSC ring is sound. See DESIGN.md §11 for why this
            // is the *only* topology where per-mailbox SPSC is sound.
            MailboxKind::Ring if n <= 2 => {
                for dst in 0..n {
                    let (tx, rx) = ringq::spsc::bounded(cfg.capacity);
                    inboxes.push(Inbox::RingSpsc(rx));
                    if n == 2 {
                        txs_per_node[1 - dst][dst] = Some(Outbox::RingSpsc(tx));
                    }
                    // n == 1: no remote link exists; the producer drops.
                }
            }
            MailboxKind::Ring => {
                for dst in 0..n {
                    let (tx, rx) = ringq::mpsc::bounded(cfg.capacity);
                    inboxes.push(Inbox::RingMpsc(rx));
                    for (src, txs) in txs_per_node.iter_mut().enumerate() {
                        if src != dst {
                            txs[dst] = Some(Outbox::RingMpsc(tx.clone()));
                        }
                    }
                }
            }
        }
        let states = inboxes
            .into_iter()
            .zip(txs_per_node)
            .enumerate()
            .map(|(i, (inbox, txs))| NodeState {
                node: NodeId(i as u32),
                inbox,
                txs,
                timers: TimerWheel::default(),
                fired: Vec::new(),
                pending: VecDeque::new(),
                local: VecDeque::new(),
                outstanding_delta: 0,
                stats: NetStats::default(),
                tel: RuntimeTelemetry::default(),
            })
            .collect();
        let pin_cpus = match cfg.pin {
            PinPolicy::Off => Vec::new(),
            PinPolicy::Cores => affinity::allowed_cpus(),
        };
        ThreadedRuntime {
            actors,
            states,
            shared: Shared {
                start: Instant::now(),
                outstanding: AtomicI64::new(0),
                deadline_ns: AtomicU64::new(0),
                event_limit: AtomicU64::new(u64::MAX),
                events: AtomicU64::new(0),
                spin_allowed: crate::sizing::spin_allowed(crate::sizing::threaded_workers(n)),
                parkers: (0..n).map(|_| Parker::default()).collect(),
                pin_failed: AtomicBool::new(false),
            },
            started: false,
            mailbox: cfg.mailbox,
            pin: cfg.pin,
            pin_cpus,
        }
    }

    /// The mailbox implementation this runtime was built with.
    pub fn mailbox_kind(&self) -> MailboxKind {
        self.mailbox
    }

    /// Run one phase: spawn a scoped worker per node, join when every
    /// worker has hit the deadline, observed quiescence, or tripped the
    /// event limit. Returns events processed during the phase.
    fn run_phase(&mut self, deadline_ns: u64, max_events: u64) -> u64 {
        let first = !self.started;
        if first {
            self.started = true;
            // Startup hold: no worker may observe "quiescent" before every
            // actor's on_start has armed its initial work.
            self.shared
                .outstanding
                .fetch_add(self.actors.len() as i64, Ordering::SeqCst);
        }
        self.shared.deadline_ns.store(deadline_ns, Ordering::SeqCst);
        let before = self.shared.events.load(Ordering::SeqCst);
        self.shared
            .event_limit
            .store(before.saturating_add(max_events), Ordering::SeqCst);
        let shared = &self.shared;
        let pin_cpus = &self.pin_cpus;
        std::thread::scope(|scope| {
            for (i, (actor, st)) in self
                .actors
                .iter_mut()
                .zip(self.states.iter_mut())
                .enumerate()
            {
                let pin = (!pin_cpus.is_empty()).then(|| pin_cpus[i % pin_cpus.len()]);
                scope.spawn(move || worker(actor, st, shared, first, pin));
            }
        });
        self.shared.events.load(Ordering::SeqCst) - before
    }

    /// Whether this runtime's workers are pinned: pinning was requested,
    /// the allowed-CPU set was readable, at least one phase ran, and no
    /// `sched_setaffinity` call failed.
    fn pinned_now(&self) -> bool {
        self.pin == PinPolicy::Cores
            && !self.pin_cpus.is_empty()
            && self.started
            && !self.shared.pin_failed.load(Ordering::Relaxed)
    }
}

/// Run the actor handler for one envelope. Retirement (the outstanding
/// decrement) is the caller's job, batched via `outstanding_delta`.
#[inline]
fn handle_message<M, A: Actor<M>>(
    actor: &mut A,
    st: &mut NodeState<M>,
    shared: &Shared,
    env: Envelope<M>,
) {
    st.stats.events_processed += 1;
    let mut mb = ThreadMailbox { st, shared };
    let mut ctx = Ctx::from_mailbox(&mut mb);
    actor.on_message(&mut ctx, env.src, env.verb, env.msg);
}

/// Retire `handled` events in one atomic publish: subtract them from the
/// local delta (spawned work the handlers registered is already in it)
/// and push the net change to the shared counter.
#[inline]
fn retire<M>(st: &mut NodeState<M>, shared: &Shared, handled: u64) {
    if handled > 0 {
        shared.events.fetch_add(handled, Ordering::Relaxed);
        st.outstanding_delta -= handled as i64;
    }
    st.publish_outstanding(shared);
}

/// Fire every due timer, batched through the wheel. The deadline and
/// event limit are re-checked per fire: a handler that re-arms a
/// zero-delay timer is immediately due again, and without the checks the
/// fire loop could neither pause nor trip the runaway guard. Timers
/// popped but not fired when a check trips are restored un-fired.
/// Returns the number of timers fired.
fn fire_due_timers<M, A: Actor<M>>(actor: &mut A, st: &mut NodeState<M>, shared: &Shared) -> u64 {
    let mut total = 0u64;
    loop {
        let mut batch = std::mem::take(&mut st.fired);
        batch.clear();
        st.timers.pop_expired(shared.now_ns(), &mut batch);
        if batch.is_empty() {
            st.fired = batch;
            break;
        }
        let mut stop = false;
        for (i, &(due, token)) in batch.iter().enumerate() {
            let now = shared.now_ns();
            if now >= shared.deadline_ns.load(Ordering::SeqCst) || shared.limit_hit() {
                // Phase over mid-batch: re-arm the un-fired remainder in
                // popped order (preserves FIFO among equal due times).
                for &(due, token) in &batch[i..] {
                    st.timers.restore(due, token);
                }
                stop = true;
                break;
            }
            st.tel.timer_slop.record(now.saturating_sub(due));
            st.stats.timer_fires += 1;
            st.stats.events_processed += 1;
            shared.events.fetch_add(1, Ordering::Relaxed);
            total += 1;
            st.outstanding_delta -= 1;
            let mut mb = ThreadMailbox { st, shared };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            actor.on_timer(&mut ctx, token);
        }
        st.fired = batch;
        if stop {
            break;
        }
    }
    st.publish_outstanding(shared);
    total
}

/// The per-node worker loop. See the module docs for the batched hot
/// path; the loop invariant is that `outstanding_delta` is published
/// (and therefore zero) at every point where the thread may sleep, spin,
/// check quiescence, or return.
fn worker<M, A: Actor<M>>(
    actor: &mut A,
    st: &mut NodeState<M>,
    shared: &Shared,
    first: bool,
    pin: Option<usize>,
) {
    // Pin before anything else — in particular before `on_start`, so
    // first-touch allocations made there land on this core's NUMA node.
    // Threads are fresh each phase, so pinning repeats each phase.
    if let Some(cpu) = pin {
        if !affinity::pin_current_thread(cpu) {
            shared.pin_failed.store(true, Ordering::Relaxed);
        }
    }
    // Register for ring wakeups (new thread handle every phase).
    *shared.parkers[st.node.idx()]
        .thread
        .lock()
        .expect("parker lock") = Some(std::thread::current());
    if first {
        {
            let mut mb = ThreadMailbox { st, shared };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            actor.on_start(&mut ctx);
        }
        st.publish_outstanding(shared);
        // Release the startup hold taken by `run_phase`.
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
    loop {
        debug_assert_eq!(st.outstanding_delta, 0, "delta published before loop top");
        st.flush_pending(shared);
        let deadline = shared.deadline_ns.load(Ordering::SeqCst);
        if shared.now_ns() >= deadline {
            return; // Pause: state survives for the next phase.
        }
        if shared.limit_hit() {
            return; // Runaway guard tripped.
        }

        if fire_due_timers(actor, st, shared) > 0 {
            continue; // Re-flush what the timer handlers sent.
        }

        // Drain a batch of messages without touching shared state, then
        // publish the whole batch's bookkeeping at once. Self-sends
        // (including ones produced by handlers mid-batch) drain first —
        // they cost no mailbox synchronization at all.
        st.tel.ring_occupancy_hwm = st.tel.ring_occupancy_hwm.max(st.inbox.len() as u64);
        let mut handled = 0u64;
        let mut disconnected = false;
        while handled < MESSAGE_BATCH as u64 {
            if let Some(env) = st.local.pop_front() {
                handle_message(actor, st, shared, env);
                handled += 1;
                continue;
            }
            match st.inbox.try_recv() {
                Recv::Msg(env) => {
                    handle_message(actor, st, shared, env);
                    handled += 1;
                }
                Recv::Empty => break,
                Recv::Disconnected => {
                    disconnected = true;
                    break;
                }
            }
        }
        retire(st, shared, handled);
        if disconnected {
            return;
        }
        if handled > 0 {
            st.tel.batches_drained += 1;
            actor.on_batch_end();
            continue;
        }

        // Going idle: give amortized side effects (group-commit fsyncs)
        // their boundary before any sleep, so a straggler commit is not
        // left buffered across a park. No-op unless something is pending.
        actor.on_batch_end();

        // Nothing ready here; if nothing is outstanding anywhere, the
        // cluster is quiescent.
        if shared.outstanding.load(Ordering::SeqCst) == 0 {
            return;
        }

        // Idle. Wake for the next local timer, the phase deadline, or a
        // park-tick, whichever is first; a message arrival wakes us early.
        // When the wake target is an armed timer, approach it in two
        // steps: sleep until `SPIN_BEFORE_SLEEP_NS` short of it, then spin
        // (polling the mailbox) to the due time — a timed sleep alone
        // overshoots by the OS sleep granularity.
        let now = shared.now_ns();
        let next_timer = st.timers.next_due().unwrap_or(u64::MAX);
        let wake = next_timer
            .min(deadline)
            .min(now.saturating_add(MAX_PARK_NS));
        if shared.spin_allowed
            && next_timer == wake
            && next_timer.saturating_sub(now) <= SPIN_BEFORE_SLEEP_NS
        {
            let mut iters: u32 = 0;
            while shared.now_ns() < next_timer {
                match st.inbox.try_recv() {
                    Recv::Msg(env) => {
                        handle_message(actor, st, shared, env);
                        retire(st, shared, 1);
                        break;
                    }
                    Recv::Empty => {}
                    Recv::Disconnected => return,
                }
                iters = iters.wrapping_add(1);
                if iters.is_multiple_of(SPIN_YIELD_EVERY) {
                    // Share the core with whoever else needs it.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            continue;
        }
        let wait = wake.saturating_sub(now).max(1);
        let sleep_ns = if shared.spin_allowed && next_timer == wake {
            // Leave the final approach to the spin phase above.
            wait.saturating_sub(SPIN_BEFORE_SLEEP_NS).max(1)
        } else {
            wait
        };
        match st.await_message(shared, sleep_ns) {
            Recv::Msg(env) => {
                handle_message(actor, st, shared, env);
                retire(st, shared, 1);
            }
            Recv::Empty => {}
            Recv::Disconnected => return,
        }
    }
}

impl<M: Send, A: Actor<M> + Send> Clock for ThreadedRuntime<M, A> {
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }
}

impl<M: Send, A: Actor<M> + Send> Runtime<M, A> for ThreadedRuntime<M, A> {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn stats(&self) -> NetStats {
        let mut merged = NetStats::default();
        for st in &self.states {
            merged.merge(&st.stats);
        }
        merged
    }

    fn num_nodes(&self) -> usize {
        self.actors.len()
    }

    fn actors(&self) -> &[A] {
        &self.actors
    }

    fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        self.run_phase(until.as_nanos(), u64::MAX)
    }

    fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.run_phase(u64::MAX, max_events)
    }

    fn pinned(&self) -> bool {
        self.pinned_now()
    }

    fn workers(&self) -> usize {
        crate::sizing::threaded_workers(self.actors.len())
    }

    fn telemetry(&self) -> RuntimeTelemetry {
        let mut merged = RuntimeTelemetry::default();
        for st in &self.states {
            merged.merge(&st.tel);
        }
        merged
    }

    fn mailbox_kind(&self) -> Option<MailboxKind> {
        Some(self.mailbox)
    }

    fn with_actor_ctx(&mut self, node: NodeId, f: &mut dyn FnMut(&mut A, &mut Ctx<'_, M>)) {
        let st = &mut self.states[node.idx()];
        {
            let mut mb = ThreadMailbox {
                st,
                shared: &self.shared,
            };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            f(&mut self.actors[node.idx()], &mut ctx)
        }
        // Register injected sends/timers now; the envelopes themselves
        // stay parked until the next phase's first flush.
        st.publish_outstanding(&self.shared);
    }
}

/// The threaded backend's [`Mailbox`]. Also used by the main thread for
/// control-plane injection between phases.
struct ThreadMailbox<'a, M> {
    st: &'a mut NodeState<M>,
    shared: &'a Shared,
}

impl<M> Mailbox<M> for ThreadMailbox<'_, M> {
    #[inline]
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }

    #[inline]
    fn node(&self) -> NodeId {
        self.st.node
    }

    fn send(&mut self, dst: NodeId, verb: Verb, msg: M) {
        let src = self.st.node;
        self.st.outstanding_delta += 1;
        if src == dst {
            self.st.stats.local_msgs += 1;
            self.st.local.push_back(Envelope { src, verb, msg });
        } else {
            match verb {
                Verb::OneSided => self.st.stats.one_sided_msgs += 1,
                Verb::Rpc => self.st.stats.rpc_msgs += 1,
            }
            self.st
                .pending
                .push_back((dst, Envelope { src, verb, msg }));
        }
    }

    fn set_timer(&mut self, d: Duration, token: u64) {
        self.st.outstanding_delta += 1;
        let due = self.shared.now_ns().saturating_add(d.as_nanos());
        self.st.timers.insert(due, token);
    }

    fn set_timer_when_free(&mut self, d: Duration, token: u64) {
        // No busy horizon on real threads: the engine is free whenever it
        // is not executing.
        self.set_timer(d, token);
    }

    fn use_cpu(&mut self, _d: Duration) {
        // Real CPU is consumed by actually executing the handler.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One actor type covering every test role, so a single runtime can
    /// host heterogeneous behaviors.
    enum TestActor {
        /// Sends `count` messages to node 1 at start, counts replies.
        Pinger { count: u64, replies: u64 },
        /// Replies `msg + 1000` to every message below 1000.
        Echo { received: Vec<(NodeId, u64)> },
        /// Records payloads in arrival order.
        Recorder { received: Vec<u64> },
        /// Re-arms a 50us timer until it has fired `limit` times.
        Ticker {
            fired: u64,
            limit: u64,
            delay_ns: u64,
        },
        /// Forwards each received payload to `next`, decrementing a
        /// hop budget carried in the payload's low bits.
        Relay { next: NodeId, received: u64 },
    }

    impl Actor<u64> for TestActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            match self {
                TestActor::Pinger { count, .. } => {
                    for i in 0..*count {
                        ctx.send(NodeId(1), Verb::OneSided, i);
                    }
                }
                TestActor::Ticker { delay_ns, .. } => {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), 1)
                }
                _ => {}
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, verb: Verb, msg: u64) {
            match self {
                TestActor::Pinger { replies, .. } => *replies += 1,
                TestActor::Echo { received } => {
                    received.push((src, msg));
                    if msg < 1000 {
                        ctx.send(src, verb, msg + 1000);
                    }
                }
                TestActor::Recorder { received } => received.push(msg),
                TestActor::Ticker { .. } => {}
                TestActor::Relay { next, received } => {
                    *received += 1;
                    if msg > 0 {
                        ctx.send(*next, verb, msg - 1);
                    }
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            if let TestActor::Ticker {
                fired,
                limit,
                delay_ns,
            } = self
            {
                *fired += 1;
                if fired < limit {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), token);
                }
            }
        }
    }

    fn replies(a: &TestActor) -> u64 {
        match a {
            TestActor::Pinger { replies, .. } => *replies,
            _ => 0,
        }
    }

    /// Explicit mailbox-kind config: tests that must cover a specific
    /// implementation regardless of the `CHILLER_MAILBOX` environment.
    fn config(mailbox: MailboxKind, capacity: usize) -> ThreadedConfig {
        ThreadedConfig {
            capacity,
            mailbox,
            pin: PinPolicy::Off,
        }
    }

    #[test]
    fn ping_pong_reaches_quiescence() {
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Pinger {
                count: 500,
                replies: 0,
            },
            TestActor::Echo {
                received: Vec::new(),
            },
        ]);
        rt.run_to_quiescence(u64::MAX);
        assert_eq!(replies(&rt.actors()[0]), 500);
        let stats = rt.stats();
        assert_eq!(stats.one_sided_msgs, 1000);
        assert_eq!(stats.events_processed, 1000);
    }

    /// The same ping-pong on every explicit mailbox implementation: a
    /// 2-node cluster exercises the SPSC fast path, 5 nodes the MPSC
    /// ring, and the channel fallback must keep working regardless of
    /// the environment default.
    #[test]
    fn ping_pong_on_every_mailbox_kind() {
        for (kind, nodes) in [
            (MailboxKind::Ring, 2),
            (MailboxKind::Ring, 5),
            (MailboxKind::Channel, 2),
            (MailboxKind::Channel, 5),
        ] {
            let mut actors = vec![
                TestActor::Pinger {
                    count: 300,
                    replies: 0,
                },
                TestActor::Echo {
                    received: Vec::new(),
                },
            ];
            for _ in 2..nodes {
                actors.push(TestActor::Recorder {
                    received: Vec::new(),
                });
            }
            let mut rt = ThreadedRuntime::with_config(actors, config(kind, 64));
            rt.run_to_quiescence(u64::MAX);
            assert_eq!(
                replies(&rt.actors()[0]),
                300,
                "{kind} mailbox with {nodes} nodes lost replies"
            );
            assert_eq!(rt.mailbox_kind(), kind);
        }
    }

    /// Per-link FIFO even when the bounded mailbox overflows into the
    /// parked-send queue: node 1 must observe node 0's payloads in order.
    /// Covers both ring lanes (SPSC at 2 nodes) and the channel.
    #[test]
    fn per_link_fifo_survives_mailbox_overflow() {
        let n = 500u64;
        for kind in [MailboxKind::Ring, MailboxKind::Channel] {
            let mut rt = ThreadedRuntime::with_config(
                vec![
                    TestActor::Pinger {
                        count: n,
                        replies: 0,
                    },
                    TestActor::Recorder {
                        received: Vec::new(),
                    },
                ],
                config(kind, 4), // tiny mailbox: most sends park between flushes
            );
            rt.run_to_quiescence(u64::MAX);
            let TestActor::Recorder { received } = &rt.actors()[1] else {
                panic!("node 1 is the recorder");
            };
            assert_eq!(received, &(0..n).collect::<Vec<_>>(), "{kind} reordered");
        }
    }

    /// Capacity-1 rings: every send overflows, every flush stalls, and
    /// the wakeup handshake fires constantly — FIFO must still be exact.
    #[test]
    fn capacity_one_ring_mailboxes_stay_fifo() {
        let n = 300u64;
        // 3 nodes forces the MPSC ring; 2 nodes the SPSC ring.
        for nodes in [2usize, 3] {
            let mut actors = vec![
                TestActor::Pinger {
                    count: n,
                    replies: 0,
                },
                TestActor::Recorder {
                    received: Vec::new(),
                },
            ];
            for _ in 2..nodes {
                actors.push(TestActor::Recorder {
                    received: Vec::new(),
                });
            }
            let mut rt = ThreadedRuntime::with_config(actors, config(MailboxKind::Ring, 1));
            rt.run_to_quiescence(u64::MAX);
            let TestActor::Recorder { received } = &rt.actors()[1] else {
                panic!("node 1 is the recorder");
            };
            assert_eq!(
                received,
                &(0..n).collect::<Vec<_>>(),
                "capacity-1 ring with {nodes} nodes reordered"
            );
        }
    }

    /// Quiescence must not be declared while a long message cascade is
    /// still bouncing between nodes — the batched delta publication may
    /// never let the outstanding count dip to zero mid-cascade.
    #[test]
    fn quiescence_waits_for_chained_cascades() {
        let hops = 10_000u64;
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Relay {
                next: NodeId(1),
                received: 0,
            },
            TestActor::Relay {
                next: NodeId(0),
                received: 0,
            },
        ]);
        // Kick off one cascade of `hops` forwards from outside.
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            ctx.send(NodeId(1), Verb::OneSided, hops - 1);
        });
        rt.run_to_quiescence(u64::MAX);
        let total: u64 = rt
            .actors()
            .iter()
            .map(|a| match a {
                TestActor::Relay { received, .. } => *received,
                _ => 0,
            })
            .sum();
        assert_eq!(total, hops, "cascade cut short by premature quiescence");
    }

    #[test]
    fn timers_fire_and_pause_resumes() {
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: 20,
            delay_ns: 50_000,
        }]);
        // Phase 1: run a slice of wall time, then pause.
        let start = rt.now();
        rt.run_until(start + Duration::from_micros(300));
        let TestActor::Ticker { fired: mid, .. } = rt.actors()[0] else {
            panic!()
        };
        // Phase 2: any armed timer survives the pause; run to quiescence.
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= mid);
        assert_eq!(fired, 20);
        assert_eq!(rt.stats().timer_fires, 20);
    }

    #[test]
    fn control_plane_injection_between_phases() {
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Pinger {
                count: 0,
                replies: 0,
            },
            TestActor::Echo {
                received: Vec::new(),
            },
        ]);
        rt.run_to_quiescence(u64::MAX);
        // Inject a send from node 0 while paused.
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            assert_eq!(ctx.node(), NodeId(0));
            ctx.send(NodeId(1), Verb::Rpc, 7);
        });
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Echo { received } = &rt.actors()[1] else {
            panic!()
        };
        assert_eq!(received.len(), 1);
        assert_eq!(replies(&rt.actors()[0]), 1);
    }

    #[test]
    fn event_limit_bounds_runaway_loops() {
        // A ticker with no limit would re-arm forever; the event guard
        // must stop the phase.
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: u64::MAX,
            delay_ns: 50_000,
        }]);
        rt.run_to_quiescence(10);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 10, "guard must not fire before the limit");
        assert!(fired < 1000, "guard must stop the runaway ticker");
    }

    /// Regression: a handler that re-arms a zero-delay timer is due again
    /// immediately; the timer-firing loop must still honor the event limit
    /// (and the phase deadline) instead of spinning forever.
    #[test]
    fn zero_delay_timer_rearm_cannot_hang_a_phase() {
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: u64::MAX,
            delay_ns: 0,
        }]);
        rt.run_to_quiescence(1_000);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 1_000, "guard must not fire before the limit");
        assert!(fired < 100_000, "guard must stop the zero-delay ticker");
    }

    /// Regression: a single-node cluster on the channel mailbox must keep
    /// its (unused) self-sender alive — dropping it disconnects the
    /// receiver and the worker would exit before firing armed timers.
    #[test]
    fn single_node_channel_cluster_fires_timers() {
        let mut rt = ThreadedRuntime::with_config(
            vec![TestActor::Ticker {
                fired: 0,
                limit: 10,
                delay_ns: 20_000,
            }],
            config(MailboxKind::Channel, 16),
        );
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert_eq!(fired, 10, "single-node channel worker exited early");
    }

    /// Telemetry plausibility: a run that handles messages must report
    /// drained batches; tiny mailboxes must report flush stalls and a
    /// parked-queue high-water mark; timers must populate the slop
    /// histogram.
    #[test]
    fn telemetry_counters_reflect_the_run() {
        let mut rt = ThreadedRuntime::with_config(
            vec![
                TestActor::Pinger {
                    count: 400,
                    replies: 0,
                },
                TestActor::Echo {
                    received: Vec::new(),
                },
            ],
            config(MailboxKind::Ring, 2), // tiny: force stalls and parking
        );
        rt.run_to_quiescence(u64::MAX);
        let tel = rt.telemetry();
        assert!(tel.batches_drained > 0, "messages were handled in batches");
        assert!(tel.flush_stalls > 0, "capacity-2 mailboxes must stall");
        assert!(tel.parked_depth_hwm > 0, "sends must have parked");
        assert_eq!(tel.timer_slop.count(), 0, "no timers in this run");
        assert_eq!(
            Runtime::mailbox_kind(&rt),
            Some(MailboxKind::Ring),
            "trait accessor reports the mailbox kind"
        );

        let mut ticker = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: 10,
            delay_ns: 30_000,
        }]);
        ticker.run_to_quiescence(u64::MAX);
        assert_eq!(ticker.telemetry().timer_slop.count(), 10);
    }

    #[test]
    fn clock_is_monotonic() {
        let rt = ThreadedRuntime::<u64, TestActor>::new(vec![TestActor::Recorder {
            received: Vec::new(),
        }]);
        let a = rt.now();
        let b = rt.now();
        assert!(b >= a);
    }

    /// Pinning: requested-but-unstarted runtimes report unpinned; after a
    /// phase on Linux the report flips to pinned (and stays honest about
    /// failure elsewhere).
    #[test]
    fn pin_policy_reports_honestly() {
        let mut rt = ThreadedRuntime::with_config(
            vec![
                TestActor::Pinger {
                    count: 50,
                    replies: 0,
                },
                TestActor::Echo {
                    received: Vec::new(),
                },
            ],
            ThreadedConfig {
                capacity: 64,
                mailbox: MailboxKind::Ring,
                pin: PinPolicy::Cores,
            },
        );
        assert!(!rt.pinned(), "nothing is pinned before the first phase");
        rt.run_to_quiescence(u64::MAX);
        assert_eq!(replies(&rt.actors()[0]), 50);
        if cfg!(target_os = "linux") {
            assert!(rt.pinned(), "Linux run with Cores policy must pin");
        } else {
            assert!(!rt.pinned(), "non-Linux must degrade to unpinned");
        }
        // Off policy never reports pinned.
        let mut off = ThreadedRuntime::with_config(
            vec![TestActor::Recorder {
                received: Vec::new(),
            }],
            config(MailboxKind::Ring, 64),
        );
        off.run_to_quiescence(u64::MAX);
        assert!(!off.pinned());
    }
}
