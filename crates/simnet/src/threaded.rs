//! The real multi-threaded backend: one OS thread per node, bounded mpsc
//! mailboxes, a monotonic wall clock.
//!
//! Where the simulator *models* a cluster (virtual latencies, CPU
//! charges), this backend *is* one — each [`Actor`] runs on its own
//! thread and the reported throughput is what the host machine actually
//! sustains. The same engines, messages and workloads run unmodified;
//! only the [`Mailbox`] behind [`Ctx`] differs:
//!
//! * **Clock** — monotonic wall-clock nanoseconds since runtime creation
//!   (the `SimTime` values actors see are real elapsed time).
//! * **Send** — bounded `sync_channel` per node. Sends never block and
//!   never touch a channel mid-handler: remote sends park in a local
//!   queue flushed once per worker-loop batch, and self-sends go to a
//!   zero-synchronization local queue that never touches a channel at
//!   all. Cyclic protocols (engine A mid-handler sending to B while B
//!   sends to A) cannot deadlock. The flush preserves not just per-link
//!   FIFO but each sender's *global* send order across destinations
//!   (stalling at a full mailbox instead of skipping it) — protocols
//!   build happens-before chains through third nodes that a weaker
//!   ordering would break.
//! * **Timers** — a per-thread hashed [`TimerWheel`]; the worker sleeps
//!   until *short of* the next due time and spins the final approach,
//!   keeping timer slop well below the OS sleep granularity.
//! * **`use_cpu`** — a no-op: real CPU is consumed by actually executing
//!   the handler.
//!
//! ## The batched hot path
//!
//! Each worker-loop iteration (1) flushes parked sends, (2) fires due
//! timers, (3) drains up to `MESSAGE_BATCH` envelopes from its channel,
//! handling each in place. Bookkeeping that used to cost one atomic RMW
//! per event — the cluster-wide outstanding-work counter, the global
//! event counter — is accumulated in thread-local deltas and published
//! once per batch. On a contended host this turns the per-message cost
//! from several cross-core atomics plus a possible futex wake into plain
//! local arithmetic for all but the last message of each batch.
//!
//! ## Run phases and quiescence
//!
//! Worker threads only exist inside [`Runtime::run_until`] /
//! [`Runtime::run_to_quiescence`] (scoped threads). Between phases the
//! main thread has exclusive access to the actors —
//! [`Runtime::actors_mut`] and [`Runtime::with_actor_ctx`] work exactly
//! as on the simulator, which is what lets the cluster layer reset
//! metrics at the warm-up boundary, drive the adaptive epoch scheduler,
//! and check invariants after a drain. In-flight messages, parked sends
//! and armed timers survive a pause and resume with the next phase.
//!
//! Quiescence is detected with a global outstanding-work counter:
//! incremented for every queued message and armed timer, decremented
//! only *after* the receiving handler returns (so work spawned by a
//! handler keeps the count positive). Zero therefore means no queued
//! message, no armed timer, and no handler mid-flight anywhere — workers
//! observe it and exit. Batching keeps this sound by construction: a
//! worker publishes its accumulated delta (spawns minus retirements)
//! in a *single* atomic add before it flushes the spawned messages to
//! their destination channels, so no other thread can consume a message
//! whose registration is still pending, and un-retired batch messages
//! hold the count positive throughout.

use crate::runtime::{Actor, Backend, Clock, Ctx, Mailbox, NetStats, Runtime, Verb};
use crate::timer_wheel::TimerWheel;
use chiller_common::ids::NodeId;
use chiller_common::time::{Duration, SimTime};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::Instant;

/// Default bound of each node's mailbox (messages, not bytes).
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

/// Longest a worker sleeps before re-checking the deadline and the
/// quiescence counter (pause responsiveness, not correctness).
const MAX_PARK_NS: u64 = 200_000;

/// Most messages a worker handles per loop iteration before it re-flushes
/// parked sends and re-checks timers, the deadline and the event limit.
/// Bounds both control-latency (pause responsiveness) and the burst a
/// destination can lag behind its own timers.
const MESSAGE_BATCH: usize = 64;

/// When the next armed timer is within this horizon the worker spins
/// (polling its channel) instead of sleeping; when it is further out the
/// worker sleeps until `due - SPIN_BEFORE_SLEEP_NS` and spins the final
/// approach. 50µs ≈ the OS sleep slop being compensated for.
///
/// Spinning only happens when the host has a core per worker (see
/// [`Shared::spin_allowed`]): on an oversubscribed host a spinning
/// worker holds the core hostage from workers with real work, and
/// blocking in `recv_timeout` is better for aggregate throughput than
/// timer fidelity is worth.
const SPIN_BEFORE_SLEEP_NS: u64 = 50_000;

/// During a spin phase, yield to the OS scheduler every this many
/// iterations as a safety valve (e.g. when other processes share the
/// worker's core even though the cluster itself is not oversubscribed).
const SPIN_YIELD_EVERY: u32 = 64;

/// A message in flight between two nodes.
struct Envelope<M> {
    src: NodeId,
    verb: Verb,
    msg: M,
}

/// Coordination state shared by all worker threads during a phase.
struct Shared {
    /// Origin of the monotonic wall clock.
    start: Instant,
    /// Queued messages + armed timers + handlers mid-flight, cluster-wide.
    outstanding: AtomicI64,
    /// Wall-clock deadline (ns since `start`) of the current phase.
    deadline_ns: AtomicU64,
    /// Runaway guard for `run_to_quiescence`: stop once
    /// `events_processed` passes this.
    event_limit: AtomicU64,
    /// Total events processed across all threads (guard bookkeeping;
    /// published per batch, so approximate while a batch is mid-flight).
    events: AtomicU64,
    /// Whether workers may spin-wait for near timers: true only when the
    /// host has at least one core per worker, i.e. spinning cannot starve
    /// another worker that has real work.
    spin_allowed: bool,
}

impl Shared {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    #[inline]
    fn limit_hit(&self) -> bool {
        self.events.load(Ordering::Relaxed) >= self.event_limit.load(Ordering::Relaxed)
    }
}

/// Per-node state that persists across run phases; mutably borrowed by
/// that node's worker thread while a phase runs.
struct NodeState<M> {
    node: NodeId,
    rx: Receiver<Envelope<M>>,
    /// Senders to every node's mailbox (index = destination node).
    txs: Vec<SyncSender<Envelope<M>>>,
    /// Armed timers, hashed by due tick (see [`TimerWheel`]).
    timers: TimerWheel,
    /// Scratch buffer for expired-timer batches (reused across fires).
    fired: Vec<(u64, u64)>,
    /// Remote sends parked locally until the per-batch flush, in send
    /// order across *all* destinations. Global (not per-destination)
    /// FIFO is load-bearing: protocols build happens-before chains that
    /// route through third nodes (e.g. a commit's `Replicate` to a
    /// replica holder must be enqueued before its unlock reaches the
    /// primary, or a later transaction's `Replicate` can overtake it),
    /// so the flush must never let a later send to one destination pass
    /// an earlier send to another.
    pending: VecDeque<(NodeId, Envelope<M>)>,
    /// Self-sends, delivered without touching the channel: the self link
    /// has exactly one sender and one receiver (this thread), so a plain
    /// FIFO queue preserves its order at zero synchronization cost.
    local: VecDeque<Envelope<M>>,
    /// Spawns (sends + armed timers) minus retirements (handled events)
    /// not yet published to `Shared::outstanding`.
    outstanding_delta: i64,
    stats: NetStats,
}

impl<M> NodeState<M> {
    /// Publish the accumulated outstanding-work delta. Must run before
    /// this thread flushes pending sends, sleeps, or checks quiescence —
    /// see the module docs for why this ordering keeps quiescence sound.
    #[inline]
    fn publish_outstanding(&mut self, shared: &Shared) {
        if self.outstanding_delta != 0 {
            shared
                .outstanding
                .fetch_add(self.outstanding_delta, Ordering::SeqCst);
            self.outstanding_delta = 0;
        }
    }

    /// Push parked sends into their destination channels in send order.
    /// Stops entirely at the first full mailbox: letting later sends
    /// overtake the blocked one would break the cross-destination
    /// ordering documented on [`NodeState::pending`]. The stall blocks
    /// only the flush, never this worker (it keeps draining its own
    /// channel, which is what frees the peer's capacity), so cyclic
    /// full-mailbox configurations still make progress.
    fn flush_pending(&mut self) {
        while let Some((dst, env)) = self.pending.pop_front() {
            match self.txs[dst.idx()].try_send(env) {
                Ok(()) => {}
                Err(TrySendError::Full(env)) => {
                    self.pending.push_front((dst, env));
                    break;
                }
                // Receivers live as long as the runtime; a disconnect can
                // only mean teardown, where dropping is harmless.
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }
}

/// The threaded backend's [`Mailbox`]. Also used by the main thread for
/// control-plane injection between phases.
struct ThreadMailbox<'a, M> {
    st: &'a mut NodeState<M>,
    shared: &'a Shared,
}

impl<M> Mailbox<M> for ThreadMailbox<'_, M> {
    #[inline]
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }

    #[inline]
    fn node(&self) -> NodeId {
        self.st.node
    }

    fn send(&mut self, dst: NodeId, verb: Verb, msg: M) {
        let src = self.st.node;
        self.st.outstanding_delta += 1;
        if src == dst {
            self.st.stats.local_msgs += 1;
            self.st.local.push_back(Envelope { src, verb, msg });
        } else {
            match verb {
                Verb::OneSided => self.st.stats.one_sided_msgs += 1,
                Verb::Rpc => self.st.stats.rpc_msgs += 1,
            }
            self.st
                .pending
                .push_back((dst, Envelope { src, verb, msg }));
        }
    }

    fn set_timer(&mut self, d: Duration, token: u64) {
        self.st.outstanding_delta += 1;
        let due = self.shared.now_ns().saturating_add(d.as_nanos());
        self.st.timers.insert(due, token);
    }

    fn set_timer_when_free(&mut self, d: Duration, token: u64) {
        // No busy horizon on real threads: the engine is free whenever it
        // is not executing.
        self.set_timer(d, token);
    }

    fn use_cpu(&mut self, _d: Duration) {
        // Real CPU is consumed by actually executing the handler.
    }
}

/// One OS thread per actor, scoped to each run phase. See the module docs
/// for the execution model and the batched hot path.
pub struct ThreadedRuntime<M, A> {
    actors: Vec<A>,
    states: Vec<NodeState<M>>,
    shared: Shared,
    started: bool,
}

impl<M: Send, A: Actor<M> + Send> ThreadedRuntime<M, A> {
    /// Build a threaded runtime over the given actors; actor `i` runs on
    /// `NodeId(i)` with a mailbox bounded at [`DEFAULT_MAILBOX_CAPACITY`].
    pub fn new(actors: Vec<A>) -> Self {
        Self::with_mailbox_capacity(actors, DEFAULT_MAILBOX_CAPACITY)
    }

    /// Build with an explicit per-node mailbox bound.
    pub fn with_mailbox_capacity(actors: Vec<A>, capacity: usize) -> Self {
        assert!(capacity >= 1, "mailboxes must hold at least one message");
        let n = actors.len();
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = sync_channel(capacity);
            txs.push(tx);
            rxs.push(rx);
        }
        let states = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| NodeState {
                node: NodeId(i as u32),
                rx,
                txs: txs.clone(),
                timers: TimerWheel::default(),
                fired: Vec::new(),
                pending: VecDeque::new(),
                local: VecDeque::new(),
                outstanding_delta: 0,
                stats: NetStats::default(),
            })
            .collect();
        ThreadedRuntime {
            actors,
            states,
            shared: Shared {
                start: Instant::now(),
                outstanding: AtomicI64::new(0),
                deadline_ns: AtomicU64::new(0),
                event_limit: AtomicU64::new(u64::MAX),
                events: AtomicU64::new(0),
                spin_allowed: std::thread::available_parallelism()
                    .map(|p| p.get() >= n.max(1))
                    .unwrap_or(false),
            },
            started: false,
        }
    }

    /// Run one phase: spawn a scoped worker per node, join when every
    /// worker has hit the deadline, observed quiescence, or tripped the
    /// event limit. Returns events processed during the phase.
    fn run_phase(&mut self, deadline_ns: u64, max_events: u64) -> u64 {
        let first = !self.started;
        if first {
            self.started = true;
            // Startup hold: no worker may observe "quiescent" before every
            // actor's on_start has armed its initial work.
            self.shared
                .outstanding
                .fetch_add(self.actors.len() as i64, Ordering::SeqCst);
        }
        self.shared.deadline_ns.store(deadline_ns, Ordering::SeqCst);
        let before = self.shared.events.load(Ordering::SeqCst);
        self.shared
            .event_limit
            .store(before.saturating_add(max_events), Ordering::SeqCst);
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for (actor, st) in self.actors.iter_mut().zip(self.states.iter_mut()) {
                scope.spawn(move || worker(actor, st, shared, first));
            }
        });
        self.shared.events.load(Ordering::SeqCst) - before
    }
}

/// Run the actor handler for one envelope. Retirement (the outstanding
/// decrement) is the caller's job, batched via `outstanding_delta`.
#[inline]
fn handle_message<M, A: Actor<M>>(
    actor: &mut A,
    st: &mut NodeState<M>,
    shared: &Shared,
    env: Envelope<M>,
) {
    st.stats.events_processed += 1;
    let mut mb = ThreadMailbox { st, shared };
    let mut ctx = Ctx::from_mailbox(&mut mb);
    actor.on_message(&mut ctx, env.src, env.verb, env.msg);
}

/// Retire `handled` events in one atomic publish: subtract them from the
/// local delta (spawned work the handlers registered is already in it)
/// and push the net change to the shared counter.
#[inline]
fn retire<M>(st: &mut NodeState<M>, shared: &Shared, handled: u64) {
    if handled > 0 {
        shared.events.fetch_add(handled, Ordering::Relaxed);
        st.outstanding_delta -= handled as i64;
    }
    st.publish_outstanding(shared);
}

/// Fire every due timer, batched through the wheel. The deadline and
/// event limit are re-checked per fire: a handler that re-arms a
/// zero-delay timer is immediately due again, and without the checks the
/// fire loop could neither pause nor trip the runaway guard. Timers
/// popped but not fired when a check trips are restored un-fired.
/// Returns the number of timers fired.
fn fire_due_timers<M, A: Actor<M>>(actor: &mut A, st: &mut NodeState<M>, shared: &Shared) -> u64 {
    let mut total = 0u64;
    loop {
        let mut batch = std::mem::take(&mut st.fired);
        batch.clear();
        st.timers.pop_expired(shared.now_ns(), &mut batch);
        if batch.is_empty() {
            st.fired = batch;
            break;
        }
        let mut stop = false;
        for (i, &(_due, token)) in batch.iter().enumerate() {
            if shared.now_ns() >= shared.deadline_ns.load(Ordering::SeqCst) || shared.limit_hit() {
                // Phase over mid-batch: re-arm the un-fired remainder in
                // popped order (preserves FIFO among equal due times).
                for &(due, token) in &batch[i..] {
                    st.timers.restore(due, token);
                }
                stop = true;
                break;
            }
            st.stats.timer_fires += 1;
            st.stats.events_processed += 1;
            shared.events.fetch_add(1, Ordering::Relaxed);
            total += 1;
            st.outstanding_delta -= 1;
            let mut mb = ThreadMailbox { st, shared };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            actor.on_timer(&mut ctx, token);
        }
        st.fired = batch;
        if stop {
            break;
        }
    }
    st.publish_outstanding(shared);
    total
}

/// The per-node worker loop. See the module docs for the batched hot
/// path; the loop invariant is that `outstanding_delta` is published
/// (and therefore zero) at every point where the thread may sleep, spin,
/// check quiescence, or return.
fn worker<M, A: Actor<M>>(actor: &mut A, st: &mut NodeState<M>, shared: &Shared, first: bool) {
    if first {
        {
            let mut mb = ThreadMailbox { st, shared };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            actor.on_start(&mut ctx);
        }
        st.publish_outstanding(shared);
        // Release the startup hold taken by `run_phase`.
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
    loop {
        debug_assert_eq!(st.outstanding_delta, 0, "delta published before loop top");
        st.flush_pending();
        let deadline = shared.deadline_ns.load(Ordering::SeqCst);
        if shared.now_ns() >= deadline {
            return; // Pause: state survives for the next phase.
        }
        if shared.limit_hit() {
            return; // Runaway guard tripped.
        }

        if fire_due_timers(actor, st, shared) > 0 {
            continue; // Re-flush what the timer handlers sent.
        }

        // Drain a batch of messages without touching shared state, then
        // publish the whole batch's bookkeeping at once. Self-sends
        // (including ones produced by handlers mid-batch) drain first —
        // they cost no channel synchronization at all.
        let mut handled = 0u64;
        let mut disconnected = false;
        while handled < MESSAGE_BATCH as u64 {
            if let Some(env) = st.local.pop_front() {
                handle_message(actor, st, shared, env);
                handled += 1;
                continue;
            }
            match st.rx.try_recv() {
                Ok(env) => {
                    handle_message(actor, st, shared, env);
                    handled += 1;
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        retire(st, shared, handled);
        if disconnected {
            return;
        }
        if handled > 0 {
            continue;
        }

        // Nothing ready here; if nothing is outstanding anywhere, the
        // cluster is quiescent.
        if shared.outstanding.load(Ordering::SeqCst) == 0 {
            return;
        }

        // Idle. Wake for the next local timer, the phase deadline, or a
        // park-tick, whichever is first; a message arrival wakes us early.
        // When the wake target is an armed timer, approach it in two
        // steps: sleep until `SPIN_BEFORE_SLEEP_NS` short of it, then spin
        // (polling the channel) to the due time — `recv_timeout` alone
        // overshoots by the OS sleep granularity.
        let now = shared.now_ns();
        let next_timer = st.timers.next_due().unwrap_or(u64::MAX);
        let wake = next_timer
            .min(deadline)
            .min(now.saturating_add(MAX_PARK_NS));
        if shared.spin_allowed
            && next_timer == wake
            && next_timer.saturating_sub(now) <= SPIN_BEFORE_SLEEP_NS
        {
            let mut iters: u32 = 0;
            while shared.now_ns() < next_timer {
                match st.rx.try_recv() {
                    Ok(env) => {
                        handle_message(actor, st, shared, env);
                        retire(st, shared, 1);
                        break;
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => {}
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                }
                iters = iters.wrapping_add(1);
                if iters.is_multiple_of(SPIN_YIELD_EVERY) {
                    // Share the core with whoever else needs it.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            continue;
        }
        let wait = wake.saturating_sub(now).max(1);
        let sleep_ns = if shared.spin_allowed && next_timer == wake {
            // Leave the final approach to the spin phase above.
            wait.saturating_sub(SPIN_BEFORE_SLEEP_NS).max(1)
        } else {
            wait
        };
        match st
            .rx
            .recv_timeout(std::time::Duration::from_nanos(sleep_ns))
        {
            Ok(env) => {
                handle_message(actor, st, shared, env);
                retire(st, shared, 1);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

impl<M: Send, A: Actor<M> + Send> Clock for ThreadedRuntime<M, A> {
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }
}

impl<M: Send, A: Actor<M> + Send> Runtime<M, A> for ThreadedRuntime<M, A> {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn stats(&self) -> NetStats {
        let mut merged = NetStats::default();
        for st in &self.states {
            merged.merge(&st.stats);
        }
        merged
    }

    fn num_nodes(&self) -> usize {
        self.actors.len()
    }

    fn actors(&self) -> &[A] {
        &self.actors
    }

    fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        self.run_phase(until.as_nanos(), u64::MAX)
    }

    fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.run_phase(u64::MAX, max_events)
    }

    fn with_actor_ctx(&mut self, node: NodeId, f: &mut dyn FnMut(&mut A, &mut Ctx<'_, M>)) {
        let st = &mut self.states[node.idx()];
        {
            let mut mb = ThreadMailbox {
                st,
                shared: &self.shared,
            };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            f(&mut self.actors[node.idx()], &mut ctx)
        }
        // Register injected sends/timers now; the envelopes themselves
        // stay parked until the next phase's first flush.
        st.publish_outstanding(&self.shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One actor type covering every test role, so a single runtime can
    /// host heterogeneous behaviors.
    enum TestActor {
        /// Sends `count` messages to node 1 at start, counts replies.
        Pinger { count: u64, replies: u64 },
        /// Replies `msg + 1000` to every message below 1000.
        Echo { received: Vec<(NodeId, u64)> },
        /// Records payloads in arrival order.
        Recorder { received: Vec<u64> },
        /// Re-arms a 50us timer until it has fired `limit` times.
        Ticker {
            fired: u64,
            limit: u64,
            delay_ns: u64,
        },
        /// Forwards each received payload to `next`, decrementing a
        /// hop budget carried in the payload's low bits.
        Relay { next: NodeId, received: u64 },
    }

    impl Actor<u64> for TestActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            match self {
                TestActor::Pinger { count, .. } => {
                    for i in 0..*count {
                        ctx.send(NodeId(1), Verb::OneSided, i);
                    }
                }
                TestActor::Ticker { delay_ns, .. } => {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), 1)
                }
                _ => {}
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, verb: Verb, msg: u64) {
            match self {
                TestActor::Pinger { replies, .. } => *replies += 1,
                TestActor::Echo { received } => {
                    received.push((src, msg));
                    if msg < 1000 {
                        ctx.send(src, verb, msg + 1000);
                    }
                }
                TestActor::Recorder { received } => received.push(msg),
                TestActor::Ticker { .. } => {}
                TestActor::Relay { next, received } => {
                    *received += 1;
                    if msg > 0 {
                        ctx.send(*next, verb, msg - 1);
                    }
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            if let TestActor::Ticker {
                fired,
                limit,
                delay_ns,
            } = self
            {
                *fired += 1;
                if fired < limit {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), token);
                }
            }
        }
    }

    fn replies(a: &TestActor) -> u64 {
        match a {
            TestActor::Pinger { replies, .. } => *replies,
            _ => 0,
        }
    }

    #[test]
    fn ping_pong_reaches_quiescence() {
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Pinger {
                count: 500,
                replies: 0,
            },
            TestActor::Echo {
                received: Vec::new(),
            },
        ]);
        rt.run_to_quiescence(u64::MAX);
        assert_eq!(replies(&rt.actors()[0]), 500);
        let stats = rt.stats();
        assert_eq!(stats.one_sided_msgs, 1000);
        assert_eq!(stats.events_processed, 1000);
    }

    /// Per-link FIFO even when the bounded mailbox overflows into the
    /// parked-send queue: node 1 must observe node 0's payloads in order.
    #[test]
    fn per_link_fifo_survives_mailbox_overflow() {
        let n = 500u64;
        let mut rt = ThreadedRuntime::with_mailbox_capacity(
            vec![
                TestActor::Pinger {
                    count: n,
                    replies: 0,
                },
                TestActor::Recorder {
                    received: Vec::new(),
                },
            ],
            4, // tiny mailbox: most sends park locally between flushes
        );
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Recorder { received } = &rt.actors()[1] else {
            panic!("node 1 is the recorder");
        };
        assert_eq!(received, &(0..n).collect::<Vec<_>>());
    }

    /// Quiescence must not be declared while a long message cascade is
    /// still bouncing between nodes — the batched delta publication may
    /// never let the outstanding count dip to zero mid-cascade.
    #[test]
    fn quiescence_waits_for_chained_cascades() {
        let hops = 10_000u64;
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Relay {
                next: NodeId(1),
                received: 0,
            },
            TestActor::Relay {
                next: NodeId(0),
                received: 0,
            },
        ]);
        // Kick off one cascade of `hops` forwards from outside.
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            ctx.send(NodeId(1), Verb::OneSided, hops - 1);
        });
        rt.run_to_quiescence(u64::MAX);
        let total: u64 = rt
            .actors()
            .iter()
            .map(|a| match a {
                TestActor::Relay { received, .. } => *received,
                _ => 0,
            })
            .sum();
        assert_eq!(total, hops, "cascade cut short by premature quiescence");
    }

    #[test]
    fn timers_fire_and_pause_resumes() {
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: 20,
            delay_ns: 50_000,
        }]);
        // Phase 1: run a slice of wall time, then pause.
        let start = rt.now();
        rt.run_until(start + Duration::from_micros(300));
        let TestActor::Ticker { fired: mid, .. } = rt.actors()[0] else {
            panic!()
        };
        // Phase 2: any armed timer survives the pause; run to quiescence.
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= mid);
        assert_eq!(fired, 20);
        assert_eq!(rt.stats().timer_fires, 20);
    }

    #[test]
    fn control_plane_injection_between_phases() {
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Pinger {
                count: 0,
                replies: 0,
            },
            TestActor::Echo {
                received: Vec::new(),
            },
        ]);
        rt.run_to_quiescence(u64::MAX);
        // Inject a send from node 0 while paused.
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            assert_eq!(ctx.node(), NodeId(0));
            ctx.send(NodeId(1), Verb::Rpc, 7);
        });
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Echo { received } = &rt.actors()[1] else {
            panic!()
        };
        assert_eq!(received.len(), 1);
        assert_eq!(replies(&rt.actors()[0]), 1);
    }

    #[test]
    fn event_limit_bounds_runaway_loops() {
        // A ticker with no limit would re-arm forever; the event guard
        // must stop the phase.
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: u64::MAX,
            delay_ns: 50_000,
        }]);
        rt.run_to_quiescence(10);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 10, "guard must not fire before the limit");
        assert!(fired < 1000, "guard must stop the runaway ticker");
    }

    /// Regression: a handler that re-arms a zero-delay timer is due again
    /// immediately; the timer-firing loop must still honor the event limit
    /// (and the phase deadline) instead of spinning forever.
    #[test]
    fn zero_delay_timer_rearm_cannot_hang_a_phase() {
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: u64::MAX,
            delay_ns: 0,
        }]);
        rt.run_to_quiescence(1_000);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 1_000, "guard must not fire before the limit");
        assert!(fired < 100_000, "guard must stop the zero-delay ticker");
    }

    #[test]
    fn clock_is_monotonic() {
        let rt = ThreadedRuntime::<u64, TestActor>::new(vec![TestActor::Recorder {
            received: Vec::new(),
        }]);
        let a = rt.now();
        let b = rt.now();
        assert!(b >= a);
    }
}
