//! The real multi-threaded backend: one OS thread per node, bounded mpsc
//! mailboxes, a monotonic wall clock.
//!
//! Where the simulator *models* a cluster (virtual latencies, CPU
//! charges), this backend *is* one — each [`Actor`] runs on its own
//! thread and the reported throughput is what the host machine actually
//! sustains. The same engines, messages and workloads run unmodified;
//! only the [`Mailbox`] behind [`Ctx`] differs:
//!
//! * **Clock** — monotonic wall-clock nanoseconds since runtime creation
//!   (the `SimTime` values actors see are real elapsed time).
//! * **Send** — bounded `sync_channel` per node. Sends never block: when
//!   a destination mailbox is full the message parks in a per-destination
//!   deferred queue and is flushed before the sender next sleeps, so
//!   cyclic protocols (engine A mid-handler sending to B while B sends to
//!   A) cannot deadlock. Per-link FIFO is preserved — mpsc guarantees
//!   per-sender order and the deferred queue refuses to let later
//!   messages overtake parked ones.
//! * **Timers** — a per-thread min-heap; the worker sleeps with
//!   `recv_timeout` until the next due timer (or an incoming message).
//! * **`use_cpu`** — a no-op: real CPU is consumed by actually executing
//!   the handler.
//!
//! ## Run phases and quiescence
//!
//! Worker threads only exist inside [`ThreadedRuntime::run_until`] /
//! [`ThreadedRuntime::run_to_quiescence`] (scoped threads). Between
//! phases the main thread has exclusive access to the actors —
//! [`Runtime::actors_mut`] and [`Runtime::with_actor_ctx`] work exactly
//! as on the simulator, which is what lets the cluster layer reset
//! metrics at the warm-up boundary, drive the adaptive epoch scheduler,
//! and check invariants after a drain. In-flight messages, deferred
//! sends and armed timers survive a pause and resume with the next phase.
//!
//! Quiescence is detected with a global outstanding-work counter:
//! incremented for every queued message and armed timer, decremented
//! only *after* the receiving handler returns (so work spawned by a
//! handler keeps the count positive). Zero therefore means no queued
//! message, no armed timer, and no handler mid-flight anywhere — workers
//! observe it and exit.

use crate::runtime::{Actor, Backend, Clock, Ctx, Mailbox, NetStats, Runtime, Verb};
use chiller_common::ids::NodeId;
use chiller_common::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::Instant;

/// Default bound of each node's mailbox (messages, not bytes).
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

/// Longest a worker sleeps before re-checking the deadline and the
/// quiescence counter (pause responsiveness, not correctness).
const MAX_PARK_NS: u64 = 200_000;

/// A message in flight between two nodes.
struct Envelope<M> {
    src: NodeId,
    verb: Verb,
    msg: M,
}

/// Coordination state shared by all worker threads during a phase.
struct Shared {
    /// Origin of the monotonic wall clock.
    start: Instant,
    /// Queued messages + armed timers + handlers mid-flight, cluster-wide.
    outstanding: AtomicI64,
    /// Wall-clock deadline (ns since `start`) of the current phase.
    deadline_ns: AtomicU64,
    /// Runaway guard for `run_to_quiescence`: stop once
    /// `events_processed` passes this.
    event_limit: AtomicU64,
    /// Total events processed across all threads (guard bookkeeping).
    events: AtomicU64,
}

impl Shared {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Per-node state that persists across run phases; mutably borrowed by
/// that node's worker thread while a phase runs.
struct NodeState<M> {
    node: NodeId,
    rx: Receiver<Envelope<M>>,
    /// Senders to every node's mailbox (index = destination node).
    txs: Vec<SyncSender<Envelope<M>>>,
    /// Armed timers: min-heap of (due_ns, seq, token); seq keeps FIFO
    /// order among timers due at the same instant.
    timers: BinaryHeap<Reverse<(u64, u64, u64)>>,
    timer_seq: u64,
    /// Sends parked because the destination mailbox was full, per
    /// destination. Later sends to the same destination queue behind the
    /// parked ones to preserve per-link FIFO.
    deferred: BTreeMap<NodeId, VecDeque<Envelope<M>>>,
    stats: NetStats,
}

impl<M> NodeState<M> {
    /// Queue `env` for `dst`, preserving per-link FIFO and never blocking.
    fn enqueue(&mut self, dst: NodeId, env: Envelope<M>) {
        let parked = self.deferred.entry(dst).or_default();
        if parked.is_empty() {
            // Receivers live as long as the runtime; a disconnect can only
            // mean teardown, where dropping the message is harmless.
            if let Err(TrySendError::Full(env)) = self.txs[dst.idx()].try_send(env) {
                parked.push_back(env);
            }
        } else {
            parked.push_back(env);
        }
    }

    /// Retry parked sends (in node order per destination, FIFO within).
    fn flush_deferred(&mut self) {
        for (dst, parked) in self.deferred.iter_mut() {
            while let Some(env) = parked.pop_front() {
                match self.txs[dst.idx()].try_send(env) {
                    Ok(()) => {}
                    Err(TrySendError::Full(env)) => {
                        parked.push_front(env);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        }
        self.deferred.retain(|_, q| !q.is_empty());
    }

    fn next_timer_due(&self) -> Option<u64> {
        self.timers.peek().map(|Reverse((due, _, _))| *due)
    }
}

/// The threaded backend's [`Mailbox`]. Also used by the main thread for
/// control-plane injection between phases.
struct ThreadMailbox<'a, M> {
    st: &'a mut NodeState<M>,
    shared: &'a Shared,
}

impl<M> Mailbox<M> for ThreadMailbox<'_, M> {
    #[inline]
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }

    #[inline]
    fn node(&self) -> NodeId {
        self.st.node
    }

    fn send(&mut self, dst: NodeId, verb: Verb, msg: M) {
        let src = self.st.node;
        if src == dst {
            self.st.stats.local_msgs += 1;
        } else {
            match verb {
                Verb::OneSided => self.st.stats.one_sided_msgs += 1,
                Verb::Rpc => self.st.stats.rpc_msgs += 1,
            }
        }
        self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
        self.st.enqueue(dst, Envelope { src, verb, msg });
    }

    fn set_timer(&mut self, d: Duration, token: u64) {
        self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
        self.st.timer_seq += 1;
        let due = self.shared.now_ns().saturating_add(d.as_nanos());
        self.st
            .timers
            .push(Reverse((due, self.st.timer_seq, token)));
    }

    fn set_timer_when_free(&mut self, d: Duration, token: u64) {
        // No busy horizon on real threads: the engine is free whenever it
        // is not executing.
        self.set_timer(d, token);
    }

    fn use_cpu(&mut self, _d: Duration) {
        // Real CPU is consumed by actually executing the handler.
    }
}

/// One OS thread per actor, scoped to each run phase. See the module docs
/// for the execution model.
pub struct ThreadedRuntime<M, A> {
    actors: Vec<A>,
    states: Vec<NodeState<M>>,
    shared: Shared,
    started: bool,
}

impl<M: Send, A: Actor<M> + Send> ThreadedRuntime<M, A> {
    /// Build a threaded runtime over the given actors; actor `i` runs on
    /// `NodeId(i)` with a mailbox bounded at [`DEFAULT_MAILBOX_CAPACITY`].
    pub fn new(actors: Vec<A>) -> Self {
        Self::with_mailbox_capacity(actors, DEFAULT_MAILBOX_CAPACITY)
    }

    /// Build with an explicit per-node mailbox bound.
    pub fn with_mailbox_capacity(actors: Vec<A>, capacity: usize) -> Self {
        assert!(capacity >= 1, "mailboxes must hold at least one message");
        let n = actors.len();
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = sync_channel(capacity);
            txs.push(tx);
            rxs.push(rx);
        }
        let states = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| NodeState {
                node: NodeId(i as u32),
                rx,
                txs: txs.clone(),
                timers: BinaryHeap::new(),
                timer_seq: 0,
                deferred: BTreeMap::new(),
                stats: NetStats::default(),
            })
            .collect();
        ThreadedRuntime {
            actors,
            states,
            shared: Shared {
                start: Instant::now(),
                outstanding: AtomicI64::new(0),
                deadline_ns: AtomicU64::new(0),
                event_limit: AtomicU64::new(u64::MAX),
                events: AtomicU64::new(0),
            },
            started: false,
        }
    }

    /// Run one phase: spawn a scoped worker per node, join when every
    /// worker has hit the deadline, observed quiescence, or tripped the
    /// event limit. Returns events processed during the phase.
    fn run_phase(&mut self, deadline_ns: u64, max_events: u64) -> u64 {
        let first = !self.started;
        if first {
            self.started = true;
            // Startup hold: no worker may observe "quiescent" before every
            // actor's on_start has armed its initial work.
            self.shared
                .outstanding
                .fetch_add(self.actors.len() as i64, Ordering::SeqCst);
        }
        self.shared.deadline_ns.store(deadline_ns, Ordering::SeqCst);
        let before = self.shared.events.load(Ordering::SeqCst);
        self.shared
            .event_limit
            .store(before.saturating_add(max_events), Ordering::SeqCst);
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for (actor, st) in self.actors.iter_mut().zip(self.states.iter_mut()) {
                scope.spawn(move || worker(actor, st, shared, first));
            }
        });
        self.shared.events.load(Ordering::SeqCst) - before
    }
}

/// Handle one envelope: run the actor handler, then retire the message
/// from the outstanding count (order matters — work the handler spawns
/// must be registered before this message retires).
fn handle_message<M, A: Actor<M>>(
    actor: &mut A,
    st: &mut NodeState<M>,
    shared: &Shared,
    env: Envelope<M>,
) {
    st.stats.events_processed += 1;
    shared.events.fetch_add(1, Ordering::Relaxed);
    let mut mb = ThreadMailbox { st, shared };
    let mut ctx = Ctx::from_mailbox(&mut mb);
    actor.on_message(&mut ctx, env.src, env.verb, env.msg);
    shared.outstanding.fetch_sub(1, Ordering::SeqCst);
}

/// The per-node worker loop.
fn worker<M, A: Actor<M>>(actor: &mut A, st: &mut NodeState<M>, shared: &Shared, first: bool) {
    if first {
        let mut mb = ThreadMailbox { st, shared };
        let mut ctx = Ctx::from_mailbox(&mut mb);
        actor.on_start(&mut ctx);
        // Release the startup hold taken by `run_phase`.
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
    loop {
        st.flush_deferred();
        let deadline = shared.deadline_ns.load(Ordering::SeqCst);
        if shared.now_ns() >= deadline {
            return; // Pause: state survives for the next phase.
        }
        if shared.events.load(Ordering::Relaxed) >= shared.event_limit.load(Ordering::Relaxed) {
            return; // Runaway guard tripped.
        }

        // Fire every due timer, then re-flush before sleeping. The
        // deadline and event limit are re-checked per fire: a handler that
        // re-arms a zero-delay timer is immediately due again, and without
        // the checks this inner loop would never yield to the outer ones —
        // the phase could neither pause nor trip the runaway guard.
        let mut fired = false;
        while let Some(due) = st.next_timer_due() {
            if due > shared.now_ns() {
                break;
            }
            if shared.now_ns() >= shared.deadline_ns.load(Ordering::SeqCst)
                || shared.events.load(Ordering::Relaxed)
                    >= shared.event_limit.load(Ordering::Relaxed)
            {
                break;
            }
            let Some(Reverse((_, _, token))) = st.timers.pop() else {
                break;
            };
            st.stats.timer_fires += 1;
            st.stats.events_processed += 1;
            shared.events.fetch_add(1, Ordering::Relaxed);
            let mut mb = ThreadMailbox { st, shared };
            let mut ctx = Ctx::from_mailbox(&mut mb);
            actor.on_timer(&mut ctx, token);
            shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            fired = true;
        }
        if fired {
            continue;
        }

        // Drain the mailbox without sleeping while messages are ready.
        match st.rx.try_recv() {
            Ok(env) => {
                handle_message(actor, st, shared, env);
                continue;
            }
            Err(std::sync::mpsc::TryRecvError::Empty) => {}
            Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
        }

        // Nothing ready here; if nothing is outstanding anywhere, the
        // cluster is quiescent.
        if shared.outstanding.load(Ordering::SeqCst) == 0 {
            return;
        }

        // Sleep until the next local timer, the phase deadline, or a
        // park-tick (whichever is first); a message arrival wakes us.
        let now = shared.now_ns();
        let wake = st
            .next_timer_due()
            .unwrap_or(u64::MAX)
            .min(deadline)
            .min(now.saturating_add(MAX_PARK_NS));
        let wait = wake.saturating_sub(now).max(1);
        match st.rx.recv_timeout(std::time::Duration::from_nanos(wait)) {
            Ok(env) => handle_message(actor, st, shared, env),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

impl<M: Send, A: Actor<M> + Send> Clock for ThreadedRuntime<M, A> {
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }
}

impl<M: Send, A: Actor<M> + Send> Runtime<M, A> for ThreadedRuntime<M, A> {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn stats(&self) -> NetStats {
        let mut merged = NetStats::default();
        for st in &self.states {
            merged.merge(&st.stats);
        }
        merged
    }

    fn num_nodes(&self) -> usize {
        self.actors.len()
    }

    fn actors(&self) -> &[A] {
        &self.actors
    }

    fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        self.run_phase(until.as_nanos(), u64::MAX)
    }

    fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.run_phase(u64::MAX, max_events)
    }

    fn with_actor_ctx(&mut self, node: NodeId, f: &mut dyn FnMut(&mut A, &mut Ctx<'_, M>)) {
        let st = &mut self.states[node.idx()];
        let mut mb = ThreadMailbox {
            st,
            shared: &self.shared,
        };
        let mut ctx = Ctx::from_mailbox(&mut mb);
        f(&mut self.actors[node.idx()], &mut ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One actor type covering every test role, so a single runtime can
    /// host heterogeneous behaviors.
    enum TestActor {
        /// Sends `count` messages to node 1 at start, counts replies.
        Pinger { count: u64, replies: u64 },
        /// Replies `msg + 1000` to every message below 1000.
        Echo { received: Vec<(NodeId, u64)> },
        /// Records payloads in arrival order.
        Recorder { received: Vec<u64> },
        /// Re-arms a 50us timer until it has fired `limit` times.
        Ticker {
            fired: u64,
            limit: u64,
            delay_ns: u64,
        },
    }

    impl Actor<u64> for TestActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            match self {
                TestActor::Pinger { count, .. } => {
                    for i in 0..*count {
                        ctx.send(NodeId(1), Verb::OneSided, i);
                    }
                }
                TestActor::Ticker { delay_ns, .. } => {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), 1)
                }
                _ => {}
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, verb: Verb, msg: u64) {
            match self {
                TestActor::Pinger { replies, .. } => *replies += 1,
                TestActor::Echo { received } => {
                    received.push((src, msg));
                    if msg < 1000 {
                        ctx.send(src, verb, msg + 1000);
                    }
                }
                TestActor::Recorder { received } => received.push(msg),
                TestActor::Ticker { .. } => {}
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            if let TestActor::Ticker {
                fired,
                limit,
                delay_ns,
            } = self
            {
                *fired += 1;
                if fired < limit {
                    ctx.set_timer(Duration::from_nanos(*delay_ns), token);
                }
            }
        }
    }

    fn replies(a: &TestActor) -> u64 {
        match a {
            TestActor::Pinger { replies, .. } => *replies,
            _ => 0,
        }
    }

    #[test]
    fn ping_pong_reaches_quiescence() {
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Pinger {
                count: 500,
                replies: 0,
            },
            TestActor::Echo {
                received: Vec::new(),
            },
        ]);
        rt.run_to_quiescence(u64::MAX);
        assert_eq!(replies(&rt.actors()[0]), 500);
        let stats = rt.stats();
        assert_eq!(stats.one_sided_msgs, 1000);
        assert_eq!(stats.events_processed, 1000);
    }

    /// Per-link FIFO even when the bounded mailbox overflows into the
    /// deferred queue: node 1 must observe node 0's payloads in order.
    #[test]
    fn per_link_fifo_survives_mailbox_overflow() {
        let n = 500u64;
        let mut rt = ThreadedRuntime::with_mailbox_capacity(
            vec![
                TestActor::Pinger {
                    count: n,
                    replies: 0,
                },
                TestActor::Recorder {
                    received: Vec::new(),
                },
            ],
            4, // tiny mailbox: most sends park in the deferred queue
        );
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Recorder { received } = &rt.actors()[1] else {
            panic!("node 1 is the recorder");
        };
        assert_eq!(received, &(0..n).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_and_pause_resumes() {
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: 20,
            delay_ns: 50_000,
        }]);
        // Phase 1: run a slice of wall time, then pause.
        let start = rt.now();
        rt.run_until(start + Duration::from_micros(300));
        let TestActor::Ticker { fired: mid, .. } = rt.actors()[0] else {
            panic!()
        };
        // Phase 2: any armed timer survives the pause; run to quiescence.
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= mid);
        assert_eq!(fired, 20);
        assert_eq!(rt.stats().timer_fires, 20);
    }

    #[test]
    fn control_plane_injection_between_phases() {
        let mut rt = ThreadedRuntime::new(vec![
            TestActor::Pinger {
                count: 0,
                replies: 0,
            },
            TestActor::Echo {
                received: Vec::new(),
            },
        ]);
        rt.run_to_quiescence(u64::MAX);
        // Inject a send from node 0 while paused.
        rt.with_actor_ctx(NodeId(0), &mut |_a, ctx| {
            assert_eq!(ctx.node(), NodeId(0));
            ctx.send(NodeId(1), Verb::Rpc, 7);
        });
        rt.run_to_quiescence(u64::MAX);
        let TestActor::Echo { received } = &rt.actors()[1] else {
            panic!()
        };
        assert_eq!(received.len(), 1);
        assert_eq!(replies(&rt.actors()[0]), 1);
    }

    #[test]
    fn event_limit_bounds_runaway_loops() {
        // A ticker with no limit would re-arm forever; the event guard
        // must stop the phase.
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: u64::MAX,
            delay_ns: 50_000,
        }]);
        rt.run_to_quiescence(10);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 10, "guard must not fire before the limit");
        assert!(fired < 1000, "guard must stop the runaway ticker");
    }

    /// Regression: a handler that re-arms a zero-delay timer is due again
    /// immediately; the timer-firing loop must still honor the event limit
    /// (and the phase deadline) instead of spinning forever.
    #[test]
    fn zero_delay_timer_rearm_cannot_hang_a_phase() {
        let mut rt = ThreadedRuntime::new(vec![TestActor::Ticker {
            fired: 0,
            limit: u64::MAX,
            delay_ns: 0,
        }]);
        rt.run_to_quiescence(1_000);
        let TestActor::Ticker { fired, .. } = rt.actors()[0] else {
            panic!()
        };
        assert!(fired >= 1_000, "guard must not fire before the limit");
        assert!(fired < 100_000, "guard must stop the zero-delay ticker");
    }

    #[test]
    fn clock_is_monotonic() {
        let rt = ThreadedRuntime::<u64, TestActor>::new(vec![TestActor::Recorder {
            received: Vec::new(),
        }]);
        let a = rt.now();
        let b = rt.now();
        assert!(b >= a);
    }
}
