//! Timer-fidelity measurement on the threaded backend: how late timers
//! actually fire relative to their requested due time (the "slop").
//!
//! The per-thread timer path sleeps in `recv_timeout`, whose wake-up
//! granularity is set by the OS (~50–100µs); the wheel + spin-before-sleep
//! phase is supposed to tighten the final approach. This test records the
//! observed slop distribution of a re-arming ticker and prints it (run
//! with `--nocapture` to read the numbers quoted in DESIGN.md §10), and
//! asserts only a generous sanity bound so CI stays robust on loaded
//! shared runners.

use chiller_common::ids::NodeId;
use chiller_common::time::Duration;
use chiller_simnet::{Actor, Ctx, Runtime, ThreadedRuntime, Verb};

/// Re-arms a `delay_ns` timer `limit` times, recording each fire's slop
/// (observed now minus requested due) in nanoseconds.
struct SlopTicker {
    delay_ns: u64,
    limit: u64,
    due: u64,
    slops: Vec<u64>,
}

impl Actor<u64> for SlopTicker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.due = ctx.now().as_nanos() + self.delay_ns;
        ctx.set_timer(Duration::from_nanos(self.delay_ns), 1);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _src: NodeId, _verb: Verb, _msg: u64) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
        let now = ctx.now().as_nanos();
        self.slops.push(now.saturating_sub(self.due));
        if (self.slops.len() as u64) < self.limit {
            self.due = now + self.delay_ns;
            ctx.set_timer(Duration::from_nanos(self.delay_ns), token);
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[test]
fn timer_slop_distribution() {
    const FIRES: u64 = 400;
    const DELAY_NS: u64 = 50_000; // 50µs — the retry-backoff scale
    let mut rt = ThreadedRuntime::new(vec![SlopTicker {
        delay_ns: DELAY_NS,
        limit: FIRES,
        due: 0,
        slops: Vec::new(),
    }]);
    rt.run_to_quiescence(u64::MAX);
    let mut slops = rt.actors()[0].slops.clone();
    assert_eq!(slops.len() as u64, FIRES);
    slops.sort_unstable();
    let mean = slops.iter().sum::<u64>() as f64 / slops.len() as f64;
    println!(
        "timer slop over {FIRES} fires of a {}us timer: mean {:.1}us  p50 {:.1}us  p99 {:.1}us  max {:.1}us",
        DELAY_NS / 1_000,
        mean / 1_000.0,
        percentile(&slops, 0.50) as f64 / 1_000.0,
        percentile(&slops, 0.99) as f64 / 1_000.0,
        slops[slops.len() - 1] as f64 / 1_000.0,
    );
    // Generous sanity bound only: actual fidelity numbers are recorded in
    // DESIGN.md §10; shared CI runners can see multi-ms scheduling stalls.
    assert!(
        percentile(&slops, 0.50) < 5_000_000,
        "median timer slop above 5ms — timer path is broken"
    );
}
