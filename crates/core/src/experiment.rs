//! Parallel sweep driver: fan independent simulation runs across OS
//! threads.
//!
//! Each sweep point builds its own deterministic cluster, so points are
//! embarrassingly parallel. The simulator itself stays single-threaded,
//! keeping every individual run bit-reproducible.

use std::sync::mpsc;
use std::thread;

/// Run `f(point)` for every point, in parallel, preserving input order in
/// the output. `f` must be deterministic per point.
pub fn sweep<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send + 'static,
    R: Send + 'static,
    F: Fn(P) -> R + Send + Sync + 'static,
{
    let n = points.len();
    let f = std::sync::Arc::new(f);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let max_threads = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);

    // Simple bounded fan-out: chunk the points across up to
    // `max_threads` workers.
    let mut handles = Vec::new();
    let mut queue: Vec<(usize, P)> = points.into_iter().enumerate().collect();
    let chunk = queue.len().div_ceil(max_threads.max(1)).max(1);
    while !queue.is_empty() {
        let batch: Vec<(usize, P)> = queue.drain(..chunk.min(queue.len())).collect();
        let tx = tx.clone();
        let f = f.clone();
        handles.push(thread::spawn(move || {
            for (i, p) in batch {
                let r = f(p);
                // Receiver only disconnects on panic; propagate by ignoring.
                let _ = tx.send((i, r));
            }
        }));
    }
    drop(tx);

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    for h in handles {
        h.join().expect("sweep worker panicked");
    }
    out.into_iter()
        .map(|r| r.expect("every point reported"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let points: Vec<u64> = (0..37).collect();
        let results = sweep(points.clone(), |p| p * 2);
        assert_eq!(results, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_empty() {
        let results: Vec<u64> = sweep(Vec::<u64>::new(), |p| p);
        assert!(results.is_empty());
    }

    #[test]
    fn sweep_single() {
        assert_eq!(sweep(vec![5u32], |p| p + 1), vec![6]);
    }
}
