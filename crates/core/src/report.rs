//! Run reports: the numbers the paper's figures plot.

use chiller_cc::engine::EngineReport;
use chiller_common::metrics::MetricSet;
use chiller_common::time::Duration;
use chiller_obs::RuntimeTelemetry;
use chiller_simnet::{Backend, MailboxKind, NetStats};
use std::fmt::Write as _;

/// Aggregated outcome of a measured window.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which execution backend produced this report (drives how
    /// `elapsed` should be read: virtual vs wall time).
    pub backend: Backend,
    /// Time measured: virtual nanoseconds on the simulated backend,
    /// wall-clock nanoseconds on the threaded backend.
    pub elapsed: Duration,
    /// Host wall-clock time the measured window took. On the threaded
    /// backend this tracks `elapsed`; on the simulator it is the host
    /// time spent computing the virtual window.
    pub wall_elapsed: std::time::Duration,
    /// Whether the engine threads were pinned to CPU cores during this
    /// run (threaded backend with an active `PinPolicy` and a successful
    /// `sched_setaffinity` on every worker). Always false on the
    /// simulator, and false when pinning was requested but unavailable
    /// (non-Linux, restricted cpusets) — so A/B rows labelled from this
    /// field are honest about what actually ran.
    pub pinned: bool,
    /// OS worker threads that drove the run: 0 on the simulator, one per
    /// engine on the threaded backend, the fixed pool size on the async
    /// backend. Distinguishes a 1000-engine run on 1000 threads from the
    /// same run multiplexed onto 4.
    pub workers: usize,
    /// Mailbox implementation the run used (`None` on the simulator,
    /// which routes messages through the event heap).
    pub mailbox: Option<MailboxKind>,
    /// Runtime scheduler telemetry merged across workers/engines (empty
    /// defaults on the simulator — it has no scheduler).
    pub telemetry: RuntimeTelemetry,
    /// Merged metrics across engines.
    pub metrics: MetricSet,
    /// Network counters for the whole run (including warm-up).
    pub net: NetStats,
    /// Per-node breakdowns.
    pub per_node: Vec<EngineReport>,
}

impl RunReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect(
        backend: Backend,
        elapsed: Duration,
        wall_elapsed: std::time::Duration,
        pinned: bool,
        workers: usize,
        mailbox: Option<MailboxKind>,
        telemetry: RuntimeTelemetry,
        net: NetStats,
        per_node: Vec<EngineReport>,
    ) -> RunReport {
        let mut metrics = MetricSet::new();
        for r in &per_node {
            metrics.merge(&r.metrics);
        }
        RunReport {
            backend,
            elapsed,
            wall_elapsed,
            pinned,
            workers,
            mailbox,
            telemetry,
            metrics,
            net,
            per_node,
        }
    }

    pub fn total_commits(&self) -> u64 {
        self.metrics.total_commits()
    }

    pub fn total_aborts(&self) -> u64 {
        self.metrics.total_aborts()
    }

    /// Committed transactions per second of measured time (virtual on the
    /// simulator, wall on the threaded backend).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_nanos() as f64 / 1e9;
        if secs == 0.0 {
            0.0
        } else {
            self.total_commits() as f64 / secs
        }
    }

    /// Committed transactions per second of *host wall-clock* time — what
    /// the machine actually sustained. On the threaded backend this is the
    /// headline number; on the simulator it only measures simulation speed.
    pub fn wall_throughput(&self) -> f64 {
        let secs = self.wall_elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_commits() as f64 / secs
        }
    }

    /// The paper's abort-rate metric: aborts / (aborts + commits).
    pub fn abort_rate(&self) -> f64 {
        self.metrics.overall_abort_rate()
    }

    /// Abort rate of one transaction type (Figure 9c).
    pub fn abort_rate_of(&self, name: &str) -> f64 {
        self.metrics
            .per_type
            .get(name)
            .map(|s| s.abort_rate())
            .unwrap_or(0.0)
    }

    /// Fraction of committed transactions spanning >1 partition (Figure 8).
    pub fn distributed_ratio(&self) -> f64 {
        self.metrics.overall_distributed_ratio()
    }

    /// Live record migrations completed during the window (adaptive runs).
    pub fn migrations_completed(&self) -> u64 {
        self.metrics.migrations_completed
    }

    /// Migration attempts that hit a NO_WAIT conflict and backed off.
    pub fn migration_retries(&self) -> u64 {
        self.metrics.migration_retries
    }

    /// Migrations abandoned (stale plan, retry budget, or drain).
    pub fn migrations_abandoned(&self) -> u64 {
        self.metrics.migrations_abandoned
    }

    /// Mean committed-transaction latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.metrics.latency.mean() / 1_000.0
    }

    pub fn p99_latency_us(&self) -> f64 {
        self.metrics.latency.p99() as f64 / 1_000.0
    }

    /// Observability events lost to full rings: `(trace, history)` drops.
    /// Nonzero history drops make every checker verdict over this run
    /// `incomplete`.
    pub fn events_dropped(&self) -> (u64, u64) {
        (
            self.telemetry.trace_events_dropped,
            self.telemetry.history_events_dropped,
        )
    }

    /// One-line human summary, self-describing about what ran: backend,
    /// mailbox kind, and worker count lead the line so two summaries are
    /// never compared across silently different configurations. When
    /// observability rings overflowed, the line ends with a DEGRADED
    /// marker — an `incomplete` checker verdict must be visible here, not
    /// only in the raw report.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "[{} backend, {} mailbox, {} workers] {:.0} txn/s, abort rate {:.3}, distributed {:.2}, mean latency {:.1}us (p99 {:.1}us), commits {}",
            self.backend.label(),
            self.mailbox.map(MailboxKind::label).unwrap_or("no"),
            self.workers,
            self.throughput(),
            self.abort_rate(),
            self.distributed_ratio(),
            self.mean_latency_us(),
            self.p99_latency_us(),
            self.total_commits(),
        );
        let (trace_drops, history_drops) = self.events_dropped();
        if trace_drops > 0 || history_drops > 0 {
            let _ = write!(
                s,
                ", DEGRADED: {trace_drops} trace + {history_drops} history events dropped \
                 (verdicts incomplete; raise CHILLER_TRACE_BUF / CHILLER_CHECK_BUF)"
            );
        }
        s
    }

    /// Prometheus-style plain-text dump of the run's counters: commit and
    /// abort totals, aborts broken down by structured reason, the runtime
    /// scheduler telemetry, and timer-wheel slop quantiles. One metric per
    /// line (`# TYPE` comments included), suitable for diffing across runs
    /// or scraping out of CI logs.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# TYPE chiller_run_info gauge\n\
             chiller_run_info{{backend=\"{}\",mailbox=\"{}\",workers=\"{}\",pinned=\"{}\"}} 1",
            self.backend.label(),
            self.mailbox.map(MailboxKind::label).unwrap_or("none"),
            self.workers,
            self.pinned,
        );
        let _ = writeln!(
            out,
            "# TYPE chiller_commits_total counter\nchiller_commits_total {}",
            self.total_commits()
        );
        let _ = writeln!(
            out,
            "# TYPE chiller_aborts_total counter\nchiller_aborts_total {}",
            self.total_aborts()
        );
        let _ = writeln!(out, "# TYPE chiller_aborts_by_reason_total counter");
        for (reason, n) in self.metrics.abort_reasons.iter() {
            let _ = writeln!(
                out,
                "chiller_aborts_by_reason_total{{reason=\"{}\"}} {n}",
                reason.label()
            );
        }
        let _ = writeln!(
            out,
            "# TYPE chiller_latency_us summary\n\
             chiller_latency_us{{quantile=\"0.5\"}} {:.3}\n\
             chiller_latency_us{{quantile=\"0.99\"}} {:.3}\n\
             chiller_latency_us_count {}",
            self.metrics.latency.p50() as f64 / 1_000.0,
            self.p99_latency_us(),
            self.metrics.latency.count(),
        );
        for (name, v) in self.telemetry.counters() {
            let _ = writeln!(
                out,
                "# TYPE chiller_runtime_{name} counter\nchiller_runtime_{name} {v}"
            );
        }
        let slop = &self.telemetry.timer_slop;
        let _ = writeln!(
            out,
            "# TYPE chiller_runtime_timer_slop_ns summary\n\
             chiller_runtime_timer_slop_ns{{quantile=\"0.5\"}} {}\n\
             chiller_runtime_timer_slop_ns{{quantile=\"0.99\"}} {}\n\
             chiller_runtime_timer_slop_ns_count {}",
            slop.p50(),
            slop.p99(),
            slop.count(),
        );
        let _ = writeln!(
            out,
            "# TYPE chiller_runtime_trace_events_dropped counter\n\
             chiller_runtime_trace_events_dropped {}",
            self.telemetry.trace_events_dropped
        );
        let _ = writeln!(
            out,
            "# TYPE chiller_runtime_history_events_dropped counter\n\
             chiller_runtime_history_events_dropped {}",
            self.telemetry.history_events_dropped
        );
        // Single alertable flag: 1 when any observability ring overflowed
        // (trace timeline or checker history incomplete for this run).
        let (trace_drops, history_drops) = self.events_dropped();
        let _ = writeln!(
            out,
            "# TYPE chiller_observability_degraded gauge\n\
             chiller_observability_degraded {}",
            u8::from(trace_drops > 0 || history_drops > 0)
        );
        out
    }
}
