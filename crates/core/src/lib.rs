//! # chiller
//!
//! The public façade of the Chiller reproduction: build a simulated
//! RDMA cluster, load data, register stored procedures, pick a protocol
//! and a partitioning, run a closed-loop workload, and collect the metrics
//! the paper's evaluation reports.
//!
//! ## Quickstart
//!
//! ```
//! use chiller::prelude::*;
//! use chiller_common::value::Value;
//!
//! // 1. A schema with one table.
//! let mut schema = Schema::new();
//! let accounts = schema.add(TableDef::new(TableId(1), "accounts", vec!["id", "balance"]));
//!
//! // 2. A transfer procedure: read + update two accounts.
//! let transfer = ProcedureBuilder::new("transfer")
//!     .update(accounts, 0, "debit", |row, _| {
//!         let mut r = row.clone();
//!         r[1] = Value::F64(r[1].as_f64() - 1.0);
//!         r
//!     })
//!     .update(accounts, 1, "credit", |row, _| {
//!         let mut r = row.clone();
//!         r[1] = Value::F64(r[1].as_f64() + 1.0);
//!         r
//!     })
//!     .build()
//!     .unwrap();
//!
//! // 3. A 4-node cluster running Chiller over hash placement.
//! let mut builder = ClusterBuilder::new(schema, 4);
//! let proc_id = builder.register_proc(transfer);
//! builder
//!     .protocol(Protocol::Chiller)
//!     .load((0..1000u64).map(|k| {
//!         (RecordId::new(accounts, k), vec![Value::I64(k as i64), Value::F64(100.0)])
//!     }))
//!     .source_per_node(move |node| {
//!         Box::new(chiller_cc::input::ScriptedSource::new(vec![TxnInput {
//!             proc: proc_id,
//!             params: vec![Value::I64(node.0 as i64), Value::I64(500 + node.0 as i64)],
//!         }]))
//!     });
//! let mut cluster = builder.build().unwrap();
//! let report = cluster.run(RunSpec::millis(1, 5));
//! assert!(report.total_commits() > 0);
//! ```

pub mod cluster;
pub mod crash;
pub mod experiment;
pub mod report;

pub use cluster::{AdaptiveStats, Cluster, ClusterBuilder, RunSpec};
pub use crash::{CrashPlan, CrashSnapshot, RecoveryReport};
pub use report::RunReport;

/// Convenience re-exports covering the whole public API surface.
pub mod prelude {
    pub use crate::cluster::{AdaptiveStats, Cluster, ClusterBuilder, RunSpec};
    pub use crate::crash::{CrashPlan, CrashSnapshot, RecoveryReport};
    pub use crate::report::RunReport;
    pub use chiller_adaptive::{AdaptiveConfig, Directory};
    pub use chiller_cc::input::{InputSource, ProcRegistry, ScriptedSource, TxnInput};
    pub use chiller_cc::Protocol;
    pub use chiller_checker::{Anomaly, CheckMode, CheckReport};
    pub use chiller_common::config::{EngineConfig, NetworkConfig, ReplicationConfig, SimConfig};
    pub use chiller_common::ids::{NodeId, PartitionId, RecordId, TableId, TxnId};
    pub use chiller_common::time::{Duration, SimTime};
    pub use chiller_common::value::{Row, Value};
    pub use chiller_obs::{History, RuntimeTelemetry, TraceLog, TraceMode};
    pub use chiller_simnet::{Backend, MailboxKind, PinPolicy};
    pub use chiller_sproc::{ProcedureBuilder, RegionSplit};
    pub use chiller_storage::placement::{
        ExplicitPlacement, HashPlacement, LookupTable, Placement, RangePlacement,
    };
    pub use chiller_storage::schema::{KeyPacker, Schema, TableDef};
}
