//! Crash injection and checker-certified recovery (DESIGN.md §15).
//!
//! The crash model is **kill at a flush boundary**: [`crate::Cluster::kill`]
//! pauses the runtime, flushes every engine's redo log, drains the
//! observability rings, and drops the cluster without checkpointing. The
//! next [`crate::ClusterBuilder::build`] against the same durable directory
//! finds the logs and runs the recovery protocol in `recover`. Torn-write
//! realism (a crash mid-`write(2)`) is covered separately at the codec
//! layer: `Wal::open` truncates any partial tail frame, and the proptests
//! in `chiller-storage` cut logs at every byte offset.
//!
//! Recovery is a pure function over the per-node state builders already
//! hold — primary stores (freshly loaded with the workload's initial
//! rows), replica stores, decoded checkpoints, and decoded logs — so it
//! runs before any engine actor exists and needs no runtime:
//!
//! 1. **checkpoint replace** — a node with a checkpoint restores it over
//!    the initial load (the snapshot carries the complete version map);
//! 2. **redo replay** — each node's `Redo` records apply version-exactly
//!    and idempotently (`PartitionStore::apply_redo`), in log order, which
//!    equals apply order because writers held exclusive locks/latches from
//!    read to apply;
//! 3. **in-doubt resolution** — for every transaction, the *last* `Decide`
//!    in its coordinator's log wins. `pending_inner: None` is a final
//!    commit decision; `pending_inner: Some(p)` is provisional and resolves
//!    against partition `p`'s log: the transaction committed iff that log
//!    carries `InnerCommit` — the inner host's unilateral commit IS the
//!    decision for two-region transactions (paper §3.3). Without either,
//!    the attempt aborted and left nothing to undo (writes are buffered at
//!    the coordinator until the decision);
//! 4. **repair** — a committed transaction's `DecideWrite` is applied at
//!    its home partition unless that partition's own log already has a
//!    `Redo` covering the same `(txn, record)` (the participant applied
//!    and logged atomically). Repairs are safe to apply *after* replay:
//!    a participant that never applied the write still held the
//!    transaction's exclusive lock at the crash, so no later committed
//!    writer to that record can exist in its log;
//! 5. **re-home** — records found on a partition the restart placement
//!    does not route to them (live migrations completed before the crash)
//!    move back to their placement home, version chain intact, so routing
//!    is consistent from the first post-restart transaction;
//! 6. **replica re-sync** — every replica store is rebuilt from its
//!    recovered primary, which subsumes replaying replication traffic.
//!
//! The builder then writes a fresh checkpoint per node, truncates the
//! logs, and bumps the epoch file; engines start their transaction
//! sequence at `epoch << 32` so post-restart `TxnId`s can never collide
//! with pre-crash ones (read-only transactions leave no log trace, so
//! scanning for the max used sequence would not suffice).

use chiller_common::ids::{PartitionId, RecordId, TxnId};
use chiller_common::time::Duration;
use chiller_common::value::Row;
use chiller_obs::History;
use chiller_storage::placement::Placement;
use chiller_storage::store::PartitionStore;
use chiller_storage::wal::{RedoOp, WalRecord};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Deterministic mid-run kill points for the crash-injection harness.
///
/// The plan is pure (seed in, offsets out): the same seed produces the
/// same kill schedule on every backend, and the points land in the middle
/// 20%–80% of the run window so the cluster dies under load rather than
/// at the edges.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    pub seed: u64,
}

impl CrashPlan {
    pub fn new(seed: u64) -> Self {
        CrashPlan { seed }
    }

    /// Kill offset for crash `i` within a window of length `window`.
    pub fn kill_point(&self, i: u32, window: Duration) -> Duration {
        let h = splitmix64(self.seed ^ ((u64::from(i) + 1) << 32));
        // Map to [0.2, 0.8) of the window.
        let frac = 0.2 + 0.6 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        Duration::from_nanos((window.as_nanos() as f64 * frac) as u64)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What [`crate::Cluster::kill`] hands back: everything the pre-crash
/// incarnation acked, for certifying the recovered one against.
pub struct CrashSnapshot {
    /// The full drained observation history up to the kill (empty when
    /// checking was off). Checking it with `chiller_checker` certifies
    /// the pre-crash execution; its commit markers are the acked set the
    /// recovered state must contain.
    pub history: History,
    /// Commits acked before the kill, per procedure name.
    pub commits_by_proc: BTreeMap<String, u64>,
    /// Total commits acked before the kill.
    pub total_commits: u64,
}

/// What recovery found and did, per [`crate::ClusterBuilder::build`] on a
/// durable directory with surviving state.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Restart epoch (1 for the first recovery); engines mint `TxnId`s
    /// from `epoch << 32`.
    pub epoch: u64,
    /// Nodes restored from a checkpoint before replay.
    pub checkpoints_restored: usize,
    /// Log records scanned across all nodes.
    pub records_scanned: u64,
    /// Redo writes applied during replay (idempotent skips excluded).
    pub writes_replayed: u64,
    /// Decided transactions with no `Ack` in the log (resolution ran).
    pub in_doubt: u64,
    /// In-doubt transactions resolved as committed.
    pub in_doubt_committed: u64,
    /// In-doubt transactions resolved as aborted (provisional decision,
    /// no `InnerCommit` at the inner host).
    pub in_doubt_aborted: u64,
    /// Writes of committed transactions applied at participants whose own
    /// log never recorded them.
    pub writes_repaired: u64,
    /// Records moved back to their placement home (completed live
    /// migrations whose directory state died with the control plane).
    pub records_rehomed: u64,
    /// Commits recovered without an `Ack`, per procedure name — these
    /// never counted in the pre-crash metrics, so commit-counting
    /// invariants (SmallBank conservation) must accept them as extras.
    pub recovered_unacked: BTreeMap<String, u64>,
}

impl RecoveryReport {
    /// Total commits recovered that the pre-crash run never acked.
    pub fn total_recovered_unacked(&self) -> u64 {
        self.recovered_unacked.values().sum()
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery epoch {}: {} checkpoints, {} records scanned, {} writes replayed, \
             {} in-doubt ({} committed / {} aborted), {} repaired, {} re-homed, {} unacked commits recovered",
            self.epoch,
            self.checkpoints_restored,
            self.records_scanned,
            self.writes_replayed,
            self.in_doubt,
            self.in_doubt_committed,
            self.in_doubt_aborted,
            self.writes_repaired,
            self.records_rehomed,
            self.total_recovered_unacked(),
        )
    }
}

/// Run steps 2–6 of the recovery protocol (checkpoint restore, step 1,
/// happens in the builder before this call because it owns the snapshot
/// buffers). See the module docs for the protocol and its soundness
/// argument.
pub(crate) fn recover(
    primaries: &mut [PartitionStore],
    replicas: &mut [HashMap<PartitionId, PartitionStore>],
    logs: &[Vec<WalRecord>],
    placement: &dyn Placement,
    report: &mut RecoveryReport,
) {
    let nodes = primaries.len();
    // Pass 1: replay redo records in log order and index the decision
    // state (last Decide per txn, Ack set, InnerCommit set, and which
    // `(txn, record)` writes each partition's own log covers).
    let mut redo_writes: Vec<HashSet<(TxnId, RecordId)>> = vec![HashSet::new(); nodes];
    let mut inner_commits: Vec<HashSet<TxnId>> = vec![HashSet::new(); nodes];
    let mut last_decide: HashMap<TxnId, (usize, usize)> = HashMap::new();
    let mut acked: HashSet<TxnId> = HashSet::new();
    for (n, log) in logs.iter().enumerate() {
        for (i, rec) in log.iter().enumerate() {
            report.records_scanned += 1;
            match rec {
                WalRecord::Redo { txn, writes } => {
                    for w in writes {
                        redo_writes[n].insert((*txn, w.record));
                        if primaries[n].apply_redo(w) {
                            report.writes_replayed += 1;
                        }
                    }
                }
                WalRecord::Decide { txn, .. } => {
                    last_decide.insert(*txn, (n, i));
                }
                WalRecord::InnerCommit { txn } => {
                    inner_commits[n].insert(*txn);
                }
                WalRecord::Ack { txn } => {
                    acked.insert(*txn);
                }
            }
        }
    }

    // Pass 2: resolve decisions and repair participants. Deterministic
    // iteration order (BTreeMap over txn id) so recovery itself is
    // reproducible.
    let decides: BTreeMap<TxnId, (usize, usize)> = last_decide.into_iter().collect();
    for (txn, (n, i)) in decides {
        let WalRecord::Decide {
            proc,
            pending_inner,
            writes,
            ..
        } = &logs[n][i]
        else {
            unreachable!("indexed a non-Decide record");
        };
        let was_acked = acked.contains(&txn);
        let committed = match pending_inner {
            None => true,
            Some(p) => inner_commits.get(p.idx()).is_some_and(|s| s.contains(&txn)),
        };
        if !was_acked {
            report.in_doubt += 1;
            if !committed {
                report.in_doubt_aborted += 1;
                continue;
            }
        }
        if !committed {
            // An acked transaction always has a final decision in the log
            // (the Ack is appended after it, same engine); a provisional
            // decision surviving as the last one implies no Ack.
            continue;
        }
        for w in writes {
            let p = w.partition.idx();
            if p >= nodes || redo_writes[p].contains(&(txn, w.record)) {
                continue;
            }
            // The participant never applied this write (no redo logged):
            // apply it now with a natural version bump — its lock was
            // still held at the crash, so no later writer exists here.
            match &w.op {
                RedoOp::Put(row) | RedoOp::Insert(row) => {
                    primaries[p].write(w.record, row.clone());
                }
                RedoOp::Delete => {
                    let _ = primaries[p].delete(w.record);
                }
            }
            report.writes_repaired += 1;
        }
        if !was_acked {
            report.in_doubt_committed += 1;
            *report.recovered_unacked.entry(proc.clone()).or_insert(0) += 1;
        }
    }

    // Pass 3: re-home records that completed a live migration before the
    // crash. The adaptive directory died with the control plane, so the
    // restart routes by the base placement; a record left at its
    // migration destination would be unreachable (and its absence at the
    // placement home would read as a logic fault, not a conflict).
    let mut moves: Vec<(usize, usize, RecordId, Row, u64)> = Vec::new();
    for (n, store) in primaries.iter().enumerate() {
        for (table, ts) in store.tables() {
            for (key, row) in ts.iter() {
                let rid = RecordId::new(*table, *key);
                let home = placement.partition_of(rid).idx();
                if home != n && home < nodes {
                    moves.push((n, home, rid, row.clone(), store.record_version(rid)));
                }
            }
        }
    }
    for (from, home, rid, row, version) in moves {
        let _ = primaries[from].delete(rid);
        primaries[home].write(rid, row);
        // Continue the migrated chain exactly: the carried version is the
        // highest this record ever committed anywhere.
        primaries[home].set_record_version(rid, version);
        report.records_rehomed += 1;
    }

    // Pass 4: replica re-sync from the recovered primaries — byte-for-byte
    // copies, subsuming any replication traffic the crash swallowed.
    let snapshots: Vec<_> = primaries.iter().map(PartitionStore::snapshot).collect();
    for holder in replicas.iter_mut() {
        for (p, store) in holder.iter_mut() {
            store.restore(&snapshots[p.idx()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_points_are_deterministic_and_mid_window() {
        let plan = CrashPlan::new(42);
        let w = Duration::from_millis(100);
        let a = plan.kill_point(0, w);
        let b = plan.kill_point(0, w);
        assert_eq!(a, b);
        let lo = Duration::from_millis(20);
        let hi = Duration::from_millis(80);
        for i in 0..16 {
            let k = plan.kill_point(i, w);
            assert!(k >= lo && k < hi, "kill point {k:?} outside [20ms, 80ms)");
        }
        // Different seeds give different schedules.
        assert_ne!(
            CrashPlan::new(1).kill_point(0, w),
            CrashPlan::new(2).kill_point(0, w)
        );
    }
}
