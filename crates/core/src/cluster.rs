//! Cluster construction and execution.

use chiller_cc::engine::{EngineActor, EngineParams};
use chiller_cc::input::{InputSource, ProcRegistry};
use chiller_cc::msg::Msg;
use chiller_cc::Protocol;
use chiller_common::config::SimConfig;
use chiller_common::error::{ChillerError, Result};
use chiller_common::ids::{NodeId, PartitionId, RecordId};
use chiller_common::time::{Duration, SimTime};
use chiller_common::value::Row;
use chiller_simnet::Simulation;
use chiller_sproc::Procedure;
use chiller_storage::placement::{HashPlacement, Placement};
use chiller_storage::schema::Schema;
use chiller_storage::store::PartitionStore;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::report::RunReport;

/// How long to run a workload: a warm-up window whose metrics are
/// discarded, then a measured window.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    pub warmup: Duration,
    pub measure: Duration,
}

impl RunSpec {
    pub fn new(warmup: Duration, measure: Duration) -> Self {
        RunSpec { warmup, measure }
    }

    /// Convenience: warm-up and measurement in milliseconds of virtual time.
    pub fn millis(warmup_ms: u64, measure_ms: u64) -> Self {
        RunSpec {
            warmup: Duration::from_millis(warmup_ms),
            measure: Duration::from_millis(measure_ms),
        }
    }
}

/// Per-node factory producing each engine's transaction input stream.
pub type SourceFactory = Box<dyn Fn(NodeId) -> Box<dyn InputSource>>;

/// Builder for a simulated cluster: one node per partition, each running
/// one execution engine (the paper's one-engine-per-core deployment).
pub struct ClusterBuilder {
    schema: Schema,
    nodes: usize,
    protocol: Protocol,
    config: SimConfig,
    registry: ProcRegistry,
    placement: Option<Arc<dyn Placement + Send + Sync>>,
    hot: HashSet<RecordId>,
    records: Vec<(RecordId, Row)>,
    source_factory: Option<SourceFactory>,
}

impl ClusterBuilder {
    pub fn new(schema: Schema, nodes: usize) -> Self {
        assert!(nodes >= 1);
        ClusterBuilder {
            schema,
            nodes,
            protocol: Protocol::Chiller,
            config: SimConfig::default(),
            registry: ProcRegistry::new(),
            placement: None,
            hot: HashSet::new(),
            records: Vec::new(),
            source_factory: None,
        }
    }

    pub fn protocol(&mut self, p: Protocol) -> &mut Self {
        self.protocol = p;
        self
    }

    pub fn config(&mut self, c: SimConfig) -> &mut Self {
        self.config = c;
        self
    }

    /// Register a stored procedure; returns the id used in [`chiller_cc::input::TxnInput`].
    pub fn register_proc(&mut self, p: Procedure) -> usize {
        self.registry.register(p)
    }

    /// Record placement (defaults to hash over all partitions).
    pub fn placement(&mut self, p: Arc<dyn Placement + Send + Sync>) -> &mut Self {
        self.placement = Some(p);
        self
    }

    /// Mark records as hot (the run-time decision consults this set; it is
    /// normally derived from the contention-likelihood threshold, §4.4).
    pub fn hot_records(&mut self, hot: impl IntoIterator<Item = RecordId>) -> &mut Self {
        self.hot.extend(hot);
        self
    }

    /// Stage initial records (distributed by the placement at build time).
    pub fn load(&mut self, records: impl IntoIterator<Item = (RecordId, Row)>) -> &mut Self {
        self.records.extend(records);
        self
    }

    /// Provide each node's transaction input stream.
    pub fn source_per_node(
        &mut self,
        f: impl Fn(NodeId) -> Box<dyn InputSource> + 'static,
    ) -> &mut Self {
        self.source_factory = Some(Box::new(f));
        self
    }

    pub fn build(self) -> Result<Cluster> {
        let source_factory = self
            .source_factory
            .ok_or_else(|| ChillerError::Config("no input source configured".into()))?;
        if self.registry.is_empty() {
            return Err(ChillerError::Config(
                "no stored procedures registered".into(),
            ));
        }
        let placement: Arc<dyn Placement + Send + Sync> = self
            .placement
            .unwrap_or_else(|| Arc::new(HashPlacement::new(self.nodes as u32)));
        let registry = Arc::new(self.registry);
        let hot = Arc::new(self.hot);

        // Primary stores.
        let mut primaries: Vec<PartitionStore> = (0..self.nodes)
            .map(|p| PartitionStore::new(PartitionId(p as u32), self.schema.clone()))
            .collect();
        // Replica stores: node n holds replicas of partitions (n - i) mod N.
        let replica_count = self
            .config
            .replication
            .replicas()
            .min(self.nodes.saturating_sub(1));
        let mut replicas: Vec<HashMap<PartitionId, PartitionStore>> = (0..self.nodes)
            .map(|n| {
                (1..=replica_count)
                    .map(|i| {
                        let p = PartitionId(((n + self.nodes - i) % self.nodes) as u32);
                        (p, PartitionStore::new(p, self.schema.clone()))
                    })
                    .collect()
            })
            .collect();

        for (rid, row) in self.records {
            let p = placement.partition_of(rid);
            if p.idx() >= self.nodes {
                return Err(ChillerError::Config(format!(
                    "placement sent {rid} to partition {p} but the cluster has {} nodes",
                    self.nodes
                )));
            }
            primaries[p.idx()].load(rid, row.clone());
            for i in 1..=replica_count {
                let replica_node = (p.idx() + i) % self.nodes;
                replicas[replica_node]
                    .get_mut(&p)
                    .expect("replica store allocated")
                    .load(rid, row.clone());
            }
        }

        let mut actors = Vec::with_capacity(self.nodes);
        for (n, (store, reps)) in primaries.into_iter().zip(replicas).enumerate() {
            let node = NodeId(n as u32);
            actors.push(EngineActor::new(EngineParams {
                node,
                num_nodes: self.nodes,
                protocol: self.protocol,
                config: self.config.clone(),
                registry: registry.clone(),
                placement: placement.clone(),
                hot: hot.clone(),
                store,
                replicas: reps,
                source: source_factory(node),
            }));
        }
        Ok(Cluster {
            sim: Simulation::new(actors, self.config.network.clone()),
        })
    }
}

/// A built cluster ready to run.
pub struct Cluster {
    sim: Simulation<Msg, EngineActor>,
}

impl Cluster {
    /// Run warm-up (metrics discarded) then the measured window; report.
    pub fn run(&mut self, spec: RunSpec) -> RunReport {
        let start = self.sim.now();
        self.sim.run_until(start + spec.warmup);
        for engine in self.sim.actors_mut() {
            engine.reset_metrics();
        }
        let measure_start = self.sim.now();
        self.sim.run_until(measure_start + spec.measure);
        let elapsed = self.sim.now() - measure_start;
        RunReport::collect(
            elapsed,
            self.sim.stats(),
            self.sim.actors().iter().map(EngineActor::report).collect(),
        )
    }

    /// Continue running without resetting metrics (incremental windows).
    pub fn run_more(&mut self, d: Duration) -> RunReport {
        let start = self.sim.now();
        self.sim.run_until(start + d);
        let elapsed = self.sim.now() - start;
        RunReport::collect(
            elapsed,
            self.sim.stats(),
            self.sim.actors().iter().map(EngineActor::report).collect(),
        )
    }

    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Engine access for invariant checks in tests.
    pub fn engines(&self) -> &[EngineActor] {
        self.sim.actors()
    }

    pub fn num_nodes(&self) -> usize {
        self.sim.num_nodes()
    }

    /// Stop all engines from pulling new inputs and run the simulation to
    /// quiescence, so every in-flight transaction completes (or finally
    /// aborts) and all locks are released. Used before invariant checks.
    pub fn quiesce(&mut self) {
        for engine in self.sim.actors_mut() {
            engine.stop_accepting();
        }
        self.sim.run_to_quiescence(u64::MAX);
    }
}
