//! Cluster construction and execution, including the epoch scheduler that
//! drives online adaptation (monitor drain → replan → migration injection).

use chiller_adaptive::{AdaptiveConfig, AdaptivePlanner, Directory, MigrationPlan};
use chiller_cc::engine::{EngineActor, EngineParams, HotSet, StagedRows};
use chiller_cc::input::{InputSource, ProcRegistry};
use chiller_cc::msg::Msg;
use chiller_cc::Protocol;
use chiller_checker::{CheckMode, CheckReport};
use chiller_common::config::SimConfig;
use chiller_common::error::{ChillerError, Result};
use chiller_common::ids::{NodeId, PartitionId, RecordId};
use chiller_common::time::{Duration, SimTime};
use chiller_common::value::Row;
use chiller_obs::{History, HistoryRecorder, HistorySink, TraceLog, TraceMode, TraceSink, Tracer};
use chiller_simnet::{
    AsyncConfig, AsyncRuntime, Backend, Ctx, MailboxKind, PinPolicy, Runtime, Simulation,
    ThreadedConfig, ThreadedRuntime, DEFAULT_MAILBOX_CAPACITY,
};
use chiller_sproc::Procedure;
use chiller_storage::placement::{HashPlacement, Placement};
use chiller_storage::schema::Schema;
use chiller_storage::store::PartitionStore;
use chiller_storage::wal::{read_checkpoint, StoreSnapshot, Wal, WalRecord, DEFAULT_FSYNC_BATCH};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crash::{self, CrashSnapshot, RecoveryReport};
use crate::report::RunReport;

/// How long to run a workload: a warm-up window whose metrics are
/// discarded, then a measured window. Durations are virtual nanoseconds
/// on the simulated backend and wall-clock nanoseconds on the threaded
/// backend.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    pub warmup: Duration,
    pub measure: Duration,
    /// Override of the adaptation epoch length for this run (defaults to
    /// the cluster's `AdaptiveConfig::epoch`; ignored without adaptation).
    pub epoch: Option<Duration>,
}

impl RunSpec {
    /// A run of `warmup` (metrics discarded) followed by `measure`.
    pub fn new(warmup: Duration, measure: Duration) -> Self {
        RunSpec {
            warmup,
            measure,
            epoch: None,
        }
    }

    /// Convenience: warm-up and measurement in milliseconds of virtual time.
    pub fn millis(warmup_ms: u64, measure_ms: u64) -> Self {
        RunSpec::new(
            Duration::from_millis(warmup_ms),
            Duration::from_millis(measure_ms),
        )
    }

    /// Override the adaptation epoch length for this run.
    pub fn with_epoch(mut self, epoch: Duration) -> Self {
        self.epoch = Some(epoch);
        self
    }
}

/// Per-node factory producing each engine's transaction input stream.
pub type SourceFactory = Box<dyn Fn(NodeId) -> Box<dyn InputSource>>;

/// Builder for a simulated cluster: one node per partition, each running
/// one execution engine (the paper's one-engine-per-core deployment).
pub struct ClusterBuilder {
    schema: Schema,
    nodes: usize,
    protocol: Protocol,
    config: SimConfig,
    registry: ProcRegistry,
    placement: Option<Arc<dyn Placement + Send + Sync>>,
    hot: HashSet<RecordId>,
    records: Vec<(RecordId, Row)>,
    source_factory: Option<SourceFactory>,
    adaptive: Option<AdaptiveConfig>,
    backend: Backend,
    mailbox: Option<MailboxKind>,
    pin: Option<PinPolicy>,
    workers: Option<usize>,
    trace: Option<TraceMode>,
    check: Option<CheckMode>,
    durable: Option<PathBuf>,
    fsync_batch: Option<u64>,
}

impl ClusterBuilder {
    /// Start a builder for a cluster of `nodes` partitions sharing
    /// `schema` — one node per partition, each running one execution
    /// engine (the paper's one-engine-per-core deployment). Defaults:
    /// Chiller protocol, default `SimConfig`, hash placement, simulated
    /// backend, no adaptation.
    pub fn new(schema: Schema, nodes: usize) -> Self {
        assert!(nodes >= 1);
        ClusterBuilder {
            schema,
            nodes,
            protocol: Protocol::Chiller,
            config: SimConfig::default(),
            registry: ProcRegistry::new(),
            placement: None,
            hot: HashSet::new(),
            records: Vec::new(),
            source_factory: None,
            adaptive: None,
            backend: Backend::Simulated,
            mailbox: None,
            pin: None,
            workers: None,
            trace: None,
            check: None,
            durable: None,
            fsync_batch: None,
        }
    }

    /// Make the cluster durable: every engine appends committed effects to
    /// a per-node redo log under `dir` (`node-<n>.wal`), checkpoints land
    /// beside them (`node-<n>.ckpt`), and a later `build()` against the
    /// same directory recovers — checkpoint restore, version-exact redo
    /// replay, in-doubt resolution, replica re-sync (DESIGN.md §15).
    /// Defaults to the `CHILLER_WAL` environment knob (off when unset);
    /// the builder override wins over the environment.
    pub fn durable(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.durable = Some(dir.into());
        self
    }

    /// Group-commit batch: how many commit marks (`Decide`/`InnerCommit`
    /// records) the redo log buffers before forcing an fsync. 1 fsyncs
    /// every commit durably before the next; larger values amortize the
    /// sync across a batch (the batch boundary and every control-plane
    /// pause also flush). Defaults to the `CHILLER_FSYNC_BATCH`
    /// environment knob, falling back to
    /// [`chiller_storage::wal::DEFAULT_FSYNC_BATCH`]; the builder
    /// override wins. Ignored without durability.
    pub fn fsync_batch(&mut self, n: u64) -> &mut Self {
        assert!(n > 0, "fsync batch must be positive");
        self.fsync_batch = Some(n);
        self
    }

    /// Select the serializability-checking mode (DESIGN.md §14):
    /// [`CheckMode::Off`] (the default), bounded sliding windows, or the
    /// full history. When enabled, every engine records the versioned
    /// reads and installed writes of its transactions through a lock-free
    /// ring (never stalling execution); [`Cluster::check_history`] drains
    /// and checks them. Defaults to the `CHILLER_CHECK` environment knob
    /// (off when unset); the builder override wins over the environment.
    pub fn check(&mut self, mode: CheckMode) -> &mut Self {
        self.check = Some(mode);
        self
    }

    /// Select the transaction-lifecycle trace mode (DESIGN.md §13):
    /// [`TraceMode::Off`] (the default), sampled lifecycle events, or the
    /// full event stream including lock spans and remote hops. Defaults to
    /// the `CHILLER_TRACE` environment knob (off when unset); the builder
    /// override wins over the environment. Drained events are available
    /// via [`Cluster::take_trace`] after a run.
    pub fn trace(&mut self, mode: TraceMode) -> &mut Self {
        self.trace = Some(mode);
        self
    }

    /// Select the execution backend: the deterministic simulator (default,
    /// the correctness/parity oracle), one OS thread per node (real
    /// wall-clock throughput), or a fixed worker pool multiplexing every
    /// node (real wall clock at partition counts far beyond the core
    /// count). Same engines, protocols and workloads either way.
    pub fn runtime(&mut self, b: Backend) -> &mut Self {
        self.backend = b;
        self
    }

    /// Size the async backend's worker pool explicitly. Defaults to the
    /// `CHILLER_WORKERS` environment knob, falling back to the detected
    /// host parallelism; always clamped to the node count. Ignored by
    /// the simulated and threaded backends (the former has no workers,
    /// the latter is one-thread-per-engine by definition).
    pub fn workers(&mut self, n: usize) -> &mut Self {
        self.workers = Some(n);
        self
    }

    /// Select the threaded backend's mailbox implementation (lock-free
    /// rings vs the `sync_channel` fallback). Defaults to the
    /// `CHILLER_MAILBOX` environment knob (ring when unset); ignored by
    /// the simulated backend.
    pub fn mailbox(&mut self, kind: MailboxKind) -> &mut Self {
        self.mailbox = Some(kind);
        self
    }

    /// Select the threaded backend's core-pinning policy. With
    /// [`PinPolicy::Cores`] every engine thread pins itself to one
    /// allowed CPU before `on_start`, and the cluster's initial rows are
    /// loaded *by the pinned engine threads* (first-touch NUMA locality)
    /// instead of eagerly by this builder. Defaults to the `CHILLER_PIN`
    /// environment knob (off when unset); ignored by the simulated
    /// backend, and degrades to unpinned (reported via
    /// `RunReport::pinned`) where `sched_setaffinity` is unavailable.
    pub fn pin_threads(&mut self, policy: PinPolicy) -> &mut Self {
        self.pin = Some(policy);
        self
    }

    /// Select the concurrency-control protocol every engine runs
    /// (Chiller two-region, 2PL+2PC, or distributed OCC).
    pub fn protocol(&mut self, p: Protocol) -> &mut Self {
        self.protocol = p;
        self
    }

    /// Set the simulation/engine configuration: RNG seed, engine
    /// concurrency, network cost model (simulated backend only),
    /// replication factor, retry policy.
    pub fn config(&mut self, c: SimConfig) -> &mut Self {
        self.config = c;
        self
    }

    /// Register a stored procedure; returns the id used in [`chiller_cc::input::TxnInput`].
    pub fn register_proc(&mut self, p: Procedure) -> usize {
        self.registry.register(p)
    }

    /// Record placement (defaults to hash over all partitions).
    pub fn placement(&mut self, p: Arc<dyn Placement + Send + Sync>) -> &mut Self {
        self.placement = Some(p);
        self
    }

    /// Mark records as hot (the run-time decision consults this set; it is
    /// normally derived from the contention-likelihood threshold, §4.4).
    pub fn hot_records(&mut self, hot: impl IntoIterator<Item = RecordId>) -> &mut Self {
        self.hot.extend(hot);
        self
    }

    /// Stage initial records (distributed by the placement at build time).
    pub fn load(&mut self, records: impl IntoIterator<Item = (RecordId, Row)>) -> &mut Self {
        self.records.extend(records);
        self
    }

    /// Provide each node's transaction input stream.
    pub fn source_per_node(
        &mut self,
        f: impl Fn(NodeId) -> Box<dyn InputSource> + 'static,
    ) -> &mut Self {
        self.source_factory = Some(Box::new(f));
        self
    }

    /// Enable online adaptation: the provided (or default) placement
    /// becomes the *default* layer of a mutable [`Directory`], the seed hot
    /// set becomes its initial entries, every engine gets a
    /// `ContentionMonitor`, and [`Cluster::run`] drives the epoch loop
    /// (drain monitors → replan → inject migrations).
    pub fn adaptive(&mut self, cfg: AdaptiveConfig) -> &mut Self {
        self.adaptive = Some(cfg);
        self
    }

    /// Materialize the cluster: allocate primary and replica stores,
    /// distribute the staged records by the configured placement, build
    /// one engine actor per node, and wrap everything in the selected
    /// execution backend. Fails on configuration errors (no input
    /// source, no procedures, records placed off-cluster, adaptation
    /// combined with OCC or a zero epoch).
    pub fn build(self) -> Result<Cluster> {
        let source_factory = self
            .source_factory
            .ok_or_else(|| ChillerError::Config("no input source configured".into()))?;
        if self.registry.is_empty() {
            return Err(ChillerError::Config(
                "no stored procedures registered".into(),
            ));
        }
        if self.adaptive.is_some() && self.protocol == Protocol::Occ {
            return Err(ChillerError::Config(
                "online adaptation supports the lock-based protocols (Chiller, 2PL); \
                 OCC validation is version-based and does not retry migrated records"
                    .into(),
            ));
        }
        if let Some(cfg) = &self.adaptive {
            if cfg.epoch == Duration::ZERO {
                return Err(ChillerError::Config(
                    "adaptation epoch must be non-zero".into(),
                ));
            }
        }
        let base_placement: Arc<dyn Placement + Send + Sync> = self
            .placement
            .unwrap_or_else(|| Arc::new(HashPlacement::new(self.nodes as u32)));
        let registry = Arc::new(self.registry);

        // With adaptation, the run-time placement is a mutable directory
        // whose entries initially mirror the seed layout for the hot set —
        // routing starts out identical to the frozen configuration.
        let (placement, hot_set, adaptive): (
            Arc<dyn Placement + Send + Sync>,
            HotSet,
            Option<AdaptiveState>,
        ) = match self.adaptive {
            None => (base_placement, HotSet::Static(Arc::new(self.hot)), None),
            Some(cfg) => {
                let entries: Vec<(RecordId, PartitionId)> = self
                    .hot
                    .iter()
                    .map(|&r| (r, base_placement.partition_of(r)))
                    .collect();
                let directory = Arc::new(Directory::new(
                    base_placement,
                    entries,
                    self.hot.iter().copied(),
                ));
                let planner = AdaptivePlanner::new(cfg.clone(), self.nodes as u32);
                (
                    directory.clone(),
                    HotSet::Adaptive(directory.clone()),
                    Some(AdaptiveState {
                        cfg,
                        directory,
                        planner,
                        next_epoch: SimTime::ZERO,
                        stats: AdaptiveStats::default(),
                    }),
                )
            }
        };

        // Primary stores.
        let mut primaries: Vec<PartitionStore> = (0..self.nodes)
            .map(|p| PartitionStore::new(PartitionId(p as u32), self.schema.clone()))
            .collect();
        // Replica stores: node n holds replicas of partitions (n - i) mod N.
        let replica_count = self
            .config
            .replication
            .replicas()
            .min(self.nodes.saturating_sub(1));
        let mut replicas: Vec<HashMap<PartitionId, PartitionStore>> = (0..self.nodes)
            .map(|n| {
                (1..=replica_count)
                    .map(|i| {
                        let p = PartitionId(((n + self.nodes - i) % self.nodes) as u32);
                        (p, PartitionStore::new(p, self.schema.clone()))
                    })
                    .collect()
            })
            .collect();

        // Threaded-backend tuning knobs resolve builder overrides first,
        // then the environment (`CHILLER_MAILBOX` / `CHILLER_PIN`).
        let mailbox = self.mailbox.unwrap_or_else(MailboxKind::from_env);
        let pin = self.pin.unwrap_or_else(PinPolicy::from_env);

        // Tracing resolves the same way (`CHILLER_TRACE` / `CHILLER_TRACE_BUF`).
        // When off, no rings exist and every engine carries a no-op tracer.
        let trace_mode = self.trace.unwrap_or_else(TraceMode::from_env);
        let trace_buf = TraceMode::buf_from_env();
        let mut trace_sinks: Vec<TraceSink> = Vec::new();

        // Serializability checking resolves the same way
        // (`CHILLER_CHECK` / `CHILLER_CHECK_BUF`). When off, no rings
        // exist and every engine carries a no-op recorder.
        let check_mode = self.check.unwrap_or_else(CheckMode::from_env);
        let check_buf = CheckMode::buf_from_env();
        let mut history_sinks: Vec<HistorySink> = Vec::new();

        // Durability resolves the same way (`CHILLER_WAL` /
        // `CHILLER_FSYNC_BATCH`; builder override wins). Opening the logs
        // happens before data load: surviving records or checkpoints mean
        // this build is a restart and must run recovery over the loaded
        // initial state.
        let durable_dir = self.durable.or_else(wal_dir_from_env);
        let fsync_batch = self
            .fsync_batch
            .or_else(fsync_batch_from_env)
            .unwrap_or(DEFAULT_FSYNC_BATCH);
        let mut durability: Option<DurableSetup> = match durable_dir {
            None => None,
            Some(dir) => {
                std::fs::create_dir_all(&dir).map_err(|e| {
                    ChillerError::Config(format!(
                        "cannot create WAL directory {}: {e}",
                        dir.display()
                    ))
                })?;
                let mut wals = Vec::with_capacity(self.nodes);
                let mut logs = Vec::with_capacity(self.nodes);
                let mut snapshots = Vec::with_capacity(self.nodes);
                for n in 0..self.nodes {
                    let (wal, records) =
                        Wal::open(&wal_path(&dir, n), fsync_batch).map_err(|e| {
                            ChillerError::Config(format!("cannot open WAL for node {n}: {e}"))
                        })?;
                    snapshots.push(read_checkpoint(&ckpt_path(&dir, n)));
                    wals.push(wal);
                    logs.push(records);
                }
                Some(DurableSetup {
                    dir,
                    wals,
                    logs,
                    snapshots,
                })
            }
        };
        let recovery_needed = durability.as_ref().is_some_and(|d| {
            d.snapshots.iter().any(Option::is_some) || d.logs.iter().any(|l| !l.is_empty())
        });

        // With core pinning on the threaded backend, defer the initial
        // loads to each engine's `on_start`: it runs on the already-pinned
        // worker thread, so the first touch of every row lands on that
        // core's NUMA node. Everywhere else, load eagerly as before. A
        // recovering build always loads eagerly — recovery rewrites the
        // loaded stores before any engine exists, and a deferred load
        // would clobber the recovered state at `on_start`.
        let stage_on_start =
            self.backend == Backend::Threaded && pin == PinPolicy::Cores && !recovery_needed;
        let mut staged: Vec<StagedRows> = (0..self.nodes).map(|_| StagedRows::default()).collect();
        for (rid, row) in self.records {
            let p = placement.partition_of(rid);
            if p.idx() >= self.nodes {
                return Err(ChillerError::Config(format!(
                    "placement sent {rid} to partition {p} but the cluster has {} nodes",
                    self.nodes
                )));
            }
            if stage_on_start {
                staged[p.idx()].primary.push((rid, row.clone()));
            } else {
                primaries[p.idx()].load(rid, row.clone());
            }
            for i in 1..=replica_count {
                let replica_node = (p.idx() + i) % self.nodes;
                if stage_on_start {
                    staged[replica_node].replicas.push((p, rid, row.clone()));
                } else {
                    replicas[replica_node]
                        .get_mut(&p)
                        .expect("replica store allocated")
                        .load(rid, row.clone());
                }
            }
        }

        // Restart path: recover the loaded stores from the surviving
        // checkpoints + logs, then make the recovered state the new
        // baseline (fresh checkpoints, truncated logs, bumped epoch).
        let mut recovery: Option<RecoveryReport> = None;
        if recovery_needed {
            let d = durability.as_mut().expect("recovery implies durability");
            let epoch = read_epoch(&d.dir) + 1;
            assert!(
                epoch < 256,
                "restart epoch {epoch} would overflow the TxnId sequence band \
                 (epoch << 32 must stay below 2^40)"
            );
            let mut rep = RecoveryReport {
                epoch,
                ..Default::default()
            };
            for (n, snap) in d.snapshots.iter().enumerate() {
                if let Some(snap) = snap {
                    primaries[n].restore(snap);
                    rep.checkpoints_restored += 1;
                }
            }
            crash::recover(
                &mut primaries,
                &mut replicas,
                &d.logs,
                placement.as_ref(),
                &mut rep,
            );
            for (n, wal) in d.wals.iter_mut().enumerate() {
                chiller_storage::wal::write_checkpoint(&ckpt_path(&d.dir, n), &primaries[n])
                    .map_err(|e| {
                        ChillerError::Config(format!(
                            "cannot checkpoint node {n} after recovery: {e}"
                        ))
                    })?;
                wal.truncate();
            }
            write_epoch(&d.dir, epoch)?;
            recovery = Some(rep);
        }
        let txn_seq_start = recovery.as_ref().map_or(0, |r| r.epoch << 32);
        let (durable_dir, mut wals): (Option<PathBuf>, Vec<Option<Wal>>) = match durability {
            Some(d) => (Some(d.dir), d.wals.into_iter().map(Some).collect()),
            None => (None, (0..self.nodes).map(|_| None).collect()),
        };

        let mut actors = Vec::with_capacity(self.nodes);
        for (n, (store, reps)) in primaries.into_iter().zip(replicas).enumerate() {
            let node = NodeId(n as u32);
            let monitor = adaptive.as_ref().map(|a| {
                chiller_adaptive::ContentionMonitor::new(
                    a.cfg.sample_every,
                    a.cfg.max_samples_per_epoch,
                    a.cfg.sketch_decay,
                    a.cfg.max_sketch_records,
                )
            });
            let tracer = if trace_mode.enabled() {
                let (tracer, sink) = Tracer::buffered(trace_mode, trace_buf);
                trace_sinks.push(sink);
                tracer
            } else {
                Tracer::disabled()
            };
            let recorder = if check_mode.enabled() {
                let (recorder, sink) = HistoryRecorder::buffered(check_buf);
                history_sinks.push(sink);
                recorder
            } else {
                HistoryRecorder::disabled()
            };
            actors.push(EngineActor::new(EngineParams {
                node,
                num_nodes: self.nodes,
                protocol: self.protocol,
                config: self.config.clone(),
                registry: registry.clone(),
                placement: placement.clone(),
                hot: hot_set.clone(),
                store,
                replicas: reps,
                source: source_factory(node),
                monitor,
                tracer,
                recorder,
                staged: std::mem::take(&mut staged[n]),
                wal: wals[n].take(),
                txn_seq_start,
            }));
        }
        let rt: Box<dyn Runtime<Msg, EngineActor>> = match self.backend {
            Backend::Simulated => Box::new(Simulation::new(actors, self.config.network.clone())),
            // The threaded backend has no modelled network: latency is
            // whatever the host's mailboxes and scheduler deliver.
            Backend::Threaded => Box::new(ThreadedRuntime::with_config(
                actors,
                ThreadedConfig {
                    capacity: DEFAULT_MAILBOX_CAPACITY,
                    mailbox,
                    pin,
                },
            )),
            // The async backend multiplexes the same engines onto a
            // fixed pool — also unmodelled wall clock, but sized for
            // partition counts far beyond the host's cores.
            Backend::Async => Box::new(AsyncRuntime::with_config(
                actors,
                AsyncConfig {
                    capacity: DEFAULT_MAILBOX_CAPACITY,
                    mailbox,
                    workers: self.workers,
                    pin,
                },
            )),
        };
        Ok(Cluster {
            rt,
            adaptive,
            trace: TraceState {
                mode: trace_mode,
                sinks: trace_sinks,
                log: TraceLog::default(),
            },
            check: CheckState {
                mode: check_mode,
                sinks: history_sinks,
                history: History::default(),
            },
            durable_dir,
            recovery,
        })
    }
}

/// Per-node durability state assembled while building: open logs (with
/// their surviving records decoded) and decoded checkpoints.
struct DurableSetup {
    dir: PathBuf,
    wals: Vec<Wal>,
    logs: Vec<Vec<WalRecord>>,
    snapshots: Vec<Option<StoreSnapshot>>,
}

fn wal_path(dir: &Path, n: usize) -> PathBuf {
    dir.join(format!("node-{n}.wal"))
}

fn ckpt_path(dir: &Path, n: usize) -> PathBuf {
    dir.join(format!("node-{n}.ckpt"))
}

fn epoch_path(dir: &Path) -> PathBuf {
    dir.join("epoch")
}

/// Restart epoch persisted in the durable directory: 0 on a fresh
/// directory, incremented by every recovering build.
fn read_epoch(dir: &Path) -> u64 {
    std::fs::read_to_string(epoch_path(dir))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// The recovery epoch recorded in a durable directory: 0 for a fresh (or
/// never-crashed) directory, bumped by every recovering build. Workload
/// sources that mint fresh record keys (e.g. TPC-C HISTORY rows) salt
/// their sequences with this so a restarted incarnation never re-mints a
/// key a dead one already inserted. Read it from inside a
/// [`ClusterBuilder::source_per_node`] closure: the builder writes the
/// bumped epoch before it constructs sources.
pub fn wal_epoch(dir: &Path) -> u64 {
    read_epoch(dir)
}

fn write_epoch(dir: &Path, e: u64) -> Result<()> {
    std::fs::write(epoch_path(dir), format!("{e}\n"))
        .map_err(|e| ChillerError::Config(format!("cannot write epoch file: {e}")))
}

/// `CHILLER_WAL` names the durable directory. Loud on nonsense: an empty
/// value is a configuration error, not a silent "off".
fn wal_dir_from_env() -> Option<PathBuf> {
    let v = std::env::var("CHILLER_WAL").ok()?;
    assert!(
        !v.trim().is_empty(),
        "CHILLER_WAL must name a directory, got an empty value (unset it to disable durability)"
    );
    Some(PathBuf::from(v))
}

/// `CHILLER_FSYNC_BATCH` is the group-commit batch size. Loud on nonsense:
/// zero or garbage panics instead of silently falling back.
fn fsync_batch_from_env() -> Option<u64> {
    let v = std::env::var("CHILLER_FSYNC_BATCH").ok()?;
    match v.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!("CHILLER_FSYNC_BATCH must be a positive integer, got {v:?}"),
    }
}

/// Trace plumbing for a built cluster: the consumer half of every engine's
/// trace ring plus the events accumulated across drains.
struct TraceState {
    mode: TraceMode,
    sinks: Vec<TraceSink>,
    log: TraceLog,
}

/// Serializability-check plumbing: the consumer half of every engine's
/// history ring plus the observations accumulated across drains. Unlike
/// traces, accumulated history is *never* discarded at a metrics reset —
/// a transaction straddling the warm-up boundary must keep its reads and
/// its commit in one history or the checker would see a torn transaction.
struct CheckState {
    mode: CheckMode,
    sinks: Vec<HistorySink>,
    history: History,
}

/// Control-plane state of an adapting cluster.
struct AdaptiveState {
    cfg: AdaptiveConfig,
    directory: Arc<Directory>,
    planner: AdaptivePlanner,
    next_epoch: SimTime,
    stats: AdaptiveStats,
}

/// Running totals of the adaptation loop (control-plane view; the
/// data-plane migration counters live in the engine metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveStats {
    pub epochs: u64,
    pub plans: u64,
    pub moves_planned: u64,
    pub promotions: u64,
    pub demotions: u64,
}

/// A built cluster ready to run, driving either execution backend through
/// the backend-neutral [`Runtime`] surface.
pub struct Cluster {
    rt: Box<dyn Runtime<Msg, EngineActor>>,
    adaptive: Option<AdaptiveState>,
    trace: TraceState,
    check: CheckState,
    /// Directory holding per-node logs + checkpoints when durable.
    durable_dir: Option<PathBuf>,
    /// What recovery found and did, when this build was a restart.
    recovery: Option<RecoveryReport>,
}

impl Cluster {
    /// Run warm-up (metrics discarded) then the measured window; report.
    /// With adaptation enabled, both windows are driven by the epoch
    /// scheduler (monitoring starts during warm-up, so the planner has data
    /// by the time measurement begins).
    pub fn run(&mut self, spec: RunSpec) -> RunReport {
        // `RunSpec::epoch` overrides the epoch length for this run only.
        let saved_epoch = match (self.adaptive.as_mut(), spec.epoch) {
            (Some(state), Some(epoch)) => {
                assert!(
                    epoch > Duration::ZERO,
                    "adaptation epoch override must be non-zero"
                );
                let saved = state.cfg.epoch;
                state.cfg.epoch = epoch;
                Some(saved)
            }
            _ => None,
        };
        let start = self.rt.now();
        // A zero-length warm-up means "no boundary": skip the reset so
        // trace spans recorded at the very first instant are not split
        // from their begin events (and a fresh cluster's metrics are
        // already zero, so there is nothing to discard).
        if spec.warmup != Duration::ZERO {
            self.advance(start + spec.warmup);
            self.reset_metrics();
        }
        let measure_start = self.rt.now();
        let wall_start = std::time::Instant::now();
        self.advance(measure_start + spec.measure);
        let wall = wall_start.elapsed();
        let elapsed = self.rt.now() - measure_start;
        if let (Some(state), Some(saved)) = (self.adaptive.as_mut(), saved_epoch) {
            state.cfg.epoch = saved;
        }
        self.collect(elapsed, wall)
    }

    /// Continue running without resetting metrics (incremental windows).
    /// The adaptation loop, when enabled, keeps running.
    pub fn run_more(&mut self, d: Duration) -> RunReport {
        let start = self.rt.now();
        let wall_start = std::time::Instant::now();
        self.advance(start + d);
        let wall = wall_start.elapsed();
        let elapsed = self.rt.now() - start;
        self.collect(elapsed, wall)
    }

    /// Clear accumulated engine metrics (used to delimit measurement
    /// phases, e.g. before and after a workload shift). Trace events
    /// recorded so far are discarded with them, so a post-warm-up reset
    /// leaves only measured-window events in [`Self::take_trace`].
    pub fn reset_metrics(&mut self) {
        for engine in self.rt.actors_mut() {
            engine.reset_metrics();
        }
        self.pump_trace();
        self.trace.log = TraceLog::default();
        // History is pumped so the rings cannot overflow across a long
        // warm-up, but — unlike traces — NOT discarded: serializability is
        // a whole-run property, and a warm-up discard here would tear a
        // boundary-straddling transaction's reads from its commit marker.
        self.pump_history();
    }

    /// The active trace mode (resolved from the builder override or the
    /// `CHILLER_TRACE` environment knob at build time).
    pub fn trace_mode(&self) -> TraceMode {
        self.trace.mode
    }

    /// Drain every engine's trace ring and hand over everything recorded
    /// since the last take (or the last [`Self::reset_metrics`]). Empty
    /// when tracing is off.
    pub fn take_trace(&mut self) -> TraceLog {
        self.pump_trace();
        std::mem::take(&mut self.trace.log)
    }

    /// Move buffered events out of the per-engine rings into the
    /// accumulated log. The rings are SPSC (engine → control plane), so
    /// draining is safe whenever this thread holds the cluster; doing it
    /// at phase boundaries keeps the rings from overflowing on long runs.
    fn pump_trace(&mut self) {
        for sink in &mut self.trace.sinks {
            sink.drain_into(&mut self.trace.log);
        }
    }

    /// The active serializability-check mode (resolved from the builder
    /// override or the `CHILLER_CHECK` environment knob at build time).
    pub fn check_mode(&self) -> CheckMode {
        self.check.mode
    }

    /// Drain every engine's history ring and hand over the accumulated
    /// observation history (all of it, warm-up included). Empty when
    /// checking is off.
    pub fn take_history(&mut self) -> History {
        self.pump_history();
        std::mem::take(&mut self.check.history)
    }

    /// Drain and check the accumulated history for serializability under
    /// the cluster's check mode: assemble committed transactions, build
    /// WR/WW/RW dependency edges, and search for cycles. The history is
    /// consumed. Vacuously ok when checking is off.
    ///
    /// Call after [`Self::quiesce`] so no transaction is mid-flight —
    /// an in-flight transaction's partial footprint is filtered out (no
    /// commit marker yet), which hides exactly the accesses a concurrent
    /// checker run would need.
    pub fn check_history(&mut self) -> CheckReport {
        let history = self.take_history();
        chiller_checker::check_history(&history, self.check.mode)
    }

    /// Assert the recorded history is serializable and complete (no
    /// dropped observations), panicking with the full violation list
    /// otherwise. `label` names the run in the panic message. No-op when
    /// checking is off.
    pub fn expect_serializable(&mut self, label: &str) {
        let report = self.check_history();
        assert!(
            report.is_complete(),
            "[{label}] history incomplete: {} observations dropped — raise CHILLER_CHECK_BUF",
            report.events_dropped
        );
        if !report.ok() {
            let mut msg = format!("[{label}] serializability violated — {}", report.summary());
            for v in &report.violations {
                msg.push_str(&format!("\n  {v}"));
            }
            panic!("{msg}");
        }
    }

    /// Move buffered observations out of the per-engine history rings into
    /// the accumulated history (same SPSC contract as [`Self::pump_trace`]).
    fn pump_history(&mut self) {
        for sink in &mut self.check.sinks {
            sink.drain_into(&mut self.check.history);
        }
    }

    /// The execution backend driving this cluster.
    pub fn backend(&self) -> Backend {
        self.rt.backend()
    }

    fn collect(&mut self, elapsed: Duration, wall: std::time::Duration) -> RunReport {
        self.flush_wals();
        self.pump_trace();
        self.pump_history();
        let mut telemetry = self.rt.telemetry();
        telemetry.trace_events_dropped = self.trace.log.dropped;
        telemetry.history_events_dropped = self.check.history.dropped;
        for engine in self.rt.actors() {
            if let Some(s) = engine.wal_stats() {
                telemetry.wal_records_appended += s.records_appended;
                telemetry.wal_bytes_appended += s.bytes_appended;
                telemetry.wal_flushes += s.flushes;
                telemetry.wal_fsyncs += s.fsyncs;
            }
        }
        RunReport::collect(
            self.rt.backend(),
            elapsed,
            wall,
            self.rt.pinned(),
            self.rt.workers(),
            self.rt.mailbox_kind(),
            telemetry,
            self.rt.stats(),
            self.rt.actors().iter().map(EngineActor::report).collect(),
        )
    }

    /// Advance time to `until`, pausing at every epoch boundary to run the
    /// adaptation control step. Works on either backend: the runtime pauses
    /// at the boundary (exactly on the simulator, approximately on wall
    /// clock) and hands the control plane exclusive actor access.
    fn advance(&mut self, until: SimTime) {
        if self.adaptive.is_none() {
            self.rt.run_until(until);
            return;
        }
        loop {
            let next_epoch = {
                let state = self.adaptive.as_mut().expect("checked above");
                if state.next_epoch <= self.rt.now() {
                    state.next_epoch = self.rt.now() + state.cfg.epoch;
                }
                state.next_epoch
            };
            if next_epoch > until {
                self.rt.run_until(until);
                return;
            }
            self.rt.run_until(next_epoch);
            self.control_step();
            let state = self.adaptive.as_mut().expect("checked above");
            state.next_epoch = next_epoch + state.cfg.epoch;
            if next_epoch >= until {
                return;
            }
        }
    }

    /// One epoch boundary: drain every engine's monitor (node order),
    /// replan over the window, apply metadata flips, and inject the planned
    /// migrations at their destination engines.
    fn control_step(&mut self) {
        let state = self.adaptive.as_mut().expect("adaptive control step");
        state.stats.epochs += 1;
        let summaries: Vec<chiller_adaptive::EpochSummary> = self
            .rt
            .actors_mut()
            .iter_mut()
            .filter_map(EngineActor::take_epoch_summary)
            .collect();
        state.planner.absorb(&summaries);

        let in_flight: HashSet<RecordId> = self
            .rt
            .actors()
            .iter()
            .flat_map(EngineActor::migrating_records)
            .collect();
        let plan: MigrationPlan = state.planner.plan(&state.directory, &in_flight);
        if plan.is_empty() {
            return;
        }
        state.stats.plans += 1;
        state.stats.moves_planned += plan.moves.len() as u64;
        state.stats.promotions += plan.promotions.len() as u64;
        state.stats.demotions += plan.demotions.len() as u64;

        // Metadata-only flips apply immediately at the boundary.
        for (r, at) in &plan.promotions {
            state.directory.promote(*r, *at);
        }
        for r in &plan.demotions {
            state.directory.demote(*r);
        }

        // Data movements: injected at each destination engine, node order.
        let mut by_dst: BTreeMap<u32, Vec<chiller_adaptive::RecordMove>> = BTreeMap::new();
        for mv in plan.moves {
            by_dst.entry(mv.to.0).or_default().push(mv);
        }
        for (dst, mut moves) in by_dst {
            self.rt.with_actor_ctx(
                NodeId(dst),
                &mut |engine: &mut EngineActor, ctx: &mut Ctx<'_, Msg>| {
                    for mv in moves.drain(..) {
                        engine.begin_migration(ctx, mv);
                    }
                },
            );
        }
    }

    /// Control-plane totals of the adaptation loop (zeros when disabled).
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        self.adaptive.as_ref().map(|a| a.stats).unwrap_or_default()
    }

    /// The live placement directory, when adaptation is enabled.
    pub fn directory(&self) -> Option<&Arc<Directory>> {
        self.adaptive.as_ref().map(|a| &a.directory)
    }

    /// Current runtime time: virtual on the simulated backend, wall-clock
    /// offset since runtime creation on the threaded backend.
    pub fn now(&self) -> SimTime {
        self.rt.now()
    }

    /// Engine access for invariant checks in tests.
    pub fn engines(&self) -> &[EngineActor] {
        self.rt.actors()
    }

    /// Number of nodes (= partitions = engines) in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.rt.num_nodes()
    }

    /// Number of `(record, row)` divergences between each primary
    /// partition and its replica copies — 0 when replication is consistent.
    /// Meaningful after [`Self::quiesce`].
    pub fn replica_divergence(&self) -> usize {
        let mut diverged = 0;
        for primary in self.rt.actors() {
            let p = primary.store().partition;
            for holder in self.rt.actors() {
                let Some(replica) = holder.replica_store(p) else {
                    continue;
                };
                for (table, primary_table) in primary.store().tables() {
                    let replica_table = replica.table(*table);
                    let mut primary_rows: Vec<(&u64, &Row)> = primary_table.iter().collect();
                    let mut replica_rows: Vec<(&u64, &Row)> = replica_table.iter().collect();
                    primary_rows.sort_by_key(|(k, _)| **k);
                    replica_rows.sort_by_key(|(k, _)| **k);
                    if primary_rows != replica_rows {
                        let keys_differ = primary_rows
                            .iter()
                            .map(|(k, _)| **k)
                            .ne(replica_rows.iter().map(|(k, _)| **k));
                        diverged += if keys_differ {
                            primary_rows.len().abs_diff(replica_rows.len()).max(1)
                        } else {
                            primary_rows
                                .iter()
                                .zip(&replica_rows)
                                .filter(|(a, b)| a != b)
                                .count()
                        };
                    }
                }
            }
        }
        diverged
    }

    /// Stop all engines from pulling new inputs and run the simulation to
    /// quiescence, so every in-flight transaction (and migration) completes
    /// and all locks are released. Used before invariant checks.
    pub fn quiesce(&mut self) {
        for engine in self.rt.actors_mut() {
            engine.stop_accepting();
        }
        self.rt.run_to_quiescence(u64::MAX);
        self.flush_wals();
        self.pump_trace();
        self.pump_history();
    }

    /// Whether this cluster logs to per-node redo logs.
    pub fn durable(&self) -> bool {
        self.durable_dir.is_some()
    }

    /// What recovery found and did, when this build was a restart against
    /// a durable directory with surviving state. `None` on fresh builds
    /// and non-durable clusters.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Flush (write + fsync) every engine's buffered redo log. The control
    /// plane holds exclusive actor access only while the runtime is
    /// paused, so every call site is a flush boundary by construction:
    /// run-window ends, quiescence, checkpoints, and kills.
    fn flush_wals(&mut self) {
        for engine in self.rt.actors_mut() {
            engine.wal_flush();
        }
    }

    /// Checkpoint every engine's primary partition and truncate the redo
    /// logs (their records are now redundant). Call after
    /// [`Self::quiesce`]: a checkpoint taken mid-flight could drop
    /// `Decide`/`InnerCommit` records another node's recovery still
    /// needs. No-op on non-durable clusters.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        let Some(dir) = self.durable_dir.clone() else {
            return Ok(());
        };
        for (n, engine) in self.rt.actors_mut().iter_mut().enumerate() {
            engine.wal_flush();
            engine.checkpoint_to(&ckpt_path(&dir, n))?;
        }
        Ok(())
    }

    /// Crash the cluster at a flush boundary: flush every redo log, drain
    /// the observability rings, and drop the runtime *without*
    /// checkpointing — exactly what a machine failure between batches
    /// leaves behind. The returned snapshot carries the acked commit
    /// counts and the drained history so a test can certify the recovered
    /// incarnation: every commit acked here must survive recovery
    /// (acked ⟺ its `Ack` record flushed, which this flush guarantees).
    pub fn kill(mut self) -> CrashSnapshot {
        self.flush_wals();
        self.pump_trace();
        self.pump_history();
        let mut commits_by_proc: BTreeMap<String, u64> = BTreeMap::new();
        let mut total = 0;
        for engine in self.rt.actors() {
            let report = engine.report();
            for (name, stats) in report.metrics.per_type.iter() {
                if stats.commits > 0 {
                    *commits_by_proc.entry(name.clone()).or_insert(0) += stats.commits;
                    total += stats.commits;
                }
            }
        }
        CrashSnapshot {
            history: std::mem::take(&mut self.check.history),
            commits_by_proc,
            total_commits: total,
        }
    }
}
