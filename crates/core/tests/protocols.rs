//! End-to-end protocol tests on a transfer microworkload.
//!
//! The workload moves money between accounts; serializability implies the
//! total balance is conserved. We verify, for every protocol:
//! * conservation of the sum (serializability witness),
//! * no lock leaks after quiescence,
//! * replica consistency with primaries,
//! * deterministic reruns,
//! * sensible commit/abort accounting.

use chiller::prelude::*;
use chiller_common::ids::OpId;
use chiller_common::rng::seeded;
use rand::Rng;
use std::sync::Arc;

const ACCOUNTS: TableId = TableId(1);
const NUM_ACCOUNTS: u64 = 400;
const INITIAL: f64 = 1_000.0;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add(TableDef::new(ACCOUNTS, "accounts", vec!["id", "balance"]));
    s
}

/// params: [0]=src, [1]=dst, [2]=amount
fn transfer_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("transfer")
        .update(ACCOUNTS, 0, "debit", |row, st| {
            let mut r = row.clone();
            r[1] = Value::F64(r[1].as_f64() - st.param_f64(2));
            r
        })
        .update(ACCOUNTS, 1, "credit", |row, st| {
            let mut r = row.clone();
            r[1] = Value::F64(r[1].as_f64() + st.param_f64(2));
            r
        })
        .build()
        .unwrap()
}

/// Random transfers; `hot_fraction` of transfers touch a small hot set.
struct TransferSource {
    proc: usize,
    hot_fraction: f64,
}

impl InputSource for TransferSource {
    fn next_input(&mut self, rng: &mut rand::rngs::StdRng, _now: SimTime) -> TxnInput {
        let hot = rng.gen::<f64>() < self.hot_fraction;
        let (a, b) = if hot {
            (rng.gen_range(0..4u64), 4 + rng.gen_range(0..4u64))
        } else {
            let a = rng.gen_range(8..NUM_ACCOUNTS);
            let mut b = rng.gen_range(8..NUM_ACCOUNTS);
            if b == a {
                b = (b + 1) % NUM_ACCOUNTS;
            }
            (a, b)
        };
        TxnInput {
            proc: self.proc,
            params: vec![Value::I64(a as i64), Value::I64(b as i64), Value::F64(1.0)],
        }
    }
}

fn build_cluster(protocol: Protocol, concurrency: usize, seed: u64) -> Cluster {
    let mut builder = ClusterBuilder::new(schema(), 4);
    let proc_id = builder.register_proc(transfer_proc());
    let mut config = SimConfig::default();
    config.engine.concurrency = concurrency;
    config.seed = seed;
    builder
        .protocol(protocol)
        .config(config)
        .hot_records((0..8).map(|k| RecordId::new(ACCOUNTS, k)))
        .load((0..NUM_ACCOUNTS).map(|k| {
            (
                RecordId::new(ACCOUNTS, k),
                vec![Value::I64(k as i64), Value::F64(INITIAL)],
            )
        }))
        .source_per_node(move |_| {
            Box::new(TransferSource {
                proc: proc_id,
                hot_fraction: 0.3,
            })
        });
    builder.build().unwrap()
}

fn total_balance(cluster: &Cluster) -> f64 {
    let mut sum = 0.0;
    for engine in cluster.engines() {
        for (_, row) in engine.store().table(ACCOUNTS).iter() {
            sum += row[1].as_f64();
        }
    }
    sum
}

fn check_invariants(cluster: &mut Cluster, label: &str) {
    cluster.quiesce();
    // 1. Conservation (serializability witness).
    let sum = total_balance(cluster);
    let expect = NUM_ACCOUNTS as f64 * INITIAL;
    assert!(
        (sum - expect).abs() < 1e-6,
        "{label}: total balance {sum} != {expect}"
    );
    // 2. No lock leaks.
    for engine in cluster.engines() {
        assert!(
            engine.store().all_locks_free(),
            "{label}: leaked locks on node {}",
            engine.store().partition
        );
        assert_eq!(engine.open_txns(), 0, "{label}: zombie transactions");
    }
    // 3. Replica consistency: every replicated record matches its primary.
    let primaries: Vec<_> = cluster.engines().iter().map(|e| e.store()).collect();
    for engine in cluster.engines() {
        for p in 0..cluster.num_nodes() as u32 {
            let pid = chiller_common::ids::PartitionId(p);
            if let Some(replica) = engine.replica_store(pid) {
                for (key, row) in replica.table(ACCOUNTS).iter() {
                    let primary_row = primaries[p as usize]
                        .read_opt(RecordId::new(ACCOUNTS, *key))
                        .unwrap_or_else(|| panic!("{label}: replica has ghost record {key}"));
                    assert_eq!(
                        primary_row[1].as_f64(),
                        row[1].as_f64(),
                        "{label}: replica divergence on account {key}"
                    );
                }
            }
        }
    }
}

#[test]
fn chiller_conserves_money_under_contention() {
    let mut cluster = build_cluster(Protocol::Chiller, 4, 1);
    let report = cluster.run(RunSpec::millis(1, 10));
    assert!(report.total_commits() > 100, "{}", report.summary());
    check_invariants(&mut cluster, "chiller");
}

#[test]
fn two_pl_conserves_money_under_contention() {
    let mut cluster = build_cluster(Protocol::TwoPhaseLocking, 4, 2);
    let report = cluster.run(RunSpec::millis(1, 10));
    assert!(report.total_commits() > 100, "{}", report.summary());
    check_invariants(&mut cluster, "2pl");
}

#[test]
fn occ_conserves_money_under_contention() {
    let mut cluster = build_cluster(Protocol::Occ, 4, 3);
    let report = cluster.run(RunSpec::millis(1, 10));
    assert!(report.total_commits() > 100, "{}", report.summary());
    check_invariants(&mut cluster, "occ");
}

#[test]
fn deterministic_reruns_per_protocol() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let mut a = build_cluster(protocol, 2, 7);
        let mut b = build_cluster(protocol, 2, 7);
        let ra = a.run(RunSpec::millis(1, 5));
        let rb = b.run(RunSpec::millis(1, 5));
        assert_eq!(
            ra.total_commits(),
            rb.total_commits(),
            "{protocol}: nondeterministic commits"
        );
        assert_eq!(ra.total_aborts(), rb.total_aborts());
        assert_eq!(total_balance(&a), total_balance(&b));
    }
}

#[test]
fn different_seeds_differ() {
    let mut a = build_cluster(Protocol::Chiller, 2, 11);
    let mut b = build_cluster(Protocol::Chiller, 2, 12);
    let ra = a.run(RunSpec::millis(1, 5));
    let rb = b.run(RunSpec::millis(1, 5));
    // Overwhelmingly likely to differ; equality would indicate the seed is
    // being ignored somewhere.
    assert_ne!(
        (ra.total_commits(), ra.total_aborts()),
        (rb.total_commits(), rb.total_aborts())
    );
}

#[test]
fn contention_causes_aborts_in_2pl_but_commits_still_flow() {
    let mut cluster = build_cluster(Protocol::TwoPhaseLocking, 8, 21);
    let report = cluster.run(RunSpec::millis(1, 10));
    assert!(
        report.total_aborts() > 0,
        "hot set must cause NO_WAIT aborts"
    );
    assert!(report.total_commits() > 0);
    check_invariants(&mut cluster, "2pl-hot");
}

#[test]
fn chiller_two_region_reduces_abort_rate_vs_2pl() {
    // Use the placement Chiller's contention-aware partitioner would
    // produce: the co-written hot set lands on ONE partition so that a
    // single inner host can commit it unilaterally (§4). (Scattering the
    // hot set across partitions is the configuration the paper explicitly
    // calls out as hurting two-region execution.)
    let mut lookup = LookupTable::new(HashPlacement::new(4));
    for k in 0..8 {
        lookup.insert(RecordId::new(ACCOUNTS, k), PartitionId(0));
    }
    let placement = Arc::new(lookup);

    let run = |protocol: Protocol| {
        let mut builder = ClusterBuilder::new(schema(), 4);
        let proc_id = builder.register_proc(transfer_proc());
        let mut config = SimConfig::default();
        config.engine.concurrency = 6;
        config.seed = 5;
        builder
            .protocol(protocol)
            .config(config)
            .placement(placement.clone())
            .hot_records((0..8).map(|k| RecordId::new(ACCOUNTS, k)))
            .load((0..NUM_ACCOUNTS).map(|k| {
                (
                    RecordId::new(ACCOUNTS, k),
                    vec![Value::I64(k as i64), Value::F64(INITIAL)],
                )
            }))
            .source_per_node(move |_| {
                Box::new(TransferSource {
                    proc: proc_id,
                    hot_fraction: 0.5,
                })
            });
        let mut cluster = builder.build().unwrap();
        let report = cluster.run(RunSpec::millis(1, 10));
        check_invariants(&mut cluster, protocol.name());
        report
    };

    let chiller = run(Protocol::Chiller);
    let two_pl = run(Protocol::TwoPhaseLocking);
    assert!(
        chiller.abort_rate() < two_pl.abort_rate(),
        "chiller abort rate {:.3} must beat 2PL {:.3}",
        chiller.abort_rate(),
        two_pl.abort_rate()
    );
}

#[test]
fn logic_abort_is_final_not_retried() {
    // A guard that always fails: every attempt is a logic abort; the driver
    // must keep issuing fresh transactions, not spin on retries.
    let proc = ProcedureBuilder::new("always_fails")
        .read(ACCOUNTS, 0, "read")
        .guard(&[OpId(0)], "never", |_| Err("nope"))
        .build()
        .unwrap();
    let mut builder = ClusterBuilder::new(schema(), 2);
    let proc_id = builder.register_proc(proc);
    builder
        .protocol(Protocol::TwoPhaseLocking)
        .load((0..10).map(|k| {
            (
                RecordId::new(ACCOUNTS, k),
                vec![Value::I64(k as i64), Value::F64(0.0)],
            )
        }))
        .source_per_node(move |_| {
            Box::new(ScriptedSource::new(vec![TxnInput {
                proc: proc_id,
                params: vec![Value::I64(1)],
            }]))
        });
    let mut cluster = builder.build().unwrap();
    let report = cluster.run(RunSpec::millis(0, 2));
    assert_eq!(report.total_commits(), 0);
    assert_eq!(report.total_aborts(), 0, "guard failures are not transient");
    let logic: u64 = report
        .metrics
        .per_type
        .values()
        .map(|s| s.logic_aborts)
        .sum();
    assert!(logic > 10, "driver must keep issuing fresh inputs");
    cluster.quiesce();
    for engine in cluster.engines() {
        assert!(engine.store().all_locks_free());
    }
}

#[test]
fn read_only_transactions_commit_without_aborting_anyone() {
    let proc = ProcedureBuilder::new("audit")
        .read(ACCOUNTS, 0, "r0")
        .read(ACCOUNTS, 1, "r1")
        .read(ACCOUNTS, 2, "r2")
        .build()
        .unwrap();
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let mut builder = ClusterBuilder::new(schema(), 3);
        let proc_id = builder.register_proc(proc.clone());
        builder
            .protocol(protocol)
            .load((0..NUM_ACCOUNTS).map(|k| {
                (
                    RecordId::new(ACCOUNTS, k),
                    vec![Value::I64(k as i64), Value::F64(INITIAL)],
                )
            }))
            .source_per_node(move |node| {
                let mut rng = seeded(node.0 as u64);
                let inputs = (0..32)
                    .map(|_| {
                        let a = rng.gen_range(0..NUM_ACCOUNTS) as i64;
                        TxnInput {
                            proc: proc_id,
                            params: vec![
                                Value::I64(a),
                                Value::I64((a + 1) % NUM_ACCOUNTS as i64),
                                Value::I64((a + 2) % NUM_ACCOUNTS as i64),
                            ],
                        }
                    })
                    .collect();
                Box::new(ScriptedSource::new(inputs)) as Box<dyn InputSource>
            });
        let mut cluster = builder.build().unwrap();
        let report = cluster.run(RunSpec::millis(0, 5));
        assert!(report.total_commits() > 0, "{protocol}");
        assert_eq!(
            report.total_aborts(),
            0,
            "{protocol}: shared locks conflict-free"
        );
        cluster.quiesce();
    }
}
