//! Lifecycle-tracing tests on the deterministic simulator: abort-reason
//! accounting, trace-off byte-identity, sampling, and exporter content.

use chiller::prelude::*;
use chiller_common::metrics::AbortReason;
use rand::Rng;

const ACCOUNTS: TableId = TableId(1);
const NUM_ACCOUNTS: u64 = 400;
const INITIAL: f64 = 1_000.0;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add(TableDef::new(ACCOUNTS, "accounts", vec!["id", "balance"]));
    s
}

/// params: [0]=src, [1]=dst, [2]=amount
fn transfer_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("transfer")
        .update(ACCOUNTS, 0, "debit", |row, st| {
            let mut r = row.clone();
            r[1] = Value::F64(r[1].as_f64() - st.param_f64(2));
            r
        })
        .update(ACCOUNTS, 1, "credit", |row, st| {
            let mut r = row.clone();
            r[1] = Value::F64(r[1].as_f64() + st.param_f64(2));
            r
        })
        .build()
        .unwrap()
}

/// Random transfers where a third of the traffic hammers a tiny hot set —
/// enough contention that NO_WAIT (or OCC validation) aborts are certain.
struct TransferSource {
    proc: usize,
}

impl InputSource for TransferSource {
    fn next_input(&mut self, rng: &mut rand::rngs::StdRng, _now: SimTime) -> TxnInput {
        let hot = rng.gen::<f64>() < 0.34;
        let (a, b) = if hot {
            (rng.gen_range(0..4u64), 4 + rng.gen_range(0..4u64))
        } else {
            let a = rng.gen_range(8..NUM_ACCOUNTS);
            let mut b = rng.gen_range(8..NUM_ACCOUNTS);
            if b == a {
                b = (b + 1) % NUM_ACCOUNTS;
            }
            (a, b)
        };
        TxnInput {
            proc: self.proc,
            params: vec![Value::I64(a as i64), Value::I64(b as i64), Value::F64(1.0)],
        }
    }
}

fn build_cluster(protocol: Protocol, seed: u64, trace: Option<TraceMode>) -> Cluster {
    let mut builder = ClusterBuilder::new(schema(), 4);
    let proc_id = builder.register_proc(transfer_proc());
    let mut config = SimConfig::default();
    config.engine.concurrency = 8;
    config.seed = seed;
    builder
        .protocol(protocol)
        .config(config)
        .hot_records((0..8).map(|k| RecordId::new(ACCOUNTS, k)))
        .load((0..NUM_ACCOUNTS).map(|k| {
            (
                RecordId::new(ACCOUNTS, k),
                vec![Value::I64(k as i64), Value::F64(INITIAL)],
            )
        }))
        .source_per_node(move |_| Box::new(TransferSource { proc: proc_id }));
    // Builder override only — never the environment — so parallel tests
    // cannot race on `CHILLER_TRACE`.
    builder.trace(trace.unwrap_or(TraceMode::Off));
    builder.build().unwrap()
}

/// Every transient abort must carry exactly one structured reason, under
/// all three protocols.
#[test]
fn abort_reasons_account_for_every_transient_abort() {
    for (protocol, expected) in [
        (Protocol::Chiller, AbortReason::NoWaitConflict),
        (Protocol::TwoPhaseLocking, AbortReason::NoWaitConflict),
        (Protocol::Occ, AbortReason::OccValidation),
    ] {
        let mut cluster = build_cluster(protocol, 31, None);
        let report = cluster.run(RunSpec::millis(1, 10));
        assert!(
            report.total_aborts() > 0,
            "{protocol}: hot set must cause aborts"
        );
        assert_eq!(
            report.metrics.abort_reasons.total(),
            report.total_aborts(),
            "{protocol}: every transient abort needs a reason"
        );
        assert!(
            report.metrics.abort_reasons.get(expected) > 0,
            "{protocol}: expected {} aborts",
            expected.label()
        );
        // No migrations run here, so no stale-route aborts can appear.
        assert_eq!(
            report
                .metrics
                .abort_reasons
                .get(AbortReason::MigrationStaleRoute),
            0,
            "{protocol}"
        );
        cluster.quiesce();
    }
}

/// Tracing must be observation-only: a fully-traced simulator run produces
/// byte-identical per-node reports to the same seed untraced.
#[test]
fn sim_report_byte_identical_with_tracing_on() {
    for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
        let mut off = build_cluster(protocol, 17, Some(TraceMode::Off));
        let mut full = build_cluster(protocol, 17, Some(TraceMode::Full));
        let r_off = off.run(RunSpec::millis(1, 5));
        let r_full = full.run(RunSpec::millis(1, 5));
        assert_eq!(
            format!("{:?}", r_off.per_node),
            format!("{:?}", r_full.per_node),
            "{protocol}: tracing perturbed the simulation"
        );
        assert_eq!(r_off.summary(), r_full.summary(), "{protocol}");
        assert!(off.take_trace().is_empty());
        assert!(!full.take_trace().is_empty());
    }
}

/// Full mode records the whole lifecycle; the log carries begins, commits,
/// aborts with reasons, lock spans, and remote hops, and the commit/abort
/// event counts reconcile with the metrics.
#[test]
fn full_trace_carries_the_whole_lifecycle() {
    let mut cluster = build_cluster(Protocol::Chiller, 23, Some(TraceMode::Full));
    let report = cluster.run(RunSpec::millis(1, 8));
    cluster.quiesce();
    let log = cluster.take_trace();
    assert_eq!(log.dropped, 0, "default ring must absorb this run");

    let count = |tag: &str| log.events.iter().filter(|e| e.kind.tag() == tag).count() as u64;
    assert!(count("txn_begin") > 0);
    assert!(count("lock_acquire") > 0);
    assert!(count("lock_release") > 0);
    assert!(count("send_hop") > 0);
    assert!(count("recv_hop") > 0);
    // The measured window's metrics are a floor: quiescence commits the
    // in-flight tail after `run` returned, and those events are in the log.
    assert!(count("txn_commit") >= report.total_commits());
    assert!(count("txn_abort") >= report.total_aborts());
    assert!(count("txn_abort") > 0, "contention must show up in the log");

    // A second take returns only what happened since the first.
    assert!(cluster.take_trace().is_empty());
}

/// Sample mode records lifecycle events for the deterministic 1-in-N
/// subset and never records lock spans or hops.
#[test]
fn sampled_trace_is_lifecycle_only_subset() {
    let mut full = build_cluster(Protocol::TwoPhaseLocking, 29, Some(TraceMode::Full));
    let mut sampled = build_cluster(Protocol::TwoPhaseLocking, 29, Some(TraceMode::Sample(16)));
    full.run(RunSpec::millis(1, 5));
    sampled.run(RunSpec::millis(1, 5));
    let full_log = full.take_trace();
    let sample_log = sampled.take_trace();
    assert!(!sample_log.is_empty());
    assert!(sample_log.len() < full_log.len() / 4);
    for ev in &sample_log.events {
        assert!(
            matches!(
                ev.kind.tag(),
                "txn_begin" | "txn_retry" | "txn_commit" | "txn_abort"
            ),
            "sample mode leaked a {} event",
            ev.kind.tag()
        );
    }
}

/// The warm-up reset discards warm-up trace events along with metrics.
#[test]
fn reset_metrics_discards_warmup_trace() {
    let mut cluster = build_cluster(Protocol::TwoPhaseLocking, 41, Some(TraceMode::Full));
    let report = cluster.run(RunSpec::millis(5, 1));
    let log = cluster.take_trace();
    // The warm-up window is 5x the measured window; if its events survived
    // the reset, commits in the log would dwarf the measured count several
    // times over instead of tracking it (+ the quiescing tail).
    let commits = log
        .events
        .iter()
        .filter(|e| e.kind.tag() == "txn_commit")
        .count() as u64;
    assert!(commits >= report.total_commits());
    assert!(commits < report.total_commits() * 3);
}

/// The Prometheus dump renders commit/abort totals, per-reason aborts, and
/// the runtime counters, and the summary names the backend configuration.
#[test]
fn prometheus_dump_and_summary_are_self_describing() {
    let mut cluster = build_cluster(Protocol::TwoPhaseLocking, 37, None);
    let report = cluster.run(RunSpec::millis(1, 5));
    let prom = report.prometheus();
    assert!(prom.contains(&format!("chiller_commits_total {}", report.total_commits())));
    assert!(prom.contains(&format!("chiller_aborts_total {}", report.total_aborts())));
    assert!(prom.contains("chiller_aborts_by_reason_total{reason=\"no_wait_conflict\"}"));
    assert!(prom.contains("chiller_run_info{backend=\"simulated\",mailbox=\"none\",workers=\"0\""));
    assert!(prom.contains("chiller_runtime_batches_drained"));
    assert!(prom.contains("chiller_runtime_timer_slop_ns_count 0"));
    assert!(prom.contains("chiller_runtime_trace_events_dropped 0"));
    for line in prom.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "malformed line {line:?}"
        );
    }
    let summary = report.summary();
    assert!(
        summary.starts_with("[simulated backend, no mailbox, 0 workers]"),
        "{summary}"
    );
}
