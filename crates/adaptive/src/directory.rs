//! The mutable placement directory: a `LookupTable` whose hot entries can
//! be re-published at runtime.
//!
//! Routing contract (the "no record unreachable" invariant): every record
//! always resolves to exactly one partition — an explicit entry if present,
//! the default partitioner otherwise. Entry flips happen at a single
//! virtual-time instant inside the migration protocol (the re-publish step
//! runs only once the record's copy exists at the destination), so there is
//! never a moment where the directory routes to a partition that does not
//! hold the record and will not transparently retry it.

use chiller_common::ids::{PartitionId, RecordId};
use chiller_storage::placement::Placement;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};

#[derive(Debug, Default)]
struct DirState {
    entries: HashMap<RecordId, PartitionId>,
    hot: HashSet<RecordId>,
}

/// Shared, mutable successor of the frozen §4.4 `LookupTable`: explicit
/// entries for (currently or formerly) hot records over a default
/// partitioner for everything else. All engines of a cluster share one
/// `Arc<Directory>`; mutation is only performed at deterministic points
/// (migration re-publish, epoch-boundary promotions/demotions), so runs
/// stay bit-reproducible.
pub struct Directory {
    default: Arc<dyn Placement + Send + Sync>,
    state: RwLock<DirState>,
}

impl Directory {
    pub fn new(
        default: Arc<dyn Placement + Send + Sync>,
        entries: impl IntoIterator<Item = (RecordId, PartitionId)>,
        hot: impl IntoIterator<Item = RecordId>,
    ) -> Self {
        Directory {
            default,
            state: RwLock::new(DirState {
                entries: entries.into_iter().collect(),
                hot: hot.into_iter().collect(),
            }),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, DirState> {
        self.state.read().expect("directory lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, DirState> {
        self.state.write().expect("directory lock poisoned")
    }

    /// Whether the record is currently flagged hot (drives the §3.3 region
    /// decision and the hot/cold contention histograms).
    pub fn is_hot(&self, record: RecordId) -> bool {
        self.read().hot.contains(&record)
    }

    /// The partition the default (fallback) partitioner assigns — the
    /// record's "home" when it carries no explicit entry.
    pub fn home_of(&self, record: RecordId) -> PartitionId {
        self.default.partition_of(record)
    }

    /// Re-publish a record's location after its copy has been installed at
    /// `to` (the migration protocol's flip). Dropping back to the default
    /// partition of a cooled record removes the entry entirely, shrinking
    /// the lookup table; otherwise the entry is set. Idempotent.
    pub fn relocate(&self, record: RecordId, to: PartitionId, hot_after: bool) {
        let mut st = self.write();
        if !hot_after && to == self.default.partition_of(record) {
            st.entries.remove(&record);
        } else {
            st.entries.insert(record, to);
        }
        if hot_after {
            st.hot.insert(record);
        } else {
            st.hot.remove(&record);
        }
    }

    /// Flag a record hot in place (it already lives on the right
    /// partition): pure metadata, no data movement. Idempotent.
    pub fn promote(&self, record: RecordId, at: PartitionId) {
        let mut st = self.write();
        st.entries.insert(record, at);
        st.hot.insert(record);
    }

    /// Remove the hot flag. The explicit entry is dropped only when it
    /// matches the record's default partition — a displaced entry must stay
    /// until a later plan migrates the record home, or routing would point
    /// at a partition that does not hold the record. Idempotent.
    pub fn demote(&self, record: RecordId) {
        let mut st = self.write();
        st.hot.remove(&record);
        if st.entries.get(&record) == Some(&self.default.partition_of(record)) {
            st.entries.remove(&record);
        }
    }

    /// Sorted snapshot of the explicit entries (planner diff + tests).
    pub fn entries_snapshot(&self) -> Vec<(RecordId, PartitionId)> {
        let mut v: Vec<(RecordId, PartitionId)> =
            self.read().entries.iter().map(|(r, p)| (*r, *p)).collect();
        v.sort();
        v
    }

    /// Sorted snapshot of the hot set.
    pub fn hot_snapshot(&self) -> Vec<RecordId> {
        let mut v: Vec<RecordId> = self.read().hot.iter().copied().collect();
        v.sort();
        v
    }
}

impl Placement for Directory {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        match self.read().entries.get(&record) {
            Some(p) => *p,
            None => self.default.partition_of(record),
        }
    }

    fn lookup_entries(&self) -> usize {
        self.read().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::TableId;
    use chiller_storage::placement::HashPlacement;

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    fn dir() -> Directory {
        Directory::new(Arc::new(HashPlacement::new(4)), [], [])
    }

    #[test]
    fn falls_back_to_default_without_entries() {
        let d = dir();
        let h = HashPlacement::new(4);
        for k in 0..100 {
            assert_eq!(d.partition_of(rid(k)), h.partition_of(rid(k)));
            assert!(!d.is_hot(rid(k)));
        }
        assert_eq!(d.lookup_entries(), 0);
    }

    #[test]
    fn relocate_republishes_and_flags_hot() {
        let d = dir();
        let r = rid(7);
        let target = PartitionId((d.home_of(r).0 + 1) % 4);
        d.relocate(r, target, true);
        assert_eq!(d.partition_of(r), target);
        assert!(d.is_hot(r));
        assert_eq!(d.lookup_entries(), 1);
    }

    #[test]
    fn relocate_home_cold_drops_entry() {
        let d = dir();
        let r = rid(7);
        d.relocate(r, PartitionId((d.home_of(r).0 + 1) % 4), true);
        d.relocate(r, d.home_of(r), false);
        assert_eq!(d.lookup_entries(), 0);
        assert!(!d.is_hot(r));
        assert_eq!(d.partition_of(r), d.home_of(r));
    }

    #[test]
    fn demote_keeps_displaced_entry_for_reachability() {
        let d = dir();
        let r = rid(3);
        let away = PartitionId((d.home_of(r).0 + 2) % 4);
        d.relocate(r, away, true);
        d.demote(r);
        assert!(!d.is_hot(r));
        // The record still physically lives at `away`: routing must follow.
        assert_eq!(d.partition_of(r), away);
        assert_eq!(d.lookup_entries(), 1);
    }

    #[test]
    fn mutations_are_idempotent() {
        let d = dir();
        let r = rid(11);
        let away = PartitionId((d.home_of(r).0 + 1) % 4);
        d.relocate(r, away, true);
        let snap = (d.entries_snapshot(), d.hot_snapshot());
        d.relocate(r, away, true);
        assert_eq!((d.entries_snapshot(), d.hot_snapshot()), snap);
        d.demote(r);
        let snap = (d.entries_snapshot(), d.hot_snapshot());
        d.demote(r);
        assert_eq!((d.entries_snapshot(), d.hot_snapshot()), snap);
    }

    #[test]
    fn promote_is_metadata_only() {
        let d = dir();
        let r = rid(5);
        let home = d.home_of(r);
        d.promote(r, home);
        assert!(d.is_hot(r));
        assert_eq!(d.partition_of(r), home);
    }
}
