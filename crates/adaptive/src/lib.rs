//! # chiller-adaptive
//!
//! Online adaptation of the §4 contention-aware layout. The paper's
//! pipeline is offline: a sampled trace feeds the partitioner once, and the
//! hot-record lookup table is frozen for the run. This crate closes that
//! loop at runtime as an epoch-driven feedback cycle:
//!
//! 1. a per-engine [`ContentionMonitor`]
//!    aggregates lock-conflict / abort / access counters and sampled
//!    transaction read/write-sets into bounded epoch summaries (decayed
//!    sketches, capped sample buffers);
//! 2. a [`Directory`] replaces the frozen
//!    `LookupTable`: the same hot-entry-over-default-partitioner placement,
//!    but mutable at deterministic points in virtual time;
//! 3. an [`AdaptivePlanner`] re-runs the existing
//!    `ChillerPartitioner`/`ContentionModel` incrementally over a sliding
//!    window of epoch summaries, aligns the resulting partition labels with
//!    the current layout, and diffs the two into a bounded
//!    [`MigrationPlan`].
//!
//! The migration *protocol* (lock, copy, re-home, re-publish) lives in
//! `chiller-cc`: migrations are ordinary NO_WAIT lock-based writes in
//! virtual time, so the determinism, balance-conservation and
//! replica-consistency invariants survive them unchanged. The epoch
//! scheduler that drives the cycle lives in the `chiller` run harness.

pub mod config;
pub mod directory;
pub mod monitor;
pub mod planner;

pub use config::AdaptiveConfig;
pub use directory::Directory;
pub use monitor::{ContentionMonitor, EpochSummary};
pub use planner::{AdaptivePlanner, MigrationPlan, RecordMove};
