//! Per-engine contention monitoring: the runtime replacement for the
//! paper's offline sampling service (§4.1).
//!
//! Each engine owns one [`ContentionMonitor`]. During execution it absorbs
//! cheap O(1) observations — lock conflicts, aborts, per-record accesses,
//! and every k-th committed transaction's read/write-set. At each epoch
//! boundary the run harness drains it into an [`EpochSummary`]; the
//! per-record sketch is decayed multiplicatively and pruned to a cap, so
//! monitor memory stays bounded no matter how long the run is or how many
//! distinct records it touches.

use chiller_common::ids::{NodeId, RecordId};
use chiller_partition::stats::TxnTrace;
use std::collections::HashMap;

/// Decayed per-record heat (exponential moving accumulation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecordHeat {
    /// Decayed access count (reads + writes observed at this engine).
    pub weight: f64,
    /// Decayed lock-conflict count.
    pub conflicts: f64,
}

/// What one engine hands the planner at an epoch boundary.
#[derive(Debug, Clone)]
pub struct EpochSummary {
    pub node: NodeId,
    /// Sampled committed transactions (1-in-`sample_every`, capped).
    pub sampled: Vec<TxnTrace>,
    /// Committed transactions this epoch (all, not just sampled).
    pub commits: u64,
    /// Transient aborts this epoch.
    pub aborts: u64,
    /// Lock conflicts observed at this engine's storage this epoch.
    pub conflicts: u64,
}

/// Bounded-memory contention aggregator owned by one engine.
#[derive(Debug)]
pub struct ContentionMonitor {
    sample_every: u64,
    max_samples: usize,
    decay: f64,
    max_sketch: usize,

    commits_seen: u64,
    sampled: Vec<TxnTrace>,
    epoch_commits: u64,
    epoch_aborts: u64,
    epoch_conflicts: u64,
    sketch: HashMap<RecordId, RecordHeat>,
}

impl ContentionMonitor {
    pub fn new(sample_every: u64, max_samples: usize, decay: f64, max_sketch: usize) -> Self {
        ContentionMonitor {
            sample_every: sample_every.max(1),
            max_samples,
            decay: decay.clamp(0.0, 1.0),
            max_sketch: max_sketch.max(1),
            commits_seen: 0,
            sampled: Vec::new(),
            epoch_commits: 0,
            epoch_aborts: 0,
            epoch_conflicts: 0,
            sketch: HashMap::new(),
        }
    }

    /// A transaction committed at this engine (coordinator side). Every
    /// `sample_every`-th commit contributes its read/write-set to the
    /// epoch's trace buffer, up to the cap.
    pub fn on_commit(&mut self, reads: Vec<RecordId>, writes: Vec<RecordId>) {
        self.on_commit_with(|| (reads, writes));
    }

    /// [`on_commit`](Self::on_commit) with the `(reads, writes)` sets built
    /// lazily — non-sampled commits (the vast majority) pay no allocation.
    pub fn on_commit_with(&mut self, build: impl FnOnce() -> (Vec<RecordId>, Vec<RecordId>)) {
        self.epoch_commits += 1;
        self.commits_seen += 1;
        if self.commits_seen.is_multiple_of(self.sample_every)
            && self.sampled.len() < self.max_samples
        {
            let (reads, writes) = build();
            self.sampled.push(TxnTrace::new(reads, writes));
        }
    }

    /// A transient abort at this engine (coordinator side).
    pub fn on_abort(&mut self) {
        self.epoch_aborts += 1;
    }

    /// A NO_WAIT lock conflict on `record` at this engine's storage.
    pub fn on_conflict(&mut self, record: RecordId) {
        self.epoch_conflicts += 1;
        self.sketch.entry(record).or_default().conflicts += 1.0;
    }

    /// A granted access to `record` at this engine's storage.
    pub fn on_access(&mut self, record: RecordId) {
        self.sketch.entry(record).or_default().weight += 1.0;
    }

    /// Records currently sketched (diagnostics / memory accounting).
    pub fn sketch_len(&self) -> usize {
        self.sketch.len()
    }

    /// The `n` heaviest sketched records, descending (ties by id).
    pub fn hottest(&self, n: usize) -> Vec<(RecordId, RecordHeat)> {
        let mut v: Vec<(RecordId, RecordHeat)> =
            self.sketch.iter().map(|(r, h)| (*r, *h)).collect();
        v.sort_by(|a, b| {
            b.1.weight
                .partial_cmp(&a.1.weight)
                .expect("finite weights")
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }

    /// Drain the epoch: return the summary, decay and prune the sketch,
    /// reset the per-epoch counters.
    pub fn end_epoch(&mut self, node: NodeId) -> EpochSummary {
        let summary = EpochSummary {
            node,
            sampled: std::mem::take(&mut self.sampled),
            commits: std::mem::take(&mut self.epoch_commits),
            aborts: std::mem::take(&mut self.epoch_aborts),
            conflicts: std::mem::take(&mut self.epoch_conflicts),
        };
        for heat in self.sketch.values_mut() {
            heat.weight *= self.decay;
            heat.conflicts *= self.decay;
        }
        self.sketch.retain(|_, h| h.weight >= 1e-3);
        if self.sketch.len() > self.max_sketch {
            let keep: std::collections::HashSet<RecordId> = self
                .hottest(self.max_sketch)
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            self.sketch.retain(|r, _| keep.contains(r));
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::TableId;

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    fn monitor() -> ContentionMonitor {
        ContentionMonitor::new(2, 100, 0.5, 8)
    }

    #[test]
    fn samples_every_kth_commit_up_to_cap() {
        let mut m = monitor();
        for i in 0..10 {
            m.on_commit(vec![rid(i)], vec![]);
        }
        let s = m.end_epoch(NodeId(0));
        assert_eq!(s.commits, 10);
        assert_eq!(s.sampled.len(), 5, "1-in-2 sampling");
        // Cap respected.
        let mut m = ContentionMonitor::new(1, 3, 0.5, 8);
        for i in 0..10 {
            m.on_commit(vec![], vec![rid(i)]);
        }
        assert_eq!(m.end_epoch(NodeId(0)).sampled.len(), 3);
    }

    #[test]
    fn epoch_counters_reset() {
        let mut m = monitor();
        m.on_abort();
        m.on_conflict(rid(1));
        m.on_commit(vec![], vec![]);
        let s = m.end_epoch(NodeId(3));
        assert_eq!(
            (s.node, s.aborts, s.conflicts, s.commits),
            (NodeId(3), 1, 1, 1)
        );
        let s2 = m.end_epoch(NodeId(3));
        assert_eq!((s2.aborts, s2.conflicts, s2.commits), (0, 0, 0));
    }

    #[test]
    fn sketch_decays_and_prunes() {
        let mut m = monitor();
        for _ in 0..8 {
            m.on_access(rid(1));
        }
        m.on_access(rid(2));
        m.end_epoch(NodeId(0));
        let top = m.hottest(10);
        assert_eq!(top[0].0, rid(1));
        assert!((top[0].1.weight - 4.0).abs() < 1e-9, "decayed by 0.5");
        // Record 2 decays to 0.5, then 0.25 ... and is pruned below 1e-3.
        for _ in 0..12 {
            m.end_epoch(NodeId(0));
        }
        assert_eq!(m.sketch_len(), 0, "fully decayed sketch is empty");
    }

    #[test]
    fn sketch_is_capped_to_heaviest() {
        let mut m = monitor(); // cap 8
        for k in 0..32 {
            for _ in 0..(k + 1) {
                m.on_access(rid(k));
            }
        }
        m.end_epoch(NodeId(0));
        assert_eq!(m.sketch_len(), 8);
        let kept: Vec<RecordId> = m.hottest(8).into_iter().map(|(r, _)| r).collect();
        assert!(kept.contains(&rid(31)), "heaviest records survive the cap");
        assert!(!kept.contains(&rid(0)));
    }

    #[test]
    fn conflicts_tracked_per_record() {
        let mut m = monitor();
        m.on_conflict(rid(9));
        m.on_conflict(rid(9));
        m.on_access(rid(9));
        let h = m.hottest(1)[0];
        assert_eq!(h.0, rid(9));
        assert_eq!(h.1.conflicts, 2.0);
    }
}
