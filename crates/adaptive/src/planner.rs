//! Incremental replanning: the control-plane half of the adaptation loop.
//!
//! The planner keeps a sliding window of epoch summaries and, when asked,
//! re-runs the *existing* §4 pipeline (`ContentionModel` →
//! `ChillerPartitioner`) over the window's sampled transactions. Two things
//! make the result usable online:
//!
//! * **label alignment** — the min-cut partitioner numbers its parts
//!   arbitrarily, so a naive diff against the live layout would migrate
//!   everything every epoch. The desired partition labels are permuted to
//!   maximize (likelihood-weighted) agreement with where the hot records
//!   currently live, so a stable hotspot produces an empty plan;
//! * **bounded diffing** — the aligned desired layout is diffed against the
//!   current [`Directory`] into promotions (metadata only), demotions
//!   (hysteresis-gated metadata), and at most `max_moves_per_epoch` record
//!   migrations, hottest first.

use crate::config::AdaptiveConfig;
use crate::directory::Directory;
use crate::monitor::EpochSummary;
use chiller_common::ids::{PartitionId, RecordId};
use chiller_partition::stats::{StatsCollector, TxnTrace, WorkloadTrace};
use chiller_partition::{ChillerPartitioner, ContentionModel, LoadMetric};
use chiller_storage::placement::Placement;
use std::collections::{HashMap, HashSet, VecDeque};

/// One planned record migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMove {
    pub record: RecordId,
    pub from: PartitionId,
    pub to: PartitionId,
    /// Whether the record is hot in the desired layout (false for
    /// cooled records being migrated back to their default partition).
    pub hot_after: bool,
}

/// The bounded diff between the desired and current layouts.
#[derive(Debug, Clone, Default)]
pub struct MigrationPlan {
    /// Data movements, hottest first, capped at `max_moves_per_epoch`.
    pub moves: Vec<RecordMove>,
    /// Records to flag hot in place (already on the right partition).
    pub promotions: Vec<(RecordId, PartitionId)>,
    /// Records to un-flag (entry dropped only if it matches the default).
    pub demotions: Vec<RecordId>,
}

impl MigrationPlan {
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.promotions.is_empty() && self.demotions.is_empty()
    }
}

/// Sliding-window replanner over live epoch summaries.
pub struct AdaptivePlanner {
    cfg: AdaptiveConfig,
    partitions: u32,
    /// Last `window_epochs` epochs of merged samples.
    window: VecDeque<Vec<TxnTrace>>,
    epochs_absorbed: u64,
}

impl AdaptivePlanner {
    pub fn new(cfg: AdaptiveConfig, partitions: u32) -> Self {
        assert!(partitions >= 1);
        AdaptivePlanner {
            cfg,
            partitions,
            window: VecDeque::new(),
            epochs_absorbed: 0,
        }
    }

    pub fn epochs_absorbed(&self) -> u64 {
        self.epochs_absorbed
    }

    /// Fold one epoch's per-engine summaries into the window (engine order
    /// must be deterministic — the harness iterates nodes in id order).
    pub fn absorb(&mut self, summaries: &[EpochSummary]) {
        let merged: Vec<TxnTrace> = summaries
            .iter()
            .flat_map(|s| s.sampled.iter().cloned())
            .collect();
        self.window.push_back(merged);
        while self.window.len() > self.cfg.window_epochs {
            self.window.pop_front();
        }
        self.epochs_absorbed += 1;
    }

    /// Replan over the current window and diff against `dir`. Records in
    /// `in_flight` (migrations still running) are never re-planned.
    pub fn plan(&self, dir: &Directory, in_flight: &HashSet<RecordId>) -> MigrationPlan {
        let txns: Vec<TxnTrace> = self.window.iter().flatten().cloned().collect();
        if txns.len() < self.cfg.min_window_txns {
            return MigrationPlan::default();
        }

        // Samples are 1-in-k of the real stream: shrink the window span so
        // the model sees true arrival rates.
        let window_ns =
            (self.cfg.epoch.as_nanos() * self.window.len() as u64) / self.cfg.sample_every.max(1);
        let model = ContentionModel::new(self.cfg.lock_window_ns, window_ns.max(1) as f64);
        let mut partitioner = ChillerPartitioner::new(self.partitions, model);
        partitioner.hot_threshold = self.cfg.hot_threshold;
        partitioner.epsilon = self.cfg.epsilon;
        partitioner.load_metric = LoadMetric::Transactions;
        let trace = WorkloadTrace::new(txns, window_ns.max(1));
        let part = partitioner.partition(&trace);

        let likelihood: HashMap<RecordId, f64> = part.hot_likelihoods.iter().copied().collect();
        let relabel = align_labels(
            &part.hot_assignments,
            &likelihood,
            |r| dir.partition_of(r),
            self.partitions,
        );
        let desired: HashMap<RecordId, PartitionId> = part
            .hot_assignments
            .iter()
            .map(|(r, p)| (*r, relabel[p.idx()]))
            .collect();

        // Likelihoods of *current* entries, for hysteresis-gated demotion.
        let mut collector = StatsCollector::new();
        collector.observe_all(&trace);

        let mut plan = MigrationPlan::default();

        // Desired-hot records, hottest first (deterministic order).
        for &(r, _) in &part.hot_likelihoods {
            if in_flight.contains(&r) {
                continue;
            }
            let want = desired[&r];
            let cur = dir.partition_of(r);
            if cur == want {
                if !dir.is_hot(r) {
                    plan.promotions.push((r, cur));
                }
            } else {
                plan.moves.push(RecordMove {
                    record: r,
                    from: cur,
                    to: want,
                    hot_after: true,
                });
            }
        }

        // Currently-hot records that cooled below the demotion threshold.
        for r in dir.hot_snapshot() {
            if in_flight.contains(&r) || desired.contains_key(&r) {
                continue;
            }
            if model.likelihood(collector.stats(r)) < self.cfg.cool_threshold {
                plan.demotions.push(r);
            }
        }

        // Cooled records stranded away from home: migrate them back while
        // the move budget allows, so the lookup table shrinks again.
        for (r, cur) in dir.entries_snapshot() {
            if plan.moves.len() >= self.cfg.max_moves_per_epoch {
                break;
            }
            if in_flight.contains(&r) || desired.contains_key(&r) || dir.is_hot(r) {
                // (still-hot entries were handled above; hot records being
                // demoted this epoch go home in a later epoch)
                continue;
            }
            let home = dir.home_of(r);
            if cur != home {
                plan.moves.push(RecordMove {
                    record: r,
                    from: cur,
                    to: home,
                    hot_after: false,
                });
            }
        }

        plan.moves.truncate(self.cfg.max_moves_per_epoch);
        plan
    }
}

/// Permute the partitioner's arbitrary labels to best match the current
/// locations of the hot records (likelihood-weighted greedy matching).
/// Returns `relabel[new_label] = partition to use instead`.
fn align_labels(
    desired: &HashMap<RecordId, PartitionId>,
    likelihood: &HashMap<RecordId, f64>,
    current: impl Fn(RecordId) -> PartitionId,
    k: u32,
) -> Vec<PartitionId> {
    let k = k as usize;
    // overlap[new][cur] = summed likelihood of records the relabeling
    // new -> cur would keep in place. Accumulate in sorted record order:
    // HashMap iteration order varies per instance, and f64 addition is not
    // associative, so an unsorted walk could flip near-tied greedy picks
    // between otherwise identical runs.
    let mut sorted: Vec<(RecordId, PartitionId)> = desired.iter().map(|(r, p)| (*r, *p)).collect();
    sorted.sort();
    let mut overlap = vec![vec![0.0f64; k]; k];
    for (r, new_label) in sorted {
        let cur = current(r);
        if new_label.idx() < k && cur.idx() < k {
            overlap[new_label.idx()][cur.idx()] += likelihood.get(&r).copied().unwrap_or(1e-9);
        }
    }
    let mut relabel: Vec<Option<PartitionId>> = vec![None; k];
    let mut used = vec![false; k];
    // Greedy: repeatedly take the heaviest unmatched (new, cur) pair.
    for _ in 0..k {
        let mut best: Option<(usize, usize, f64)> = None;
        for (n, row) in overlap.iter().enumerate() {
            if relabel[n].is_some() {
                continue;
            }
            for (c, &w) in row.iter().enumerate() {
                if used[c] {
                    continue;
                }
                if best.map(|(_, _, bw)| w > bw).unwrap_or(true) {
                    best = Some((n, c, w));
                }
            }
        }
        let Some((n, c, _)) = best else { break };
        relabel[n] = Some(PartitionId(c as u32));
        used[c] = true;
    }
    // Any leftover labels (k exhausted) keep remaining partitions in order.
    let mut free = (0..k).filter(|&c| !used[c]);
    relabel
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| PartitionId(free.next().expect("k slots") as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::{NodeId, TableId};
    use chiller_common::time::Duration;
    use chiller_storage::placement::HashPlacement;
    use std::sync::Arc;

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            epoch: Duration::from_millis(2),
            sample_every: 1,
            min_window_txns: 50,
            window_epochs: 2,
            ..AdaptiveConfig::default()
        }
    }

    fn dir() -> Directory {
        Directory::new(Arc::new(HashPlacement::new(4)), [], [])
    }

    /// A hotspot over records `base..base+4`, co-written in pairs, plus
    /// cold uniform traffic.
    fn hot_epoch(base: u64, n: usize) -> EpochSummary {
        let mut sampled = Vec::new();
        for i in 0..n {
            let pair = (base + (i as u64 % 2) * 2, base + (i as u64 % 2) * 2 + 1);
            sampled.push(TxnTrace::new(
                vec![rid(10_000 + (i as u64 * 37) % 5_000)],
                vec![rid(pair.0), rid(pair.1)],
            ));
        }
        EpochSummary {
            node: NodeId(0),
            sampled,
            commits: n as u64,
            aborts: 0,
            conflicts: n as u64 / 4,
        }
    }

    #[test]
    fn thin_data_yields_empty_plan() {
        let mut p = AdaptivePlanner::new(cfg(), 4);
        p.absorb(&[hot_epoch(0, 10)]);
        assert!(p.plan(&dir(), &HashSet::new()).is_empty());
    }

    #[test]
    fn detects_hotspot_and_plans_colocation() {
        let mut p = AdaptivePlanner::new(cfg(), 4);
        p.absorb(&[hot_epoch(0, 400)]);
        let d = dir();
        let plan = p.plan(&d, &HashSet::new());
        assert!(!plan.is_empty(), "hotspot must produce a plan");
        // Every hot record ends up either promoted in place or moved; the
        // co-written pairs must land on a common partition.
        let mut target: HashMap<RecordId, PartitionId> = HashMap::new();
        for (r, at) in &plan.promotions {
            target.insert(*r, *at);
        }
        for m in &plan.moves {
            assert_ne!(m.from, m.to, "no-op moves must be diffed away");
            assert!(m.hot_after);
            target.insert(m.record, m.to);
        }
        for pair in [(0u64, 1u64), (2, 3)] {
            if let (Some(a), Some(b)) = (target.get(&rid(pair.0)), target.get(&rid(pair.1))) {
                assert_eq!(a, b, "co-written pair split across partitions");
            }
        }
    }

    #[test]
    fn stable_hotspot_converges_to_empty_plan() {
        let mut p = AdaptivePlanner::new(cfg(), 4);
        p.absorb(&[hot_epoch(0, 400)]);
        let d = dir();
        let plan = p.plan(&d, &HashSet::new());
        // Apply the plan to the directory (as completed migrations would).
        for (r, at) in &plan.promotions {
            d.promote(*r, *at);
        }
        for m in &plan.moves {
            d.relocate(m.record, m.to, m.hot_after);
        }
        // Same workload again: label alignment must keep the layout.
        p.absorb(&[hot_epoch(0, 400)]);
        let plan2 = p.plan(&d, &HashSet::new());
        assert!(
            plan2.moves.is_empty() && plan2.promotions.is_empty(),
            "stable hotspot must not churn: {plan2:?}"
        );
    }

    #[test]
    fn shifted_hotspot_replans_and_old_set_cools() {
        let mut p = AdaptivePlanner::new(cfg(), 4);
        p.absorb(&[hot_epoch(0, 400)]);
        let d = dir();
        let plan = p.plan(&d, &HashSet::new());
        for (r, at) in &plan.promotions {
            d.promote(*r, *at);
        }
        for m in &plan.moves {
            d.relocate(m.record, m.to, m.hot_after);
        }
        // The hotspot moves to records 100..104 for two epochs (the old
        // epoch falls out of the window).
        p.absorb(&[hot_epoch(100, 400)]);
        p.absorb(&[hot_epoch(100, 400)]);
        let plan2 = p.plan(&d, &HashSet::new());
        let planned: HashSet<RecordId> = plan2
            .moves
            .iter()
            .map(|m| m.record)
            .chain(plan2.promotions.iter().map(|(r, _)| *r))
            .collect();
        assert!(
            planned.contains(&rid(100)) || planned.contains(&rid(101)),
            "new hotspot must be planned: {plan2:?}"
        );
        let demoted: HashSet<RecordId> = plan2.demotions.iter().copied().collect();
        assert!(
            demoted.contains(&rid(0)),
            "cooled hotspot must be demoted: {plan2:?}"
        );
    }

    #[test]
    fn in_flight_records_are_skipped() {
        let mut p = AdaptivePlanner::new(cfg(), 4);
        p.absorb(&[hot_epoch(0, 400)]);
        let d = dir();
        let all: HashSet<RecordId> = (0..4).map(rid).collect();
        let plan = p.plan(&d, &all);
        for m in &plan.moves {
            assert!(!all.contains(&m.record));
        }
        for (r, _) in &plan.promotions {
            assert!(!all.contains(r));
        }
    }

    #[test]
    fn move_budget_is_respected() {
        let mut c = cfg();
        c.max_moves_per_epoch = 1;
        let mut p = AdaptivePlanner::new(c, 4);
        p.absorb(&[hot_epoch(0, 400)]);
        let plan = p.plan(&dir(), &HashSet::new());
        assert!(plan.moves.len() <= 1);
    }

    #[test]
    fn align_labels_prefers_current_locations() {
        let mut desired = HashMap::new();
        let mut lik = HashMap::new();
        // New label 0 holds records currently on partition 2 and vice versa.
        desired.insert(rid(1), PartitionId(0));
        desired.insert(rid(2), PartitionId(2));
        lik.insert(rid(1), 0.9);
        lik.insert(rid(2), 0.8);
        let current = |r: RecordId| {
            if r == rid(1) {
                PartitionId(2)
            } else {
                PartitionId(0)
            }
        };
        let relabel = align_labels(&desired, &lik, current, 4);
        assert_eq!(relabel[0], PartitionId(2));
        assert_eq!(relabel[2], PartitionId(0));
        // Unused labels map to the remaining partitions, each used once.
        let mut all: Vec<u32> = relabel.iter().map(|p| p.0).collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }
}
