//! Knobs of the epoch-driven adaptation loop.

use chiller_common::time::Duration;

/// Configuration of the online adaptation cycle. Defaults are calibrated
/// for millisecond-scale simulated runs (epochs of 2ms over the default
/// RDMA-class network); production deployments would scale `epoch` up.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Epoch length: how often monitors are drained and the planner runs.
    pub epoch: Duration,
    /// Sample every k-th committed transaction into the trace buffer
    /// (the paper finds sparse sampling sufficient; rates are rescaled).
    pub sample_every: u64,
    /// Cap on sampled transactions per engine per epoch (bounded memory).
    pub max_samples_per_epoch: usize,
    /// Sliding window of epochs the planner replans over.
    pub window_epochs: usize,
    /// Cap on record migrations issued per epoch (bounded churn).
    pub max_moves_per_epoch: usize,
    /// Contention likelihood above which a record becomes hot (§4.4).
    pub hot_threshold: f64,
    /// Likelihood below which a hot record is demoted — strictly lower
    /// than `hot_threshold` so borderline records do not oscillate.
    pub cool_threshold: f64,
    /// Assumed average lock-hold window for the contention model (ns).
    pub lock_window_ns: f64,
    /// Minimum sampled transactions in the window before planning.
    pub min_window_txns: usize,
    /// Balance slack handed to the min-cut partitioner. Loose by default:
    /// hot records are a tiny fraction of the data, so the contention
    /// objective may co-locate dense cliques (as in the Figure 7 setup).
    pub epsilon: f64,
    /// Multiplicative decay applied to the per-record sketch each epoch.
    pub sketch_decay: f64,
    /// Cap on per-record sketch entries per engine (bounded memory).
    pub max_sketch_records: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            epoch: Duration::from_millis(2),
            sample_every: 2,
            max_samples_per_epoch: 2_000,
            window_epochs: 2,
            max_moves_per_epoch: 64,
            hot_threshold: 0.02,
            cool_threshold: 0.005,
            lock_window_ns: 30_000.0,
            min_window_txns: 200,
            epsilon: 8.0,
            sketch_decay: 0.5,
            max_sketch_records: 4_096,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let c = AdaptiveConfig::default();
        assert!(c.cool_threshold < c.hot_threshold, "hysteresis required");
        assert!(c.sample_every >= 1);
        assert!(c.window_epochs >= 1);
        assert!((0.0..=1.0).contains(&c.sketch_decay));
    }
}
