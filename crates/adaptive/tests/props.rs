//! Property tests for the migration-facing directory invariants:
//!
//! * **no record unreachable mid-plan** — under any interleaving of
//!   relocations, promotions and demotions, every record resolves to the
//!   partition that holds its (authoritative) copy;
//! * **plan application idempotent** — re-applying any completed mutation
//!   leaves the directory byte-identical.

use chiller_adaptive::Directory;
use chiller_common::ids::{PartitionId, RecordId, TableId};
use chiller_storage::placement::{HashPlacement, Placement};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const K: u32 = 4;

#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Completed migration of record `key` to partition `to` (hot flag
    /// per `hot_after`) — the re-publish flip.
    Relocate(u64, u32, bool),
    /// Metadata-only hot flag at the record's current location.
    Promote(u64),
    /// Metadata-only cool-down.
    Demote(u64),
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0u64..24, 0u32..K, any::<bool>()).prop_map(|(k, p, h)| Mutation::Relocate(k, p, h)),
        (0u64..24).prop_map(Mutation::Promote),
        (0u64..24).prop_map(Mutation::Demote),
    ]
}

fn rid(k: u64) -> RecordId {
    RecordId::new(TableId(1), k)
}

proptest! {
    /// Model the physical holder of every record alongside the directory:
    /// after each mutation the directory must route each record to its
    /// holder (reachability), and hot records must always carry an entry.
    #[test]
    fn directory_never_strands_a_record(ops in prop::collection::vec(mutation(), 1..120)) {
        let fallback = HashPlacement::new(K);
        let dir = Directory::new(Arc::new(HashPlacement::new(K)), [], []);
        // Physical location model: where each record's copy lives. Records
        // start at their default partition.
        let mut holder: HashMap<RecordId, PartitionId> = HashMap::new();
        for op in ops {
            match op {
                Mutation::Relocate(k, p, hot) => {
                    // The protocol flips the directory only once the copy
                    // exists at the destination.
                    holder.insert(rid(k), PartitionId(p));
                    dir.relocate(rid(k), PartitionId(p), hot);
                }
                Mutation::Promote(k) => {
                    let at = dir.partition_of(rid(k));
                    dir.promote(rid(k), at);
                }
                Mutation::Demote(k) => dir.demote(rid(k)),
            }
            for k in 0..24u64 {
                let physical = holder
                    .get(&rid(k))
                    .copied()
                    .unwrap_or_else(|| fallback.partition_of(rid(k)));
                prop_assert_eq!(
                    dir.partition_of(rid(k)),
                    physical,
                    "record {} routed away from its holder after {:?}",
                    k,
                    op
                );
            }
            // Hot records always resolve through an explicit entry.
            for r in dir.hot_snapshot() {
                prop_assert!(
                    dir.entries_snapshot().iter().any(|(er, _)| *er == r),
                    "hot record without an entry"
                );
            }
        }
    }

    /// Re-applying any mutation is a no-op on the directory state.
    #[test]
    fn directory_mutations_idempotent(ops in prop::collection::vec(mutation(), 1..80)) {
        let dir = Directory::new(Arc::new(HashPlacement::new(K)), [], []);
        for op in ops {
            let apply = |d: &Directory| match op {
                Mutation::Relocate(k, p, hot) => d.relocate(rid(k), PartitionId(p), hot),
                Mutation::Promote(k) => {
                    let at = d.partition_of(rid(k));
                    d.promote(rid(k), at);
                }
                Mutation::Demote(k) => d.demote(rid(k)),
            };
            apply(&dir);
            let snap = (dir.entries_snapshot(), dir.hot_snapshot());
            apply(&dir);
            prop_assert_eq!(
                (dir.entries_snapshot(), dir.hot_snapshot()),
                snap,
                "{:?} must be idempotent",
                op
            );
        }
    }
}
