//! Table-driven anomaly-injection tests: hand-built histories with known
//! anomalies must be flagged with the right classification, and serial
//! histories must always pass (ISSUE satellite 1).

use chiller_checker::{check_history, Anomaly, CheckMode};
use chiller_common::{NodeId, RecordId, TableId, TxnId};
use chiller_obs::{History, HistoryEvent, HistoryEventKind};

const T: TableId = TableId(7);

fn rid(k: u64) -> RecordId {
    RecordId::new(T, k)
}

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

/// Event-builder DSL: each event gets a monotonically increasing ts from
/// its position, so commit order == list order.
enum Ev {
    R(u64, u64, u64), // txn seq, key, version observed
    W(u64, u64, u64), // txn seq, key, version installed
    C(u64),           // txn seq commits
}

fn history(script: &[Ev]) -> History {
    let events = script
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let (ts, kind) = match *e {
                Ev::R(t, k, v) => (
                    i as u64,
                    HistoryEventKind::ReadObs {
                        txn: txn(t),
                        record: rid(k),
                        version: v,
                    },
                ),
                Ev::W(t, k, v) => (
                    i as u64,
                    HistoryEventKind::WriteObs {
                        txn: txn(t),
                        record: rid(k),
                        version: v,
                    },
                ),
                Ev::C(t) => (i as u64, HistoryEventKind::Commit { txn: txn(t) }),
            };
            HistoryEvent {
                ts,
                node: NodeId(0),
                kind,
            }
        })
        .collect();
    History { events, dropped: 0 }
}

struct Case {
    name: &'static str,
    script: Vec<Ev>,
    /// `None` = must pass; `Some(a)` = must flag exactly one violation of
    /// class `a`.
    expect: Option<Anomaly>,
}

fn cases() -> Vec<Case> {
    use Ev::*;
    vec![
        Case {
            name: "empty",
            script: vec![],
            expect: None,
        },
        Case {
            name: "serial_read_only",
            script: vec![R(1, 1, 0), C(1), R(2, 1, 0), R(2, 2, 0), C(2)],
            expect: None,
        },
        Case {
            name: "serial_rmw_chain",
            script: vec![
                R(1, 1, 0),
                W(1, 1, 1),
                C(1),
                R(2, 1, 1),
                W(2, 1, 2),
                C(2),
                R(3, 1, 2),
                W(3, 1, 3),
                C(3),
            ],
            expect: None,
        },
        Case {
            name: "serial_multi_key_transfer",
            // Classic conserving transfers, executed one after another.
            script: vec![
                R(1, 1, 0),
                R(1, 2, 0),
                W(1, 1, 1),
                W(1, 2, 1),
                C(1),
                R(2, 2, 1),
                R(2, 3, 0),
                W(2, 2, 2),
                W(2, 3, 1),
                C(2),
            ],
            expect: None,
        },
        Case {
            name: "concurrent_but_serializable_disjoint_keys",
            script: vec![R(1, 1, 0), R(2, 2, 0), W(2, 2, 1), W(1, 1, 1), C(2), C(1)],
            expect: None,
        },
        Case {
            name: "g1c_circular_information_flow",
            // T1 -wr(x)-> T2 -wr(y)-> T1: each saw the other's write.
            script: vec![W(1, 1, 1), W(2, 2, 1), R(2, 1, 1), R(1, 2, 1), C(1), C(2)],
            expect: Some(Anomaly::G1c),
        },
        Case {
            name: "lost_update_same_version_rmw",
            // Both read x@1, both overwrote it: T2's deposit vanishes.
            script: vec![
                R(0, 1, 0),
                W(0, 1, 1),
                C(0),
                R(1, 1, 1),
                R(2, 1, 1),
                W(1, 1, 2),
                W(2, 1, 3),
                C(1),
                C(2),
            ],
            expect: Some(Anomaly::LostUpdate),
        },
        Case {
            name: "write_skew_crossed_guards",
            // T1 checked x, wrote y; T2 checked y, wrote x — neither saw
            // the other's write (the classic on-call-doctors shape).
            script: vec![R(1, 1, 0), R(2, 2, 0), W(1, 2, 1), W(2, 1, 1), C(1), C(2)],
            expect: Some(Anomaly::WriteSkew),
        },
        Case {
            name: "general_three_txn_cycle",
            // T1 -rw(x)-> T2 -wr(y)-> T3 -rw(z)-> T1: mixed kinds, longer
            // than 2 — neither G1c nor lost update nor pure write skew.
            script: vec![
                R(1, 1, 0), // T1 read x@0 ...
                W(2, 1, 1), // ... T2 overwrote x        (T1 -rw-> T2)
                W(2, 2, 1), // T2 wrote y ...
                R(3, 2, 1), // ... T3 read it            (T2 -wr-> T3)
                R(3, 3, 0), // T3 read z@0 ...
                W(1, 3, 1), // ... T1 overwrote z        (T3 -rw-> T1)
                C(1),
                C(2),
                C(3),
            ],
            expect: Some(Anomaly::General),
        },
        Case {
            name: "aborted_attempt_cannot_poison",
            // Txn 9 read the about-to-be-lost version but never committed;
            // the survivors form a clean serial chain.
            script: vec![
                R(1, 1, 0),
                W(1, 1, 1),
                C(1),
                R(9, 1, 1), // aborted attempt: no C(9)
                R(2, 1, 1),
                W(2, 1, 2),
                C(2),
            ],
            expect: None,
        },
    ]
}

#[test]
fn table_driven_anomaly_classification() {
    for case in cases() {
        let h = history(&case.script);
        for mode in [CheckMode::Full, CheckMode::Window(64)] {
            let report = check_history(&h, mode);
            match case.expect {
                None => assert!(
                    report.ok(),
                    "{} [{}]: expected pass, got {:?}",
                    case.name,
                    mode.label(),
                    report.violations
                ),
                Some(anomaly) => {
                    assert_eq!(
                        report.violations.len(),
                        1,
                        "{} [{}]: expected exactly one violation, got {:?}",
                        case.name,
                        mode.label(),
                        report.violations
                    );
                    assert_eq!(
                        report.violations[0].anomaly,
                        anomaly,
                        "{} [{}]: misclassified: {}",
                        case.name,
                        mode.label(),
                        report.violations[0]
                    );
                }
            }
        }
    }
}

#[test]
fn violation_evidence_names_the_cycle() {
    use Ev::*;
    let h = history(&[R(1, 1, 0), W(1, 1, 1), R(2, 1, 0), W(2, 1, 2), C(1), C(2)]);
    let report = check_history(&h, CheckMode::Full);
    assert!(!report.ok());
    let v = &report.violations[0];
    assert_eq!(v.cycle.len(), 2);
    assert_eq!(v.edges.len(), v.cycle.len(), "one edge per step");
    for (i, e) in v.edges.iter().enumerate() {
        assert_eq!(e.from, v.cycle[i], "edge {i} leaves cycle node {i}");
        assert_eq!(
            e.to,
            v.cycle[(i + 1) % v.cycle.len()],
            "edge {i} enters the next cycle node"
        );
        assert_eq!(e.record, rid(1));
    }
    let line = format!("{v}");
    assert!(line.contains("cycle:"), "display form is readable: {line}");
}

#[test]
fn dropped_events_degrade_verdict_to_incomplete() {
    use Ev::*;
    let mut h = history(&[R(1, 1, 0), W(1, 1, 1), C(1)]);
    h.dropped = 3;
    let report = check_history(&h, CheckMode::Full);
    assert!(report.ok(), "no cycle in what survived");
    assert!(!report.is_complete(), "but the verdict is not complete");
    assert_eq!(report.events_dropped, 3);
    assert!(report.summary().contains("3 dropped"));
}

#[test]
fn off_mode_records_nothing_and_passes_everything() {
    use Ev::*;
    // Even a blatant lost update is vacuously "ok" when checking is off —
    // `ok()` means "no cycle found", and Off looks at nothing.
    let h = history(&[R(1, 1, 1), W(1, 1, 2), R(2, 1, 1), W(2, 1, 3), C(1), C(2)]);
    let report = check_history(&h, CheckMode::Off);
    assert!(report.ok());
    assert_eq!(report.windows, 0);
    assert_eq!(report.edges, 0);
}
