//! Property-based mutation harness (ISSUE satellite 2): random *serial*
//! histories are always accepted, and minimally corrupting one — shifting
//! a single observed read version backward, or swapping the installed
//! versions of two adjacent writers of one record — is always rejected.
//!
//! The generator simulates a versioned key-value store executing randomly
//! generated transactions one at a time, so the ground-truth history is
//! serializable by construction; the mutations then re-introduce exactly
//! the observation a real lost update would produce.

use chiller_checker::{check_history, Anomaly, CheckMode};
use chiller_common::{NodeId, RecordId, TableId, TxnId};
use chiller_obs::{History, HistoryEvent, HistoryEventKind};
use proptest::prelude::*;
use std::collections::HashMap;

const KEYS: u64 = 8;

fn rid(k: u64) -> RecordId {
    RecordId::new(TableId(3), k)
}

/// One generated transaction: keys it reads, keys it read-modify-writes.
/// (RMW keys are read implicitly; duplicates dedupe at build time.)
#[derive(Debug, Clone)]
struct Spec {
    reads: Vec<u64>,
    rmws: Vec<u64>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(0u64..KEYS, 1..4),
        prop::collection::vec(0u64..KEYS, 0..3),
    )
        .prop_map(|(reads, mut rmws)| {
            rmws.sort_unstable();
            rmws.dedup();
            Spec { reads, rmws }
        })
}

/// Execute the specs serially against a versioned model store, emitting the
/// exact observation stream the engines would record.
fn serial_history(specs: &[Spec]) -> History {
    let mut versions: HashMap<u64, u64> = HashMap::new();
    let mut events = Vec::new();
    let mut ts = 0u64;
    for (i, s) in specs.iter().enumerate() {
        let txn = TxnId::new(NodeId(0), i as u64 + 1);
        let mut push = |kind| {
            ts += 1;
            events.push(HistoryEvent {
                ts,
                node: NodeId(0),
                kind,
            });
        };
        for &k in s.reads.iter().filter(|k| !s.rmws.contains(k)) {
            push(HistoryEventKind::ReadObs {
                txn,
                record: rid(k),
                version: versions.get(&k).copied().unwrap_or(0),
            });
        }
        for &k in &s.rmws {
            let v = versions.get(&k).copied().unwrap_or(0);
            push(HistoryEventKind::ReadObs {
                txn,
                record: rid(k),
                version: v,
            });
            versions.insert(k, v + 1);
            push(HistoryEventKind::WriteObs {
                txn,
                record: rid(k),
                version: v + 1,
            });
        }
        push(HistoryEventKind::Commit { txn });
    }
    History { events, dropped: 0 }
}

proptest! {
    /// Serial histories are serializable by construction: the checker must
    /// accept every one, under every mode.
    #[test]
    fn serial_histories_always_accepted(specs in prop::collection::vec(spec(), 1..40)) {
        let h = serial_history(&specs);
        for mode in [CheckMode::Full, CheckMode::Window(8), CheckMode::Window(2)] {
            let report = check_history(&h, mode);
            prop_assert!(
                report.ok(),
                "serial history rejected under {}: {:?}",
                mode.label(),
                report.violations
            );
            prop_assert!(report.is_complete());
        }
    }

    /// Shift one RMW's observed read version back by one — the observation a
    /// lost update leaves behind (two writers consumed the same version) —
    /// and the checker must reject, classifying it as a lost update.
    #[test]
    fn stale_read_version_always_rejected(
        specs in prop::collection::vec(spec(), 2..40),
        pick in any::<u64>(),
    ) {
        let mut h = serial_history(&specs);
        // Candidate mutations: ReadObs with version ≥ 1 belonging to a txn
        // that also wrote the record (i.e. an RMW read of a non-initial
        // version, so another committed writer installed what we're about
        // to pretend we read).
        let writers: Vec<(TxnId, RecordId)> = h.events.iter().filter_map(|e| match e.kind {
            HistoryEventKind::WriteObs { txn, record, .. } => Some((txn, record)),
            _ => None,
        }).collect();
        let candidates: Vec<usize> = h.events.iter().enumerate().filter_map(|(i, e)| {
            match e.kind {
                HistoryEventKind::ReadObs { txn, record, version }
                    if version >= 1 && writers.contains(&(txn, record)) => Some(i),
                _ => None,
            }
        }).collect();
        if candidates.is_empty() {
            return Ok(()); // too little write contention generated; vacuous case
        }
        let idx = candidates[(pick % candidates.len() as u64) as usize];
        if let HistoryEventKind::ReadObs { ref mut version, .. } = h.events[idx].kind {
            *version -= 1;
        }
        let report = check_history(&h, CheckMode::Full);
        prop_assert!(!report.ok(), "stale RMW read must be rejected");
        prop_assert!(
            report.violations.iter().any(|v| v.anomaly == Anomaly::LostUpdate),
            "expected a lost-update cycle, got {:?}",
            report.violations
        );
    }

    /// Swap the installed versions of two adjacent writers of one record —
    /// the observation of a commit-order inversion — and the checker must
    /// reject: the version order now contradicts what the earlier writer read.
    #[test]
    fn swapped_install_order_always_rejected(
        specs in prop::collection::vec(spec(), 2..40),
        pick in any::<u64>(),
    ) {
        let mut h = serial_history(&specs);
        // Writer event indices per record, in version order (serial
        // execution emits them in increasing-version order already).
        let mut by_record: HashMap<RecordId, Vec<usize>> = HashMap::new();
        for (i, e) in h.events.iter().enumerate() {
            if let HistoryEventKind::WriteObs { record, .. } = e.kind {
                by_record.entry(record).or_default().push(i);
            }
        }
        let pairs: Vec<(usize, usize)> = by_record
            .values()
            .flat_map(|idxs| idxs.windows(2).map(|w| (w[0], w[1])))
            .collect();
        if pairs.is_empty() {
            return Ok(()); // no record written twice; vacuous case
        }
        let (a, b) = pairs[(pick % pairs.len() as u64) as usize];
        let (va, vb) = match (h.events[a].kind, h.events[b].kind) {
            (
                HistoryEventKind::WriteObs { version: va, .. },
                HistoryEventKind::WriteObs { version: vb, .. },
            ) => (va, vb),
            _ => unreachable!("pair indices point at writes"),
        };
        if let HistoryEventKind::WriteObs { ref mut version, .. } = h.events[a].kind {
            *version = vb;
        }
        if let HistoryEventKind::WriteObs { ref mut version, .. } = h.events[b].kind {
            *version = va;
        }
        let report = check_history(&h, CheckMode::Full);
        prop_assert!(
            !report.ok(),
            "swapped install order must be rejected (versions {va}<->{vb})"
        );
    }
}
