//! The `CHILLER_CHECK` knob: off, bounded sliding windows, or full-history.

/// Default window size (committed transactions) for `CHILLER_CHECK=window`.
pub const DEFAULT_CHECK_WINDOW: usize = 1024;

/// How much of the commit order each cycle search covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// No checking: no rings exist, record calls are a single branch.
    Off,
    /// Sliding windows of `n` committed transactions, overlapping by
    /// `n/2`: cycles among transactions committed within `n/2` of each
    /// other are always caught; wider cycles may be missed. Bounds the
    /// cycle search on long histories.
    Window(usize),
    /// One window over the whole history: complete, O(history) memory.
    Full,
}

impl CheckMode {
    /// Parse `CHILLER_CHECK`: unset/`off`/`0` → `Off`, `window` →
    /// `Window(`[`DEFAULT_CHECK_WINDOW`]`)`, `window=N` → `Window(N)`,
    /// `full`/`1` → `Full`.
    ///
    /// # Panics
    /// On an unrecognized value, so a typo'd knob fails loudly instead of
    /// silently running unchecked (same contract as `CHILLER_TRACE`).
    pub fn from_env() -> CheckMode {
        match std::env::var("CHILLER_CHECK") {
            Err(_) => CheckMode::Off,
            Ok(v) => match v.as_str() {
                "" | "off" | "0" => CheckMode::Off,
                "full" | "1" => CheckMode::Full,
                "window" => CheckMode::Window(DEFAULT_CHECK_WINDOW),
                other => match other.strip_prefix("window=") {
                    Some(n) => CheckMode::Window(
                        n.parse::<usize>()
                            .unwrap_or_else(|_| {
                                panic!("CHILLER_CHECK=window=N needs an integer, got {n:?}")
                            })
                            .max(2),
                    ),
                    None => panic!("CHILLER_CHECK must be off|window|window=N|full, got {other:?}"),
                },
            },
        }
    }

    /// History ring capacity from `CHILLER_CHECK_BUF` (events per engine),
    /// defaulting to [`chiller_obs::DEFAULT_HISTORY_BUF`].
    ///
    /// # Panics
    /// On anything that is not a positive integer — a zero-capacity ring
    /// would drop every observation and turn each verdict `incomplete`,
    /// which is worse than failing at startup (same loud-knob contract as
    /// `CHILLER_CHECK` and `CHILLER_WORKERS`).
    pub fn buf_from_env() -> usize {
        match std::env::var("CHILLER_CHECK_BUF") {
            Err(_) => chiller_obs::DEFAULT_HISTORY_BUF,
            Ok(v) => Self::parse_buf(&v),
        }
    }

    /// Parse one `CHILLER_CHECK_BUF` value; panics unless it is a positive
    /// integer (factored out of [`Self::buf_from_env`] so the loudness
    /// contract is testable without mutating process environment).
    pub fn parse_buf(v: &str) -> usize {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("CHILLER_CHECK_BUF must be a positive integer, got {v:?}"),
        }
    }

    /// Whether any observations are recorded at all.
    pub fn enabled(self) -> bool {
        !matches!(self, CheckMode::Off)
    }

    /// Short label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            CheckMode::Off => "off",
            CheckMode::Window(_) => "window",
            CheckMode::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_parses_positive_integers() {
        assert_eq!(CheckMode::parse_buf("1"), 1);
        assert_eq!(CheckMode::parse_buf("65536"), 65536);
    }

    #[test]
    #[should_panic(expected = "CHILLER_CHECK_BUF must be a positive integer")]
    fn buf_rejects_zero_loudly() {
        CheckMode::parse_buf("0");
    }

    #[test]
    #[should_panic(expected = "CHILLER_CHECK_BUF must be a positive integer")]
    fn buf_rejects_garbage_loudly() {
        CheckMode::parse_buf("lots");
    }

    #[test]
    fn labels_and_enabled() {
        assert!(!CheckMode::Off.enabled());
        assert!(CheckMode::Window(16).enabled());
        assert!(CheckMode::Full.enabled());
        assert_eq!(CheckMode::Off.label(), "off");
        assert_eq!(CheckMode::Window(16).label(), "window");
        assert_eq!(CheckMode::Full.label(), "full");
    }
}
