//! Committed-transaction assembly from a drained observation stream.

use chiller_common::{RecordId, TxnId};
use chiller_obs::{History, HistoryEventKind};
use std::collections::HashMap;

/// One committed transaction's observable footprint: the versions it read
/// and the versions its writes installed, keyed by record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Transaction id (unique per attempt; only committed attempts appear).
    pub txn: TxnId,
    /// Commit timestamp on the coordinator's clock, used only to order
    /// transactions into windows — dependency edges come from versions.
    pub commit_ts: u64,
    /// `(record, version observed)` for every read. Version 0 means the
    /// record's initial (loaded, never-written) state.
    pub reads: Vec<(RecordId, u64)>,
    /// `(record, version installed)` for every write, deletes included.
    pub writes: Vec<(RecordId, u64)>,
}

/// Group a drained history by transaction and keep only transactions with
/// a commit marker, sorted by `(commit_ts, txn)` so the output is
/// deterministic regardless of drain interleaving across engines.
///
/// Aborted attempts filter out for free: every attempt runs under a fresh
/// `TxnId`, and an attempt that never committed never emits
/// [`HistoryEventKind::Commit`], so its reads and writes are dropped here
/// — they never installed or leaked state a committed transaction could
/// depend on.
pub fn assemble(history: &History) -> Vec<CommittedTxn> {
    struct Partial {
        reads: Vec<(RecordId, u64)>,
        writes: Vec<(RecordId, u64)>,
        commit_ts: Option<u64>,
    }
    let mut by_txn: HashMap<TxnId, Partial> = HashMap::new();
    for ev in &history.events {
        let entry = by_txn.entry(ev.kind.txn()).or_insert_with(|| Partial {
            reads: Vec::new(),
            writes: Vec::new(),
            commit_ts: None,
        });
        match ev.kind {
            HistoryEventKind::ReadObs {
                record, version, ..
            } => entry.reads.push((record, version)),
            HistoryEventKind::WriteObs {
                record, version, ..
            } => entry.writes.push((record, version)),
            HistoryEventKind::Commit { .. } => entry.commit_ts = Some(ev.ts),
        }
    }
    let mut txns: Vec<CommittedTxn> = by_txn
        .into_iter()
        .filter_map(|(txn, p)| {
            let commit_ts = p.commit_ts?;
            let mut reads = p.reads;
            // Re-reads under a held lock observe the same version twice
            // (e.g. read_for_update + update of one record); exact
            // duplicates carry no extra information. Differing duplicates
            // are kept — an intra-transaction version change is precisely
            // the kind of inconsistency the edge builder must see.
            reads.sort_unstable();
            reads.dedup();
            Some(CommittedTxn {
                txn,
                commit_ts,
                reads,
                writes: p.writes,
            })
        })
        .collect();
    txns.sort_unstable_by_key(|t| (t.commit_ts, t.txn));
    txns
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::{NodeId, TableId};
    use chiller_obs::HistoryEvent;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    fn ev(ts: u64, kind: HistoryEventKind) -> HistoryEvent {
        HistoryEvent {
            ts,
            node: NodeId(0),
            kind,
        }
    }

    #[test]
    fn aborted_attempts_drop_out() {
        let h = History {
            events: vec![
                ev(
                    1,
                    HistoryEventKind::ReadObs {
                        txn: txn(1),
                        record: rid(5),
                        version: 0,
                    },
                ),
                // txn 2 read but never committed (aborted attempt).
                ev(
                    2,
                    HistoryEventKind::ReadObs {
                        txn: txn(2),
                        record: rid(5),
                        version: 0,
                    },
                ),
                ev(
                    3,
                    HistoryEventKind::WriteObs {
                        txn: txn(1),
                        record: rid(5),
                        version: 1,
                    },
                ),
                ev(4, HistoryEventKind::Commit { txn: txn(1) }),
            ],
            dropped: 0,
        };
        let txns = assemble(&h);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].txn, txn(1));
        assert_eq!(txns[0].commit_ts, 4);
        assert_eq!(txns[0].reads, vec![(rid(5), 0)]);
        assert_eq!(txns[0].writes, vec![(rid(5), 1)]);
    }

    #[test]
    fn duplicate_reads_dedupe_and_order_is_by_commit_ts() {
        let h = History {
            events: vec![
                ev(9, HistoryEventKind::Commit { txn: txn(2) }),
                ev(
                    1,
                    HistoryEventKind::ReadObs {
                        txn: txn(1),
                        record: rid(5),
                        version: 3,
                    },
                ),
                ev(
                    1,
                    HistoryEventKind::ReadObs {
                        txn: txn(1),
                        record: rid(5),
                        version: 3,
                    },
                ),
                ev(5, HistoryEventKind::Commit { txn: txn(1) }),
            ],
            dropped: 0,
        };
        let txns = assemble(&h);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].txn, txn(1), "sorted by commit ts");
        assert_eq!(txns[0].reads.len(), 1, "exact duplicate reads dedupe");
    }
}
