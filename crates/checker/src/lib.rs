//! # chiller-checker
//!
//! Black-box serializability checking over recorded histories
//! (DESIGN.md §14), after Huang et al.'s dependency-graph approach to
//! black-box isolation checking: no knowledge of the protocol under test,
//! only the versioned reads and writes it admits to.
//!
//! The pipeline:
//!
//! 1. Engines record observations — `(txn, record, version)` for every
//!    read and every installed write, plus a commit marker — through the
//!    lock-free ring transport in `chiller-obs` ([`chiller_obs::HistoryRecorder`]).
//! 2. [`assemble`] groups the drained [`chiller_obs::History`] by
//!    transaction and keeps only committed ones (every attempt runs under
//!    a fresh `TxnId`, so aborted attempts vanish here without any
//!    record-time filtering).
//! 3. [`check`] builds per-record dependency edges — **WR** (read-from),
//!    **WW** (version order), **RW** (anti-dependency) — over bounded
//!    sliding windows of the commit order, runs Tarjan's SCC search, and
//!    classifies every cycle found ([`Anomaly`]): a serializable history
//!    has an acyclic dependency graph, so any cycle is a violation.
//!
//! Windowing ([`CheckMode::Window`]) bounds memory and time on long
//! histories at the cost of missing cycles wider than a window; windows
//! overlap by half so neighboring-transaction cycles never straddle a cut.
//! [`CheckMode::Full`] checks one window covering everything — the right
//! setting for tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod graph;
mod mode;
mod model;

pub use graph::{check, Anomaly, CheckReport, DepEdge, DepKind, Violation};
pub use mode::{CheckMode, DEFAULT_CHECK_WINDOW};
pub use model::{assemble, CommittedTxn};

use chiller_obs::History;

/// Assemble and check a drained history in one step: the whole pipeline
/// behind a single call for the `Cluster` drain path.
pub fn check_history(history: &History, mode: CheckMode) -> CheckReport {
    let txns = assemble(history);
    let mut report = check(&txns, mode);
    report.events_dropped = history.dropped;
    report
}
