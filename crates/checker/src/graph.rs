//! Dependency-graph construction, windowed cycle search, and anomaly
//! classification.

use crate::mode::CheckMode;
use crate::model::CommittedTxn;
use chiller_common::{RecordId, TxnId};
use std::collections::{HashMap, HashSet};

/// A dependency-edge kind between two committed transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// `T1 → T2`: T2 read the version T1 installed (read-from).
    WriteRead,
    /// `T1 → T2`: T2 installed the next version after T1's (version order).
    WriteWrite,
    /// `T1 → T2`: T2 overwrote the version T1 read (anti-dependency).
    ReadWrite,
}

impl DepKind {
    /// Short tag for reports (`wr`/`ww`/`rw`).
    pub fn tag(self) -> &'static str {
        match self {
            DepKind::WriteRead => "wr",
            DepKind::WriteWrite => "ww",
            DepKind::ReadWrite => "rw",
        }
    }
}

/// One dependency edge, kept on a [`Violation`] as evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source transaction.
    pub from: TxnId,
    /// Destination transaction.
    pub to: TxnId,
    /// Dependency kind.
    pub kind: DepKind,
    /// The record inducing the edge.
    pub record: RecordId,
}

/// Classification of a dependency cycle, by the weakest anomaly class it
/// demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// Circular information flow: every step of the cycle carries a WR or
    /// WW edge (no anti-dependency needed) — Adya's G1c.
    G1c,
    /// Two transactions read the same version of one record and both
    /// overwrote it: a 2-cycle of WW + RW on a single record.
    LostUpdate,
    /// A cycle of anti-dependencies only: every transaction overwrote
    /// state another one read, none saw another's writes.
    WriteSkew,
    /// Any other dependency cycle (general G2).
    General,
}

impl Anomaly {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::G1c => "g1c",
            Anomaly::LostUpdate => "lost_update",
            Anomaly::WriteSkew => "write_skew",
            Anomaly::General => "general",
        }
    }
}

/// One detected serializability violation: a dependency cycle, its
/// classification, and one representative edge per step.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The anomaly class of the cycle.
    pub anomaly: Anomaly,
    /// The transactions on the cycle, in traversal order.
    pub cycle: Vec<TxnId>,
    /// One representative edge per step (`cycle[i] → cycle[i+1]`, wrapping).
    pub edges: Vec<DepEdge>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cycle:", self.anomaly.name())?;
        for e in &self.edges {
            write!(f, " {} -{}@{}-> {}", e.from, e.kind.tag(), e.record, e.to)?;
        }
        Ok(())
    }
}

/// Outcome of checking a history.
#[derive(Debug)]
pub struct CheckReport {
    /// The mode the check ran under.
    pub mode: CheckMode,
    /// Committed transactions considered.
    pub txns: usize,
    /// Windows searched.
    pub windows: usize,
    /// Dependency edges built (summed across windows; overlapping windows
    /// count shared edges twice).
    pub edges: usize,
    /// Dependency cycles found, deduplicated across windows.
    pub violations: Vec<Violation>,
    /// Observations lost to full rings before the check (size
    /// `CHILLER_CHECK_BUF` up if nonzero — a partial history can hide
    /// violations, though it cannot fabricate them).
    pub events_dropped: u64,
}

impl CheckReport {
    /// True when no dependency cycle was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when no observation was dropped: the verdict covers the whole
    /// recorded run, not a sample of it.
    pub fn is_complete(&self) -> bool {
        self.events_dropped == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "check[{}]: {} txns, {} windows, {} edges, {} violations, {} dropped",
            self.mode.label(),
            self.txns,
            self.windows,
            self.edges,
            self.violations.len(),
            self.events_dropped
        )
    }
}

/// Check a committed history (already assembled and commit-ordered) for
/// dependency cycles under `mode`. `CheckMode::Off` checks nothing and
/// reports vacuous success.
pub fn check(txns: &[CommittedTxn], mode: CheckMode) -> CheckReport {
    let mut report = CheckReport {
        mode,
        txns: txns.len(),
        windows: 0,
        edges: 0,
        violations: Vec::new(),
        events_dropped: 0,
    };
    let window = match mode {
        CheckMode::Off => return report,
        CheckMode::Full => txns.len().max(1),
        CheckMode::Window(n) => n.max(2),
    };
    let stride = (window / 2).max(1);
    let mut seen_cycles: HashSet<Vec<TxnId>> = HashSet::new();
    let mut start = 0;
    loop {
        let end = (start + window).min(txns.len());
        report.windows += 1;
        check_window(&txns[start..end], &mut report, &mut seen_cycles);
        if end >= txns.len() {
            break;
        }
        start += stride;
    }
    report
}

/// Per-window edge construction + SCC cycle search. Indices below are
/// positions within `txns` (the window slice).
fn check_window(
    txns: &[CommittedTxn],
    report: &mut CheckReport,
    seen_cycles: &mut HashSet<Vec<TxnId>>,
) {
    let n = txns.len();
    // Per-record version chains over the *observed* writes. Versions may
    // have gaps (writes of aborted-then-bumped loads never exist; writes
    // outside the window are invisible), so "next version" means the next
    // observed one, which only weakens — never falsifies — the edges.
    let mut writers: HashMap<RecordId, Vec<(u64, usize)>> = HashMap::new();
    for (i, t) in txns.iter().enumerate() {
        for &(r, v) in &t.writes {
            writers.entry(r).or_default().push((v, i));
        }
    }
    for list in writers.values_mut() {
        list.sort_unstable();
    }

    let mut adj: Vec<Vec<(usize, DepKind, RecordId)>> = vec![Vec::new(); n];
    let push = |adj: &mut Vec<Vec<(usize, DepKind, RecordId)>>,
                from: usize,
                to: usize,
                kind: DepKind,
                record: RecordId| {
        adj[from].push((to, kind, record));
    };

    // WW: consecutive observed writers of each record. Two *different*
    // transactions installing the same version is storage corruption; the
    // both-ways edges make it surface as a (General) cycle instead of
    // passing silently.
    for (&r, list) in &writers {
        for w in list.windows(2) {
            let (v1, i1) = w[0];
            let (v2, i2) = w[1];
            if i1 == i2 {
                continue;
            }
            push(&mut adj, i1, i2, DepKind::WriteWrite, r);
            if v1 == v2 {
                push(&mut adj, i2, i1, DepKind::WriteWrite, r);
            }
        }
    }

    // WR (writer of the observed version → reader) and RW (reader → next
    // observed writer). Version 0 is the initial load: no writer, no WR.
    for (i, t) in txns.iter().enumerate() {
        for &(r, v) in &t.reads {
            let Some(list) = writers.get(&r) else {
                continue;
            };
            let lo = list.partition_point(|&(ver, _)| ver < v);
            let mut at = lo;
            while at < list.len() && list[at].0 == v {
                if list[at].1 != i {
                    push(&mut adj, list[at].1, i, DepKind::WriteRead, r);
                }
                at += 1;
            }
            // `at` now sits at the first writer of a later version; skip
            // the reader's own writes (an RMW installs the successor
            // version itself — no anti-dependency on oneself).
            while at < list.len() && list[at].1 == i {
                at += 1;
            }
            if at < list.len() {
                push(&mut adj, i, list[at].1, DepKind::ReadWrite, r);
            }
        }
    }
    report.edges += adj.iter().map(Vec::len).sum::<usize>();

    for scc in tarjan_sccs(&adj) {
        if scc.len() < 2 {
            continue; // self-edges are never built, so singletons are acyclic
        }
        let Some((cycle, edges)) = extract_cycle(&adj, &scc) else {
            continue;
        };
        let mut key: Vec<TxnId> = cycle.iter().map(|&i| txns[i].txn).collect();
        let cycle_txns = key.clone();
        key.sort_unstable();
        if !seen_cycles.insert(key) {
            continue;
        }
        let anomaly = classify(&adj, &cycle);
        report.violations.push(Violation {
            anomaly,
            cycle: cycle_txns,
            edges: edges
                .iter()
                .map(|&(from, to, kind, record)| DepEdge {
                    from: txns[from].txn,
                    to: txns[to].txn,
                    kind,
                    record,
                })
                .collect(),
        });
    }
}

/// Iterative Tarjan SCC. Returns components in reverse-topological order;
/// members are window-local indices.
fn tarjan_sccs(adj: &[Vec<(usize, DepKind, RecordId)>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next-edge-position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            if *ei < adj[v].len() {
                let (w, _, _) = adj[v][*ei];
                *ei += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Extract one concrete (shortest-through-the-start-node) cycle from a
/// non-trivial SCC, returning the node sequence and one representative
/// edge per step, preferring WW > WR > RW so the evidence names the
/// strongest dependency available.
#[allow(clippy::type_complexity)]
fn extract_cycle(
    adj: &[Vec<(usize, DepKind, RecordId)>],
    scc: &[usize],
) -> Option<(Vec<usize>, Vec<(usize, usize, DepKind, RecordId)>)> {
    let members: HashSet<usize> = scc.iter().copied().collect();
    let start = *scc.iter().min().expect("non-empty SCC");
    // BFS from `start` within the SCC.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut dist: HashMap<usize, usize> = HashMap::new();
    dist.insert(start, 0);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for &(w, _, _) in &adj[v] {
            if members.contains(&w) && !dist.contains_key(&w) {
                dist.insert(w, dist[&v] + 1);
                parent.insert(w, v);
                queue.push_back(w);
            }
        }
    }
    // Close the loop through the shortest in-edge u → start.
    let mut best: Option<(usize, usize)> = None; // (dist, u)
    for &u in scc {
        if u == start {
            continue;
        }
        if adj[u].iter().any(|&(w, _, _)| w == start) {
            if let Some(&d) = dist.get(&u) {
                if best.map(|(bd, bu)| (d, u) < (bd, bu)).unwrap_or(true) {
                    best = Some((d, u));
                }
            }
        }
    }
    let (_, u) = best?;
    let mut path = vec![u];
    let mut v = u;
    while v != start {
        v = parent[&v];
        path.push(v);
    }
    path.reverse(); // start, ..., u
    let edges = path
        .iter()
        .zip(path.iter().cycle().skip(1))
        .map(|(&a, &b)| {
            let (to, kind, record) = best_edge(adj, a, b);
            (a, to, kind, record)
        })
        .collect();
    Some((path, edges))
}

/// The representative edge a → b, preferring WW > WR > RW.
fn best_edge(
    adj: &[Vec<(usize, DepKind, RecordId)>],
    a: usize,
    b: usize,
) -> (usize, DepKind, RecordId) {
    let mut choice: Option<(usize, DepKind, RecordId)> = None;
    for &(to, kind, record) in &adj[a] {
        if to != b {
            continue;
        }
        let better = match (&choice, kind) {
            (None, _) => true,
            (Some((_, DepKind::WriteWrite, _)), _) => false,
            (Some((_, DepKind::WriteRead, _)), DepKind::WriteWrite) => true,
            (Some((_, DepKind::WriteRead, _)), _) => false,
            (Some((_, DepKind::ReadWrite, _)), k) => k != DepKind::ReadWrite,
        };
        if better {
            choice = Some((to, kind, record));
        }
    }
    choice.expect("cycle step without an edge")
}

/// Classify a cycle by the edge kinds available at each step.
fn classify(adj: &[Vec<(usize, DepKind, RecordId)>], cycle: &[usize]) -> Anomaly {
    // Per step: the set of kinds and records of all parallel edges.
    let steps: Vec<Vec<(DepKind, RecordId)>> = cycle
        .iter()
        .zip(cycle.iter().cycle().skip(1))
        .map(|(&a, &b)| {
            adj[a]
                .iter()
                .filter(|&&(to, _, _)| to == b)
                .map(|&(_, k, r)| (k, r))
                .collect()
        })
        .collect();

    // G1c: traversable on information flow alone (WR/WW at every step).
    if steps
        .iter()
        .all(|s| s.iter().any(|&(k, _)| k != DepKind::ReadWrite))
    {
        return Anomaly::G1c;
    }
    // Lost update: a 2-cycle on one record combining version order (WW)
    // with an anti-dependency (RW) — both overwrote what one of them read.
    if cycle.len() == 2 {
        let records0: HashSet<RecordId> = steps[0].iter().map(|&(_, r)| r).collect();
        for &(_, r) in steps[1].iter() {
            if !records0.contains(&r) {
                continue;
            }
            let kinds: HashSet<DepKind> = steps
                .iter()
                .flatten()
                .filter(|&&(_, rec)| rec == r)
                .map(|&(k, _)| k)
                .collect();
            if kinds.contains(&DepKind::WriteWrite) && kinds.contains(&DepKind::ReadWrite) {
                return Anomaly::LostUpdate;
            }
        }
    }
    // Write skew: anti-dependencies only — no transaction saw another's
    // writes, yet the set is unserializable.
    if steps
        .iter()
        .all(|s| s.iter().all(|&(k, _)| k == DepKind::ReadWrite))
    {
        return Anomaly::WriteSkew;
    }
    Anomaly::General
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::{NodeId, TableId};

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    fn committed(
        seq: u64,
        ts: u64,
        reads: Vec<(RecordId, u64)>,
        writes: Vec<(RecordId, u64)>,
    ) -> CommittedTxn {
        CommittedTxn {
            txn: txn(seq),
            commit_ts: ts,
            reads,
            writes,
        }
    }

    #[test]
    fn empty_and_serial_histories_pass() {
        assert!(check(&[], CheckMode::Full).ok());
        // T1 writes x@1; T2 reads x@1, writes x@2; T3 reads x@2.
        let txns = vec![
            committed(1, 10, vec![(rid(1), 0)], vec![(rid(1), 1)]),
            committed(2, 20, vec![(rid(1), 1)], vec![(rid(1), 2)]),
            committed(3, 30, vec![(rid(1), 2)], vec![]),
        ];
        let rep = check(&txns, CheckMode::Full);
        assert!(rep.ok(), "{:?}", rep.violations);
        assert!(rep.edges > 0);
    }

    #[test]
    fn off_mode_is_vacuous() {
        let txns = vec![
            committed(1, 10, vec![(rid(1), 1)], vec![(rid(1), 2)]),
            committed(2, 20, vec![(rid(1), 1)], vec![(rid(1), 3)]),
        ];
        let rep = check(&txns, CheckMode::Off);
        assert!(rep.ok());
        assert_eq!(rep.windows, 0);
    }

    #[test]
    fn lost_update_two_rmws_of_one_version() {
        // Both read x@1, both overwrote it.
        let txns = vec![
            committed(1, 10, vec![(rid(1), 1)], vec![(rid(1), 2)]),
            committed(2, 20, vec![(rid(1), 1)], vec![(rid(1), 3)]),
        ];
        let rep = check(&txns, CheckMode::Full);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].anomaly, Anomaly::LostUpdate);
    }

    #[test]
    fn windowing_dedupes_overlapping_findings() {
        let txns = vec![
            committed(1, 10, vec![(rid(1), 1)], vec![(rid(1), 2)]),
            committed(2, 20, vec![(rid(1), 1)], vec![(rid(1), 3)]),
            committed(3, 30, vec![(rid(2), 0)], vec![(rid(2), 1)]),
            committed(4, 40, vec![(rid(2), 1)], vec![(rid(2), 2)]),
        ];
        let rep = check(&txns, CheckMode::Window(2));
        assert!(rep.windows > 1);
        assert_eq!(rep.violations.len(), 1, "one deduped violation");
    }

    #[test]
    fn window_too_small_can_miss_wide_cycles_by_design() {
        // The two halves of the lost update commit far apart; a window of
        // 2 with the anomaly partners never co-resident misses it.
        let txns = vec![
            committed(1, 10, vec![(rid(1), 1)], vec![(rid(1), 2)]),
            committed(3, 20, vec![(rid(9), 0)], vec![]),
            committed(4, 30, vec![(rid(9), 0)], vec![]),
            committed(5, 40, vec![(rid(9), 0)], vec![]),
            committed(2, 50, vec![(rid(1), 1)], vec![(rid(1), 3)]),
        ];
        assert!(check(&txns, CheckMode::Window(2)).ok(), "bounded window");
        assert!(!check(&txns, CheckMode::Full).ok(), "full view catches it");
    }

    #[test]
    fn duplicate_installed_versions_surface_as_cycle() {
        // Storage corruption: two txns claim to have installed x@2.
        let txns = vec![
            committed(1, 10, vec![], vec![(rid(1), 2)]),
            committed(2, 20, vec![], vec![(rid(1), 2)]),
        ];
        let rep = check(&txns, CheckMode::Full);
        assert!(!rep.ok());
    }
}
