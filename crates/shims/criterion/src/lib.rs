//! Offline stand-in for `criterion`: a small wall-clock benchmark harness.
//!
//! Exposes the subset of the criterion API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of rigorous
//! statistics it reports the mean wall-clock time per iteration over an
//! adaptive number of iterations bounded by a per-benchmark time budget,
//! which is enough to compare building-block costs and catch gross
//! regressions without any external dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always re-runs setup per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Per-benchmark time budget (after one warm-up call).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000_000;

/// Runs one benchmark routine and records timing.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET && self.iters < MAX_ITERS {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET && self.iters < MAX_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<44} (no iterations completed)");
            return;
        }
        let per_iter = self.total.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per_iter >= 1e9 {
            (per_iter / 1e9, "s")
        } else if per_iter >= 1e6 {
            (per_iter / 1e6, "ms")
        } else if per_iter >= 1e3 {
            (per_iter / 1e3, "µs")
        } else {
            (per_iter, "ns")
        };
        println!("{id:<44} {value:>10.2} {unit}/iter  ({} iters)", self.iters);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name} --");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
