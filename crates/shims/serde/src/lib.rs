//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! Nothing in the workspace serializes values yet — the derives on config
//! and metric types exist so downstream tooling can switch to the real
//! `serde` by flipping the path dependency. The derive macros (from the
//! sibling `serde_derive` shim) expand to nothing, so these traits are
//! *not* implemented by deriving types; don't write bounds against them.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias mirroring serde's.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
