//! Offline stand-in for `serde`: marker traits plus no-op derives, plus a
//! small self-contained [`json`] module.
//!
//! Nothing in the workspace serializes values through the traits yet — the
//! derives on config and metric types exist so downstream tooling can switch
//! to the real `serde` by flipping the path dependency. The derive macros
//! (from the sibling `serde_derive` shim) expand to nothing, so these traits
//! are *not* implemented by deriving types; don't write bounds against them.
//!
//! The [`json`] module is real, though: a recursive-descent JSON parser and
//! renderer used to round-trip-validate the JSON this workspace emits by
//! hand (bench result files, Chrome trace exports — DESIGN §13).

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias mirroring serde's.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
