//! A minimal JSON document model, parser, and renderer.
//!
//! This exists so the workspace can *validate* the JSON it emits by hand
//! (the derive shims are no-ops, so exporters hand-roll their output). The
//! parser is a strict recursive-descent implementation of RFC 8259 minus
//! `\u` surrogate-pair pedantry; the renderer round-trips whatever parsed.
//! Object key order is preserved (keys live in a `Vec`), so
//! `render(&parse(s)?)` is structurally faithful.

use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64` (adequate for the
/// timestamps and counters this workspace emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse failure: byte offset and a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What was expected or violated.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Render a value back to compact JSON text.
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Unpaired surrogates degrade to the replacement
                            // char rather than failing — exporters here never
                            // emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":null}],"c":"x\ny","d":true}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""q\"b\\s\/n\nuA""#).unwrap();
        assert_eq!(v.as_str(), Some("q\"b\\s/n\nuA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_preserving_key_order() {
        let src = r#"{"z":1,"a":[true,null,"s"],"m":{"k":-2.5}}"#;
        let v = parse(src).unwrap();
        let rendered = render(&v);
        assert_eq!(rendered, src.replace(" ", ""));
        // And the re-parse is identical.
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn renders_integers_without_fraction() {
        assert_eq!(render(&Value::Num(5.0)), "5");
        assert_eq!(render(&Value::Num(2.5)), "2.5");
    }

    #[test]
    fn error_reports_position() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
