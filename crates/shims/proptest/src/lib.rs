//! Offline stand-in for `proptest`: deterministic random property testing.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the subset of the proptest API the workspace's property tests consume:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], [`option::of`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate (acceptable for CI-style checking):
//! failing cases are **not shrunk** — the panic message reports the case
//! number and the test's deterministic seed instead, so failures still
//! reproduce exactly; generation distributions are simpler (uniform, no
//! bias toward edge values).

pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's name (FNV-1a) so
    /// every test draws an independent, reproducible stream.
    pub fn fresh_rng(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// produces the final value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// One boxed generator arm of a [`Union`].
    pub type ArmFn<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<ArmFn<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<ArmFn<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            (self.arms[i])(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::distributions::{Distribution, Standard};

    /// Full-domain strategy for `T` (uniform; `[0,1)` for floats).
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — the whole domain of `T`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T> Strategy for Any<T>
    where
        Standard: Distribution<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rand::Rng::sample(rng, Standard)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count specification: a fixed count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// `prop::option::of(inner)`: `None` 25% of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop` path alias the prelude exposes (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Each argument is drawn from its strategy for
/// `config.cases` deterministic cases; the body runs per case and fails via
/// [`prop_assert!`] / [`prop_assert_eq!`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::fresh_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!(
                            "[proptest shim] `{}` failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $({
                let __s = $arm;
                ::std::boxed::Box::new(
                    move |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__s, __rng)
                    }
                ) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u8),
        B(bool),
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in 0.5f64..1.5, s in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
            let _ = s;
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 2..5), w in prop::collection::vec(any::<bool>(), 7)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_work(p in prop_oneof![
            (0u8..4).prop_map(Pick::A),
            any::<bool>().prop_map(Pick::B),
        ]) {
            match p {
                Pick::A(x) => prop_assert!(x < 4),
                Pick::B(_) => {}
            }
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u32..5)) {
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_applies(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "proptest shim")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u8..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::fresh_rng("t");
        let mut b = crate::test_runner::fresh_rng("t");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
