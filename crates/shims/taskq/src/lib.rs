//! # taskq
//!
//! Dependency-free executor core for the async engine backend: the three
//! primitives a ready-queue-of-task-ids executor needs, with no external
//! crates (the container is offline — this is the offline stand-in for
//! what `crossbeam-deque` + a waker slab would provide).
//!
//! * [`TaskQueue`] — the ready queue: one FIFO deque per worker plus a
//!   shared injector, with work stealing. A worker pops its own deque
//!   first, then the injector, then steals a batch from a sibling.
//! * [`SchedState`] — the per-task scheduling state machine
//!   (IDLE / QUEUED / RUNNING / DIRTY) that guarantees a task id is in
//!   the ready queue **at most once** while making missed wakeups
//!   impossible: work that arrives while the task runs marks it DIRTY,
//!   and the runner re-enqueues it on finish.
//! * [`Parker`] — a publish-then-recheck park/unpark slot (the same
//!   handshake the threaded backend's per-node parker uses), for workers
//!   with an empty queue.
//!
//! Everything here is task-agnostic: a "task" is a bare `usize` id. The
//! async runtime in `chiller-simnet` maps ids to engine slots.
//!
//! Deques and the injector are mutex-backed. That is deliberate: each
//! lock is held for a two-pointer deque operation, the queue is touched
//! once per *batch* of engine events (not per message), and the
//! state-machine guarantees keep contention to actual handoffs. The
//! lock-free part of the hot path lives in `ringq`, where the per-message
//! traffic is.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// QueueStats
// ---------------------------------------------------------------------------

/// Scheduling counters a [`TaskQueue`] maintains internally (relaxed
/// atomics, one increment per queue operation — the queue is touched once
/// per engine *batch*, so this is off the per-message hot path). Snapshot
/// with [`TaskQueue::stats`]; the async runtime merges the snapshot into its
/// `RuntimeTelemetry`.
#[derive(Default)]
pub struct QueueStats {
    pushed: AtomicU64,
    injected: AtomicU64,
    popped: AtomicU64,
    stolen: AtomicU64,
    steal_batches: AtomicU64,
}

/// A point-in-time copy of [`QueueStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Tasks pushed onto a worker's own deque.
    pub pushed: u64,
    /// Tasks pushed through the shared injector.
    pub injected: u64,
    /// Tasks popped for execution (any source).
    pub popped: u64,
    /// Tasks that changed workers via stealing.
    pub stolen: u64,
    /// Steal operations (each moves a front-half batch).
    pub steal_batches: u64,
}

impl QueueStats {
    fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            pushed: self.pushed.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            popped: self.popped.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            steal_batches: self.steal_batches.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// TaskQueue
// ---------------------------------------------------------------------------

/// A work-stealing ready queue of task ids.
///
/// `pop(w)` drains worker `w`'s own deque in FIFO order, falls back to
/// the shared injector, then steals from sibling deques. FIFO (not LIFO)
/// local order keeps engine scheduling fair under load — an engine that
/// was made ready first runs first, which bounds how far any one
/// mailbox can lag.
pub struct TaskQueue {
    locals: Vec<Mutex<VecDeque<usize>>>,
    injector: Mutex<VecDeque<usize>>,
    stats: QueueStats,
}

impl TaskQueue {
    /// A queue serving `workers` workers (at least one).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a task queue needs at least one worker");
        TaskQueue {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            stats: QueueStats::default(),
        }
    }

    /// Point-in-time scheduling counters (racy mid-run, exact at quiescence).
    pub fn stats(&self) -> QueueSnapshot {
        self.stats.snapshot()
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Push `task` onto worker `worker`'s own deque (the producer is the
    /// worker that just made the task ready — locality-preserving).
    pub fn push_local(&self, worker: usize, task: usize) {
        self.locals[worker]
            .lock()
            .expect("task deque lock")
            .push_back(task);
        self.stats.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Push `task` from outside any worker (control plane, initial seed).
    pub fn inject(&self, task: usize) {
        self.injector.lock().expect("injector lock").push_back(task);
        self.stats.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Next ready task for worker `worker`: own deque front, else
    /// injector front, else steal the front half of the fullest sibling
    /// deque (oldest tasks — the steal preserves each deque's FIFO
    /// order). Returns `None` when every source is empty.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        if let Some(t) = self.locals[worker]
            .lock()
            .expect("task deque lock")
            .pop_front()
        {
            self.stats.popped.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        if let Some(t) = self.injector.lock().expect("injector lock").pop_front() {
            self.stats.popped.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        let t = self.steal(worker);
        if t.is_some() {
            self.stats.popped.fetch_add(1, Ordering::Relaxed);
        }
        t
    }

    /// Steal for `thief`: scan siblings round-robin from `thief + 1`,
    /// take the front half (rounded up) of the first non-empty deque,
    /// keep the remainder of the batch on the thief's own deque, and
    /// return the first stolen task.
    fn steal(&self, thief: usize) -> Option<usize> {
        let n = self.locals.len();
        for off in 1..n {
            let victim = (thief + off) % n;
            let mut batch: Vec<usize> = {
                let mut v = self.locals[victim].lock().expect("task deque lock");
                let take = v.len().div_ceil(2);
                v.drain(..take).collect()
            };
            if batch.is_empty() {
                continue;
            }
            self.stats.steal_batches.fetch_add(1, Ordering::Relaxed);
            self.stats
                .stolen
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            let first = batch.remove(0);
            if !batch.is_empty() {
                let mut own = self.locals[thief].lock().expect("task deque lock");
                own.extend(batch);
            }
            return Some(first);
        }
        None
    }

    /// Whether any deque or the injector currently holds a task. Racy by
    /// nature (a concurrent push may land right after the scan) — callers
    /// use it only as a pre-park recheck, where the parker handshake plus
    /// a bounded park timeout covers the race.
    pub fn has_ready(&self) -> bool {
        if !self.injector.lock().expect("injector lock").is_empty() {
            return true;
        }
        self.locals
            .iter()
            .any(|l| !l.lock().expect("task deque lock").is_empty())
    }
}

// ---------------------------------------------------------------------------
// SchedState
// ---------------------------------------------------------------------------

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const DIRTY: u8 = 3;

/// Per-task scheduling state machine.
///
/// Invariant: a task id is in the ready queue **iff** its state is
/// QUEUED (or DIRTY, which only exists while a runner holds the task).
/// The transitions:
///
/// ```text
///   notify():   IDLE    -> QUEUED   (caller must enqueue the id)
///               RUNNING -> DIRTY    (runner will re-enqueue on finish)
///               QUEUED | DIRTY      (no-op: already scheduled)
///   begin():    QUEUED  -> RUNNING  (worker popped the id)
///   finish():   RUNNING -> IDLE     (no more work)
///               RUNNING -> QUEUED   (runner saw more work: re-enqueue)
///               DIRTY   -> QUEUED   (work arrived mid-run: re-enqueue)
/// ```
///
/// Missed wakeups are impossible by construction: a producer's `notify`
/// either enqueues the task itself (IDLE), finds it already scheduled
/// (QUEUED/DIRTY), or marks the in-flight run DIRTY — and `finish`
/// converts DIRTY into a re-enqueue. Work pushed *before* `notify` is
/// either seen by the current run's drain or covered by the DIRTY mark.
#[derive(Default)]
pub struct SchedState(AtomicU8);

impl SchedState {
    /// A task starting IDLE (not scheduled).
    pub fn new() -> Self {
        SchedState(AtomicU8::new(IDLE))
    }

    /// Signal that the task has work. Returns `true` when the caller
    /// must push the task id onto the ready queue (exactly one notifier
    /// wins that duty per idle period).
    pub fn notify(&self) -> bool {
        let mut cur = self.0.load(Ordering::SeqCst);
        loop {
            let (target, enqueue) = match cur {
                IDLE => (QUEUED, true),
                RUNNING => (DIRTY, false),
                _ => return false, // QUEUED or DIRTY: already scheduled.
            };
            match self
                .0
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return enqueue,
                Err(actual) => cur = actual,
            }
        }
    }

    /// A worker popped this task from the ready queue and is about to
    /// run it. Must only be called on a QUEUED task (the queue/state
    /// invariant guarantees that).
    pub fn begin(&self) {
        let prev = self.0.swap(RUNNING, Ordering::SeqCst);
        debug_assert_eq!(prev, QUEUED, "began a task that was not queued");
    }

    /// The run finished. `has_more` is the runner's own observation of
    /// remaining work (non-empty mailbox, parked sends, pending timer
    /// fires). Returns `true` when the runner must re-enqueue the id —
    /// either because of `has_more` or because a concurrent `notify`
    /// marked the run DIRTY.
    pub fn finish(&self, has_more: bool) -> bool {
        if has_more {
            self.0.store(QUEUED, Ordering::SeqCst);
            return true;
        }
        match self
            .0
            .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => false,
            Err(state) => {
                debug_assert_eq!(state, DIRTY, "finish raced with an invalid state");
                self.0.store(QUEUED, Ordering::SeqCst);
                true
            }
        }
    }

    /// Whether the task is currently idle (test/diagnostic hook; racy
    /// outside quiescent points).
    pub fn is_idle(&self) -> bool {
        self.0.load(Ordering::SeqCst) == IDLE
    }
}

// ---------------------------------------------------------------------------
// Parker
// ---------------------------------------------------------------------------

/// A per-worker park/unpark slot with the publish-then-recheck handshake.
///
/// The worker publishes `sleeping = true`, re-checks its work sources,
/// then parks with a bounded timeout; a producer that makes work ready
/// *after* the publish observes the flag and unparks. A producer that
/// pushed *before* the publish is covered by the worker's re-check. Any
/// residual interleaving costs at most one park timeout, never a lost
/// wakeup.
#[derive(Default)]
pub struct Parker {
    sleeping: AtomicBool,
    thread: Mutex<Option<std::thread::Thread>>,
    parks: AtomicU64,
    wakes: AtomicU64,
}

impl Parker {
    /// A fresh, awake parker.
    pub fn new() -> Self {
        Parker::default()
    }

    /// Register the calling thread as this slot's sleeper (once per
    /// worker thread, before its first park).
    pub fn register(&self) {
        *self.thread.lock().expect("parker lock") = Some(std::thread::current());
    }

    /// Publish "about to sleep". The caller must re-check its work
    /// sources *after* this returns and before parking.
    pub fn prepare_park(&self) {
        self.sleeping.store(true, Ordering::SeqCst);
    }

    /// Abort a prepared park (the re-check found work).
    pub fn cancel_park(&self) {
        self.sleeping.store(false, Ordering::Relaxed);
    }

    /// Park the calling thread for at most `ns` nanoseconds (wakes early
    /// on [`Parker::wake`]). Clears the sleeping flag on return. Must be
    /// preceded by [`Parker::prepare_park`] + a work re-check.
    pub fn park_timeout(&self, ns: u64) {
        self.parks.fetch_add(1, Ordering::Relaxed);
        std::thread::park_timeout(std::time::Duration::from_nanos(ns));
        self.sleeping.store(false, Ordering::Relaxed);
    }

    /// Producer side: wake the worker iff it is parked or about to park.
    /// The fast path (worker awake) is a single relaxed load. Returns
    /// whether a wake was delivered.
    pub fn wake(&self) -> bool {
        if self.sleeping.load(Ordering::Relaxed) && self.sleeping.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("parker lock").as_ref() {
                t.unpark();
                self.wakes.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// How many times the owning worker actually parked.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// How many wakes were delivered to a parked/parking worker.
    pub fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn local_deques_are_fifo() {
        let q = TaskQueue::new(2);
        q.push_local(0, 1);
        q.push_local(0, 2);
        q.push_local(0, 3);
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn injector_feeds_any_worker() {
        let q = TaskQueue::new(3);
        q.inject(7);
        q.inject(8);
        assert_eq!(q.pop(2), Some(7));
        assert_eq!(q.pop(0), Some(8));
        assert!(!q.has_ready());
    }

    #[test]
    fn steal_takes_front_half_and_preserves_order() {
        let q = TaskQueue::new(2);
        for t in 0..6 {
            q.push_local(1, t);
        }
        // Worker 0 steals: takes 0..3 (front half), returns 0, keeps 1,2.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), Some(2));
        // Victim keeps its back half in order.
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(4));
        assert_eq!(q.pop(1), Some(5));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn own_deque_beats_injector_beats_steal() {
        let q = TaskQueue::new(2);
        q.push_local(1, 30); // steal candidate
        q.inject(20);
        q.push_local(0, 10);
        assert_eq!(q.pop(0), Some(10));
        assert_eq!(q.pop(0), Some(20));
        assert_eq!(q.pop(0), Some(30));
    }

    #[test]
    fn sched_state_single_enqueue_duty() {
        let s = SchedState::new();
        assert!(s.notify(), "first notify wins the enqueue duty");
        assert!(!s.notify(), "second notify sees QUEUED");
        s.begin();
        assert!(!s.notify(), "notify during run marks DIRTY, no enqueue");
        assert!(s.finish(false), "DIRTY converts to a re-enqueue");
        s.begin();
        assert!(!s.finish(false), "clean finish goes IDLE");
        assert!(s.is_idle());
    }

    #[test]
    fn finish_with_more_work_requeues() {
        let s = SchedState::new();
        assert!(s.notify());
        s.begin();
        assert!(s.finish(true));
        s.begin();
        assert!(!s.finish(false));
    }

    /// The executor invariant under concurrency: N producers notifying a
    /// task while workers run it must never double-enqueue it and never
    /// strand a notification. Modeled by counting enqueue duties handed
    /// out vs runs consumed.
    #[test]
    fn concurrent_notify_never_double_enqueues() {
        let state = Arc::new(SchedState::new());
        let queue = Arc::new(TaskQueue::new(1));
        let notifies = 10_000usize;
        let runs = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let producer = {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for _ in 0..notifies {
                    if state.notify() {
                        queue.push_local(0, 42);
                    }
                }
                done.store(true, Ordering::SeqCst);
            })
        };
        // The consumer drains until the producer is done and the queue is
        // empty; each pop must find the task QUEUED (begin asserts that).
        let consumer = {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let runs = Arc::clone(&runs);
            let done = Arc::clone(&done);
            std::thread::spawn(move || loop {
                match queue.pop(0) {
                    Some(t) => {
                        assert_eq!(t, 42);
                        state.begin();
                        runs.fetch_add(1, Ordering::Relaxed);
                        if state.finish(false) {
                            queue.push_local(0, 42);
                        }
                    }
                    None => {
                        // Only exit once the producer has finished: every
                        // enqueue duty it handed out must be consumed.
                        if done.load(Ordering::SeqCst) && !queue.has_ready() && state.is_idle() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            })
        };
        producer.join().expect("producer");
        consumer.join().expect("consumer");
        assert!(state.is_idle());
        assert!(!queue.has_ready(), "no stranded enqueue");
        assert!(runs.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn parker_wake_prevents_full_timeout() {
        let p = Arc::new(Parker::new());
        let q = Arc::new(TaskQueue::new(1));
        let consumer = {
            let p = Arc::clone(&p);
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                p.register();
                loop {
                    if let Some(t) = q.pop(0) {
                        return t;
                    }
                    p.prepare_park();
                    if q.has_ready() {
                        p.cancel_park();
                        continue;
                    }
                    // Generous timeout: the producer's wake must cut it short.
                    p.park_timeout(5_000_000_000);
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        let start = std::time::Instant::now();
        q.push_local(0, 9);
        p.wake();
        assert_eq!(consumer.join().expect("consumer"), 9);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(4),
            "wake must beat the park timeout"
        );
    }

    #[test]
    fn wake_on_awake_worker_is_a_cheap_noop() {
        let p = Parker::new();
        assert!(!p.wake(), "no one is sleeping");
        assert_eq!(p.wakes(), 0);
    }

    #[test]
    fn queue_stats_count_operations() {
        let q = TaskQueue::new(2);
        q.push_local(1, 10);
        q.push_local(1, 11);
        q.push_local(1, 12);
        q.push_local(1, 13);
        q.inject(20);
        // Worker 0: own deque empty, injector first.
        assert_eq!(q.pop(0), Some(20));
        // Then a steal of the front half (2 of 4 tasks).
        assert_eq!(q.pop(0), Some(10));
        let s = q.stats();
        assert_eq!(s.pushed, 4);
        assert_eq!(s.injected, 1);
        assert_eq!(s.popped, 2);
        assert_eq!(s.stolen, 2);
        assert_eq!(s.steal_batches, 1);
    }

    #[test]
    fn parker_counts_parks_and_wakes() {
        let p = Parker::new();
        p.register();
        p.prepare_park();
        p.park_timeout(1_000); // expires, no wake
        assert_eq!(p.parks(), 1);
        assert_eq!(p.wakes(), 0);
        p.prepare_park();
        assert!(p.wake(), "sleeping flag published, wake is delivered");
        assert_eq!(p.wakes(), 1);
    }
}
