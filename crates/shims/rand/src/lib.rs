//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API subset it consumes: [`rngs::StdRng`] (a
//! deterministic xoshiro256++ generator), the [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits, uniform [`Rng::gen_range`] sampling over integer
//! and float ranges, [`distributions::Distribution`] (implemented by e.g.
//! `chiller_common::rng::Zipf`), and [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic functions of the seed, which is all the
//! simulator requires (it never needs to match upstream `rand`'s exact
//! byte streams — every consumer derives its values through
//! `chiller_common::rng::seeded`).

pub mod rngs {
    /// Deterministic xoshiro256++ generator seeded via SplitMix64, matching
    /// the quality class of upstream `StdRng` without the ChaCha dependency.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state; the
            // all-zero state is unreachable because SplitMix64 is a
            // bijection with no 4-cycle of zeros.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_seed_u64(seed)
    }
}

pub mod distributions {
    use crate::Rng;

    /// A value-producing distribution (subset of `rand::distributions`).
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over the full domain
    /// for integers and bools, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

/// Uniform sampling from a range, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(reduce_u64(rng.next_u64(), span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(reduce_u64(rng.next_u64(), span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty, $shift:expr, $mant:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Unit computed in the target type's own precision so the
                // maximum, (2^mant - 1) / 2^mant, is exactly representable
                // and strictly below 1 (no cast rounding to 1.0).
                let unit = (rng.next_u64() >> $shift) as $t
                    * (1.0 / (1u64 << $mant) as $t);
                let v = self.start + unit * (self.end - self.start);
                if v < self.end {
                    v
                } else {
                    // start + unit*span rounded onto the excluded upper
                    // bound: step to the previous representable value.
                    let below = if self.end > 0.0 {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    } else if self.end < 0.0 {
                        <$t>::from_bits(self.end.to_bits() + 1)
                    } else {
                        // Largest value < 0.0 is the negative minimal
                        // subnormal.
                        -<$t>::from_bits(1)
                    };
                    below.max(self.start)
                }
            }
        }
    )*};
}
impl_sample_range_float!(f32, 40, 24; f64, 11, 53);

/// Lemire-style unbiased-enough range reduction (multiply-shift).
#[inline]
fn reduce_u64(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        self.gen::<f64>() < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::Rng;

    /// Slice helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::reduce_u64(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[crate::reduce_u64(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn float_range_excludes_upper_bound_even_under_rounding() {
        // A one-ulp-wide range forces `start + unit*span` to round onto
        // the excluded bound for roughly half of all draws; the clamp must
        // step back below it (f32's unit cast previously rounded to 1.0
        // outright).
        let mut r = StdRng::seed_from_u64(17);
        let lo64 = 1.0e16f64;
        let hi64 = f64::from_bits(lo64.to_bits() + 1);
        for _ in 0..10_000 {
            let v = r.gen_range(lo64..hi64);
            assert!(v >= lo64 && v < hi64, "f64 {v} escaped [{lo64}, {hi64})");
            let f = r.gen_range(1.5f32..2.5);
            assert!((1.5..2.5).contains(&f), "f32 {f} escaped [1.5, 2.5)");
            let n = r.gen_range(-2.5f64..-1.5);
            assert!((-2.5..-1.5).contains(&n), "negative {n} escaped");
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying put is ~impossible");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
