//! No-op `#[derive(Serialize, Deserialize)]` shim.
//!
//! The workspace derives serde traits on config/metric types for forward
//! compatibility, but nothing serializes them yet and the build environment
//! cannot fetch the real `serde`. These derives expand to nothing; the
//! marker traits live in the sibling `serde` shim crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
