//! Property tests for the ring queues' slot protocols: model-check an
//! arbitrary push/pop interleaving against a `VecDeque` reference, across
//! capacities (including 1), and across ticket-counter start points
//! including values near `usize::MAX` so the wrapping arithmetic is driven
//! through overflow mid-test (the "wraparound" half of the seqlock slot
//! protocol; the full/empty boundary is the other half — both are hit on
//! every case by the tiny capacities).

use proptest::prelude::*;
use std::collections::VecDeque;

/// One step of the interleaving: push a value or pop one.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    Push(u64),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0u64..1_000_000).prop_map(Op::Push), Just(Op::Pop)],
        1..200,
    )
}

/// Start points for the internal indices: zero, mid-range, and values
/// close enough to `usize::MAX` that a short test overflows them.
fn starts() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(usize::MAX - 3),
        Just(usize::MAX),
        0usize..10_000,
        (0usize..200).prop_map(|d| usize::MAX - d),
    ]
}

proptest! {
    /// The MPSC ring, used single-threaded, behaves exactly like a
    /// bounded `VecDeque`: same accept/reject on push (full boundary),
    /// same values in the same order on pop (empty boundary), for every
    /// capacity and start index.
    #[test]
    fn mpsc_matches_bounded_deque_model(
        cap in 1usize..9,
        start in starts(),
        script in ops(),
    ) {
        let (tx, mut rx) = ringq::mpsc::bounded_at::<u64>(cap, start);
        let real_cap = tx.capacity();
        prop_assert!(real_cap >= cap && real_cap.is_power_of_two());
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in &script {
            match *op {
                Op::Push(v) => {
                    let accepted = tx.push(v).is_ok();
                    let model_accepts = model.len() < real_cap;
                    prop_assert_eq!(
                        accepted, model_accepts,
                        "full-boundary disagreement at len {}", model.len()
                    );
                    if accepted {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(rx.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(rx.len(), model.len());
            prop_assert_eq!(rx.has_ready(), !model.is_empty());
        }
        // Drain: every remaining value comes out in order, then empty forever.
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expect));
        }
        prop_assert_eq!(rx.pop(), None);
        prop_assert!(rx.is_empty());
    }

    /// Same model equivalence for the SPSC ring.
    #[test]
    fn spsc_matches_bounded_deque_model(
        cap in 1usize..9,
        start in starts(),
        script in ops(),
    ) {
        let (mut tx, mut rx) = ringq::spsc::bounded_at::<u64>(cap, start);
        let real_cap = tx.capacity();
        prop_assert!(real_cap >= cap && real_cap.is_power_of_two());
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in &script {
            match *op {
                Op::Push(v) => {
                    let accepted = tx.push(v).is_ok();
                    prop_assert_eq!(accepted, model.len() < real_cap);
                    if accepted {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(rx.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(rx.len(), model.len());
        }
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expect));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    /// Laps around a tiny ring from a near-overflow start: the sequence
    /// slots must keep handing each ticket the right slot across the
    /// `usize` wrap (this is the test that fails if slot mapping used
    /// non-power-of-two modulo arithmetic).
    #[test]
    fn mpsc_wraparound_laps_stay_fifo(cap in 1usize..5, laps in 1u64..50) {
        let (tx, mut rx) = ringq::mpsc::bounded_at::<u64>(cap, usize::MAX - 2);
        let real_cap = tx.capacity() as u64;
        let mut next = 0u64;
        for lap in 0..laps {
            for i in 0..real_cap {
                prop_assert!(tx.push(lap * real_cap + i).is_ok());
            }
            prop_assert!(tx.push(u64::MAX).is_err(), "lap-full boundary missed");
            for _ in 0..real_cap {
                prop_assert_eq!(rx.pop(), Some(next));
                next += 1;
            }
            prop_assert_eq!(rx.pop(), None);
        }
    }
}
