//! Multi-producer single-consumer bounded ring on the sequence-slot
//! protocol (Vyukov's bounded MPMC queue, as vendored by crossbeam's
//! `ArrayQueue`, restricted here to one consumer).
//!
//! # The slot protocol
//!
//! Every push claims a *ticket* — a monotonically increasing `usize` taken
//! from `tail` with one CAS — and every pop consumes the next unconsumed
//! ticket from `head`. Ticket `t` lives in slot `t & (cap - 1)`; the
//! slot's `seq` field encodes its state relative to `t` (all arithmetic is
//! wrapping, compared via `wrapping_sub as isize`, so the protocol
//! survives `usize` overflow). Sequences advance at *stride 2* per ticket
//! so the three states stay distinct even at capacity 1, where Vyukov's
//! original stride-1 encoding collides (`t + 1 == t + cap`):
//!
//! | `seq` value        | meaning                                        |
//! |--------------------|------------------------------------------------|
//! | `2t`               | empty, ready for the producer holding ticket `t` |
//! | `2t + 1`           | full: value for ticket `t` published           |
//! | `2(t + cap)`       | empty again, ready for ticket `t + cap` (next lap) |
//!
//! No intermediate state exists — the producer writes the value *before*
//! the `seq = 2t + 1` release store. A producer that sees `seq < 2t` on
//! its candidate slot is a full lap
//! ahead of the consumer: the queue is full (it re-reads `tail` once to
//! distinguish a stale ticket from a genuinely full ring). A consumer
//! that sees `seq != 2·head + 1` reports "nothing poppable": either the
//! ring is empty or the producer holding ticket `head` has claimed but
//! not yet published — and because tickets are consumed **in order**, the
//! consumer waits for that ticket rather than skipping ahead. That stall
//! is what makes pop order equal global ticket order, the property the
//! threaded mailboxes need (DESIGN.md §11).
//!
//! # Memory ordering
//!
//! The value write is published by a `Release` store of `seq = 2t + 1`
//! and observed through the consumer's `Acquire` load of `seq`;
//! symmetrically the consumer's `Release` store of `seq = 2(t + cap)`
//! publishes "slot reusable" to the producer's `Acquire` load.
//! `head`/`tail` themselves only need `Relaxed`: they order nothing — all
//! value visibility flows through the slot sequences.

use crate::{effective_capacity, CachePadded};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Slot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    /// Next ticket to consume. Written only by the (single) consumer.
    head: CachePadded<AtomicUsize>,
    /// Next ticket to claim. CAS-advanced by producers.
    tail: CachePadded<AtomicUsize>,
    slots: Box<[Slot<T>]>,
    /// Power-of-two slot count; `mask = cap - 1`.
    cap: usize,
}

// SAFETY: values of `T` cross threads through the slots (producer writes,
// consumer reads), so `T: Send` is required and sufficient; the slot
// protocol guarantees exclusive access to each slot's `UnsafeCell` between
// the claiming producer and the consuming pop.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Sequence value meaning "slot empty, ready for ticket `t`".
#[inline]
fn seq_ready(t: usize) -> usize {
    t.wrapping_mul(2)
}

/// Sequence value meaning "value for ticket `t` published".
#[inline]
fn seq_full(t: usize) -> usize {
    t.wrapping_mul(2).wrapping_add(1)
}

impl<T> Shared<T> {
    #[inline]
    fn slot(&self, ticket: usize) -> &Slot<T> {
        &self.slots[ticket & (self.cap - 1)]
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): drain with plain loads. No push
        // can be mid-flight — claim and publish happen inside one call.
        let mut head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while head != tail {
            let idx = head & (self.cap - 1);
            let slot = &mut self.slots[idx];
            if *slot.seq.get_mut() == seq_full(head) {
                unsafe { slot.val.get_mut().assume_init_drop() };
            }
            head = head.wrapping_add(1);
        }
    }
}

/// Sending endpoint. Cloneable — any number of threads may hold one.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Self {
        Producer {
            shared: self.shared.clone(),
        }
    }
}

/// Receiving endpoint. Deliberately **not** `Clone`: the pop path advances
/// `head` with a plain store, which is sound only because ownership of
/// this endpoint proves there is exactly one consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded MPSC ring holding at least `capacity` elements
/// (rounded up to a power of two — see the crate docs).
pub fn bounded<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    bounded_at(capacity, 0)
}

/// [`bounded`], but with the ticket counters starting at `start` instead
/// of zero. Behaviour is identical for every `start`; the property tests
/// use values near `usize::MAX` to drive the wrapping arithmetic through
/// overflow within a few operations.
pub fn bounded_at<T>(capacity: usize, start: usize) -> (Producer<T>, Consumer<T>) {
    let cap = effective_capacity(capacity);
    // Slot `j`'s first ticket is the smallest `t >= start` (wrapping) with
    // `t & (cap - 1) == j`; its initial `seq` marks it ready for that ticket.
    let offset = start & (cap - 1);
    let slots: Box<[Slot<T>]> = (0..cap)
        .map(|j| {
            let delta = j.wrapping_sub(offset) & (cap - 1);
            Slot {
                seq: AtomicUsize::new(seq_ready(start.wrapping_add(delta))),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            }
        })
        .collect();
    let shared = Arc::new(Shared {
        head: CachePadded(AtomicUsize::new(start)),
        tail: CachePadded(AtomicUsize::new(start)),
        slots,
        cap,
    });
    (
        Producer {
            shared: shared.clone(),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    /// Push a value, never blocking. `Err(val)` hands the value back when
    /// the ring is full. On success the value is visible to the consumer
    /// in global ticket order (see the module docs).
    pub fn push(&self, val: T) -> Result<(), T> {
        let shared = &*self.shared;
        let mut tail = shared.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = shared.slot(tail);
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq.wrapping_sub(seq_ready(tail)) as isize;
            if diff == 0 {
                // Slot is ready for ticket `tail`; try to claim it.
                match shared.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Claimed: the slot is exclusively ours until the
                        // release store below publishes it.
                        unsafe { (*slot.val.get()).write(val) };
                        slot.seq.store(seq_full(tail), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if diff < 0 {
                // The slot still holds last lap's value: the ring looks
                // full. Re-read `tail` to distinguish "our ticket went
                // stale while we looked" from "genuinely full".
                let current = shared.tail.0.load(Ordering::Relaxed);
                if current == tail {
                    return Err(val);
                }
                tail = current;
            } else {
                // Another producer claimed this ticket first; catch up.
                tail = shared.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Number of elements currently in the ring (racy snapshot).
    pub fn len(&self) -> usize {
        let shared = &*self.shared;
        let tail = shared.tail.0.load(Ordering::Relaxed);
        let head = shared.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head).min(shared.cap)
    }

    /// Whether the ring currently holds no elements (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The power-of-two capacity actually allocated.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }
}

impl<T> Consumer<T> {
    /// Pop the next value in global ticket order, or `None` when nothing
    /// is poppable right now (empty ring, or the in-order producer has
    /// claimed its ticket but not yet published — the pop waits for *that*
    /// ticket rather than reordering past it).
    pub fn pop(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let head = shared.head.0.load(Ordering::Relaxed);
        let slot = shared.slot(head);
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != seq_full(head) {
            return None;
        }
        // SAFETY: `seq == seq_full(head)` proves the ticket-`head` value
        // is published and unconsumed; we are the only consumer.
        let val = unsafe { (*slot.val.get()).assume_init_read() };
        // Hand the slot to the producer of ticket `head + cap` (next lap).
        slot.seq
            .store(seq_ready(head.wrapping_add(shared.cap)), Ordering::Release);
        shared.head.0.store(head.wrapping_add(1), Ordering::Relaxed);
        Some(val)
    }

    /// Whether a value is poppable right now. A conservative signal for
    /// the park/sleep decision: `false` may become `true` at any moment.
    pub fn has_ready(&self) -> bool {
        let shared = &*self.shared;
        let head = shared.head.0.load(Ordering::Relaxed);
        shared.slot(head).seq.load(Ordering::Acquire) == seq_full(head)
    }

    /// Number of elements currently in the ring (racy snapshot).
    pub fn len(&self) -> usize {
        let shared = &*self.shared;
        let tail = shared.tail.0.load(Ordering::Relaxed);
        let head = shared.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head).min(shared.cap)
    }

    /// Whether the ring currently holds no elements (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The power-of-two capacity actually allocated.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, mut rx) = bounded(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ninth push must report full");
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_one_alternates() {
        let (tx, mut rx) = bounded(1);
        for i in 0..100 {
            tx.push(i).unwrap();
            assert_eq!(tx.push(i), Err(i), "capacity-1 ring full after one push");
            assert!(rx.has_ready());
            assert_eq!(rx.pop(), Some(i));
            assert!(!rx.has_ready());
            assert_eq!(rx.pop(), None);
        }
    }

    #[test]
    fn wraps_many_laps() {
        let (tx, mut rx) = bounded(4);
        for lap in 0u64..1000 {
            for i in 0..4 {
                tx.push(lap * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.pop(), Some(lap * 4 + i));
            }
        }
    }

    #[test]
    fn ticket_counters_survive_usize_overflow() {
        let (tx, mut rx) = bounded_at(4, usize::MAX.wrapping_sub(1));
        for i in 0..64u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
        for i in 0..4u64 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(9).is_err());
        for i in 0..4u64 {
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, mut rx) = bounded(8);
        for _ in 0..5 {
            tx.push(D).ok().unwrap();
        }
        drop(rx.pop()); // one consumed
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn multi_producer_preserves_per_producer_order() {
        let (tx, mut rx) = bounded::<(usize, u64)>(64);
        let producers = 4;
        let per = 2_000u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let mut v = (p, i);
                        while let Err(back) = tx.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut last = vec![None::<u64>; producers];
            let mut got = 0u64;
            while got < producers as u64 * per {
                if let Some((p, i)) = rx.pop() {
                    got += 1;
                    assert!(
                        last[p].map_or(i == 0, |prev| i == prev + 1),
                        "producer {p} reordered: {:?} then {i}",
                        last[p]
                    );
                    last[p] = Some(i);
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(rx.pop(), None);
    }

    /// Ticket order is arrival order across producers: when producer B's
    /// push starts after producer A's push returned, B's value pops after
    /// A's. (This is the property the threaded mailbox needs in place of
    /// the channel's cross-sender FIFO.)
    #[test]
    fn cross_producer_arrival_order_is_pop_order() {
        let (tx, mut rx) = bounded::<u32>(16);
        let tx2 = tx.clone();
        tx.push(1).unwrap(); // A completes...
        std::thread::scope(|s| {
            s.spawn(move || tx2.push(2).unwrap()); // ...before B starts.
        });
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
    }
}
