//! Offline stand-in for crossbeam-style lock-free bounded queues.
//!
//! The build environment cannot fetch crates.io, so this crate vendors the
//! two fixed-capacity lock-free rings the threaded backend's mailboxes are
//! built on (see `chiller-simnet::threaded` and DESIGN.md §11):
//!
//! * [`mpsc`] — a multi-producer single-consumer bounded ring using the
//!   Vyukov / crossbeam-`ArrayQueue` *sequence-slot* protocol: every slot
//!   carries an `AtomicUsize` sequence number that encodes, at once, which
//!   "lap" of the ring the slot is on and whether it holds a value. Pushes
//!   claim a monotonically increasing ticket with one CAS; pops consume
//!   tickets in order, so the consumer observes messages in *global
//!   ticket order* — exactly the cross-producer arrival ordering a
//!   `std::sync::mpsc` channel provides, without its mutex.
//! * [`spsc`] — a single-producer single-consumer Lamport ring: two
//!   indices, no CAS at all. The cheaper fast path for links the topology
//!   makes single-producer.
//!
//! Both hand out owned `Producer`/`Consumer` endpoints so the
//! single-consumer (and, for SPSC, single-producer) contracts are enforced
//! by ownership rather than by convention; all `unsafe` is contained here.
//!
//! Capacities are rounded up to the next power of two: with power-of-two
//! capacities the `ticket & (cap - 1)` slot mapping stays consistent even
//! across `usize` wraparound, which the property tests exercise by
//! starting rings at tickets near `usize::MAX` (see `tests/props.rs`).

#![warn(missing_docs)]

pub mod mpsc;
pub mod spsc;

/// Pad-and-align wrapper keeping hot atomics on their own cache line, so
/// producer-side (tail) and consumer-side (head) traffic do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub(crate) T);

/// Round a requested capacity up to the power of two actually allocated.
/// Zero is rejected — a ring must hold at least one element.
pub(crate) fn effective_capacity(requested: usize) -> usize {
    assert!(requested >= 1, "ring capacity must be at least 1");
    requested
        .checked_next_power_of_two()
        .expect("ring capacity overflows usize")
}

#[cfg(test)]
mod tests {
    use super::effective_capacity;

    #[test]
    fn capacities_round_up_to_powers_of_two() {
        assert_eq!(effective_capacity(1), 1);
        assert_eq!(effective_capacity(2), 2);
        assert_eq!(effective_capacity(3), 4);
        assert_eq!(effective_capacity(1000), 1024);
        assert_eq!(effective_capacity(1024), 1024);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        effective_capacity(0);
    }
}
