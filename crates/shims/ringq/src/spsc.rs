//! Single-producer single-consumer bounded ring (Lamport's classic
//! two-index queue): no CAS anywhere — the producer owns `tail`, the
//! consumer owns `head`, and each side only *reads* the other's index.
//!
//! Both contracts are enforced by ownership: [`Producer`] is not `Clone`
//! and [`Producer::push`] / [`Consumer::pop`] take `&mut self`, so a
//! second concurrent producer (or consumer) cannot be expressed safely.
//! This is the fast path for mailboxes the topology makes single-producer
//! (see `chiller-simnet::threaded`): versus the MPSC ring it saves the
//! claim CAS and the per-slot sequence word.
//!
//! # Memory ordering
//!
//! The producer's `Release` store of `tail` publishes the value write it
//! precedes; the consumer's `Acquire` load of `tail` observes it.
//! Symmetrically the consumer's `Release` store of `head` publishes "slot
//! free" to the producer's `Acquire` load. Indices grow monotonically
//! with wrapping arithmetic and power-of-two capacity, so `usize`
//! overflow is harmless (exercised by the property tests).

use crate::{effective_capacity, CachePadded};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Shared<T> {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
}

// SAFETY: values cross from the producer thread to the consumer thread;
// the index protocol gives each slot a single owner at any time.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        let mut head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while head != tail {
            unsafe {
                self.slots[head & (self.cap - 1)]
                    .get_mut()
                    .assume_init_drop()
            };
            head = head.wrapping_add(1);
        }
    }
}

/// The unique sending endpoint.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The unique receiving endpoint.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded SPSC ring holding at least `capacity` elements
/// (rounded up to a power of two — see the crate docs).
pub fn bounded<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    bounded_at(capacity, 0)
}

/// [`bounded`] with the indices starting at `start` instead of zero;
/// behaviour is identical for every `start` (the property tests start
/// near `usize::MAX` to push the wrapping arithmetic through overflow).
pub fn bounded_at<T>(capacity: usize, start: usize) -> (Producer<T>, Consumer<T>) {
    let cap = effective_capacity(capacity);
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        head: CachePadded(AtomicUsize::new(start)),
        tail: CachePadded(AtomicUsize::new(start)),
        slots,
        cap,
    });
    (
        Producer {
            shared: shared.clone(),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    /// Push a value, never blocking; `Err(val)` hands it back on a full
    /// ring.
    pub fn push(&mut self, val: T) -> Result<(), T> {
        let shared = &*self.shared;
        let tail = shared.tail.0.load(Ordering::Relaxed);
        let head = shared.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == shared.cap {
            return Err(val);
        }
        // SAFETY: `tail - head < cap` proves this slot is consumed (or
        // never written); we are the only producer.
        unsafe { (*shared.slots[tail & (shared.cap - 1)].get()).write(val) };
        shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of elements currently in the ring (racy snapshot).
    pub fn len(&self) -> usize {
        let shared = &*self.shared;
        shared
            .tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(shared.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring currently holds no elements (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The power-of-two capacity actually allocated.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest value, or `None` on an empty ring.
    pub fn pop(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let head = shared.head.0.load(Ordering::Relaxed);
        let tail = shared.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head != tail` proves the slot is published; we are the
        // only consumer.
        let val = unsafe { (*shared.slots[head & (shared.cap - 1)].get()).assume_init_read() };
        shared.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(val)
    }

    /// Whether a value is poppable right now (racy snapshot).
    pub fn has_ready(&self) -> bool {
        let shared = &*self.shared;
        shared.head.0.load(Ordering::Relaxed) != shared.tail.0.load(Ordering::Acquire)
    }

    /// Number of elements currently in the ring (racy snapshot).
    pub fn len(&self) -> usize {
        let shared = &*self.shared;
        shared
            .tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(shared.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring currently holds no elements (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The power-of-two capacity actually allocated.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_full_detection() {
        let (mut tx, mut rx) = bounded(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(9), Err(9));
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_one_alternates() {
        let (mut tx, mut rx) = bounded(1);
        for i in 0..100 {
            tx.push(i).unwrap();
            assert_eq!(tx.push(i), Err(i));
            assert_eq!(rx.pop(), Some(i));
            assert_eq!(rx.pop(), None);
        }
    }

    #[test]
    fn indices_survive_usize_overflow() {
        let (mut tx, mut rx) = bounded_at(2, usize::MAX);
        for i in 0..32u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn cross_thread_order_exact() {
        let (mut tx, mut rx) = bounded::<u64>(8);
        let n = 20_000u64;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    let mut v = i;
                    while let Err(back) = tx.push(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            });
            let mut expect = 0u64;
            while expect < n {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expect, "SPSC ring reordered or lost a value");
                    expect += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = bounded(4);
        for _ in 0..3 {
            tx.push(D).ok().unwrap();
        }
        drop(rx.pop());
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
