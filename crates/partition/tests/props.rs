//! Property tests for the partitioner and contention model.

use chiller_partition::graph::Graph;
use chiller_partition::likelihood::contention_likelihood;
use chiller_partition::metis::MetisLike;
use proptest::prelude::*;

/// Random sparse graph with unit-ish vertex weights.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut g = Graph::with_vertices(n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for v in 0..n {
            g.vwgt[v] = 1.0 + (next() % 3) as f64;
        }
        let edges = n * 2;
        for _ in 0..edges {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            if a != b {
                g.add_edge(a, b, 1.0 + (next() % 5) as f64);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every vertex is assigned to a valid partition, and the reported cut
    /// and loads are consistent with the assignment.
    #[test]
    fn partitioner_output_consistent(g in graph_strategy(), k in 2u32..5) {
        let res = MetisLike::new(k, 0.10, 7).partition(&g);
        prop_assert_eq!(res.assignment.len(), g.num_vertices());
        prop_assert!(res.assignment.iter().all(|&p| p < k));
        prop_assert!((res.cut - g.edge_cut(&res.assignment)).abs() < 1e-6);
        let total: f64 = res.loads.iter().sum();
        prop_assert!((total - g.total_vertex_weight()).abs() < 1e-6);
        prop_assert!(res.cut >= 0.0);
    }

    /// Balance: no partition exceeds the ceiling by more than one maximal
    /// vertex (the strongest guarantee unit moves can give).
    #[test]
    fn partitioner_balance_bounded(g in graph_strategy(), k in 2u32..5) {
        let res = MetisLike::new(k, 0.10, 13).partition(&g);
        let mu = g.total_vertex_weight() / k as f64;
        let max_vwgt = g.vwgt.iter().cloned().fold(0.0, f64::max);
        let ceiling = (1.10 * mu) + max_vwgt + 1e-9;
        for (p, &load) in res.loads.iter().enumerate() {
            prop_assert!(load <= ceiling, "partition {p} load {load} > {ceiling}");
        }
    }

    /// Determinism: same seed, same result.
    #[test]
    fn partitioner_deterministic(g in graph_strategy(), k in 2u32..5, seed in any::<u64>()) {
        let a = MetisLike::new(k, 0.10, seed).partition(&g);
        let b = MetisLike::new(k, 0.10, seed).partition(&g);
        prop_assert_eq!(a.assignment, b.assignment);
    }

    /// Contention likelihood: bounded in [0,1], zero without writes, and
    /// monotone in both rates.
    #[test]
    fn likelihood_properties(lw in 0.0f64..50.0, lr in 0.0f64..50.0, d in 0.001f64..5.0) {
        let p = contention_likelihood(lw, lr);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert_eq!(contention_likelihood(0.0, lr), 0.0);
        prop_assert!(contention_likelihood(lw + d, lr) >= p - 1e-12);
        if lw > 0.0 {
            prop_assert!(contention_likelihood(lw, lr + d) >= p - 1e-12);
        }
    }
}
