//! Workload-graph representations (§4.2).
//!
//! Chiller models the workload as a **star graph**: every transaction is a
//! dummy *t-vertex* connected to the *r-vertices* of the records it
//! accesses; all edges of a record carry the record's contention likelihood
//! as weight. This needs only `n` edges per transaction, versus the
//! `n(n-1)/2` of Schism's clique representation — the reason the paper's
//! §4.4 reports ~5× faster graph construction + partitioning.
//!
//! The Schism-style **clique graph** is also provided as the baseline.

use chiller_common::ids::RecordId;
use std::collections::HashMap;

/// Undirected weighted graph with weighted vertices, adjacency-list form.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Vertex weights (the load metric).
    pub vwgt: Vec<f64>,
    /// `adj[v]` = (neighbor, edge weight); each edge stored in both lists.
    pub adj: Vec<Vec<(u32, f64)>>,
}

impl Graph {
    pub fn with_vertices(n: usize) -> Self {
        Graph {
            vwgt: vec![0.0; n],
            adj: vec![Vec::new(); n],
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    pub fn add_vertex(&mut self, weight: f64) -> u32 {
        self.vwgt.push(weight);
        self.adj.push(Vec::new());
        (self.vwgt.len() - 1) as u32
    }

    /// Add (or accumulate onto an existing) undirected edge.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) {
        debug_assert_ne!(u, v, "self loops are meaningless here");
        match self.adj[u as usize].iter_mut().find(|(n, _)| *n == v) {
            Some((_, ew)) => {
                *ew += w;
                let back = self.adj[v as usize]
                    .iter_mut()
                    .find(|(n, _)| *n == u)
                    .expect("edge stored in both directions");
                back.1 += w;
            }
            None => {
                self.adj[u as usize].push((v, w));
                self.adj[v as usize].push((u, w));
            }
        }
    }

    pub fn total_vertex_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Total weight of edges whose endpoints land in different partitions.
    pub fn edge_cut(&self, assignment: &[u32]) -> f64 {
        debug_assert_eq!(assignment.len(), self.num_vertices());
        let mut cut = 0.0;
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                if assignment[u] != assignment[v as usize] && (u as u32) < v {
                    cut += w;
                }
            }
        }
        cut
    }
}

/// The balance constraint's definition of load (§4.3 end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMetric {
    /// Number of executed transactions: t-vertices weigh 1, r-vertices 0.
    Transactions,
    /// Number of hosted records: r-vertices weigh 1, t-vertices 0.
    Records,
    /// Number of record accesses: r-vertices weigh reads+writes.
    #[default]
    Accesses,
}

/// Chiller's star representation plus the bookkeeping to map the
/// partitioner's output back to records and transactions.
#[derive(Debug, Clone)]
pub struct StarGraph {
    pub graph: Graph,
    /// r-vertex index of each record (r-vertices occupy `0..records.len()`).
    pub record_vertex: HashMap<RecordId, u32>,
    /// Inverse of `record_vertex`.
    pub records: Vec<RecordId>,
    /// First t-vertex index (t-vertex `i` = transaction `i` of the trace).
    pub t_base: u32,
    pub num_txns: usize,
}

impl StarGraph {
    /// Build the star graph from a trace.
    ///
    /// * `likelihood(record)` — the record's contention likelihood, used as
    ///   the weight of all its edges (§4.2: "this weight is relative to the
    ///   record's contention likelihood").
    /// * `min_edge_weight` — the §4.4 co-optimization: a positive floor on
    ///   every edge weight re-introduces pressure to co-locate records of
    ///   the same transaction (minimizing distributed transactions) as a
    ///   secondary objective.
    /// * `accesses(record)` — reads+writes, for the `Accesses` load metric.
    pub fn build(
        txns: &[crate::stats::TxnTrace],
        likelihood: impl Fn(RecordId) -> f64,
        accesses: impl Fn(RecordId) -> f64,
        metric: LoadMetric,
        min_edge_weight: f64,
    ) -> StarGraph {
        let mut record_vertex: HashMap<RecordId, u32> = HashMap::new();
        let mut records: Vec<RecordId> = Vec::new();
        for t in txns {
            for r in t.records() {
                record_vertex.entry(r).or_insert_with(|| {
                    records.push(r);
                    (records.len() - 1) as u32
                });
            }
        }
        let nr = records.len();
        let nt = txns.len();
        let mut graph = Graph::with_vertices(nr + nt);

        for (i, &r) in records.iter().enumerate() {
            graph.vwgt[i] = match metric {
                LoadMetric::Transactions => 0.0,
                LoadMetric::Records => 1.0,
                LoadMetric::Accesses => accesses(r),
            };
        }
        for t in 0..nt {
            graph.vwgt[nr + t] = match metric {
                LoadMetric::Transactions => 1.0,
                _ => 0.0,
            };
        }

        for (ti, txn) in txns.iter().enumerate() {
            let tv = (nr + ti) as u32;
            for r in txn.distinct_records() {
                let rv = record_vertex[&r];
                let w = likelihood(r) + min_edge_weight;
                graph.add_edge(rv, tv, w);
            }
        }

        StarGraph {
            graph,
            record_vertex,
            records,
            t_base: nr as u32,
            num_txns: nt,
        }
    }

    pub fn num_records(&self) -> usize {
        self.records.len()
    }
}

/// Schism-style clique co-access graph: r-vertices only; every co-accessed
/// pair gets an edge weighted by co-access frequency.
pub fn build_clique_graph(
    txns: &[crate::stats::TxnTrace],
    accesses: impl Fn(RecordId) -> f64,
    metric: LoadMetric,
) -> (Graph, HashMap<RecordId, u32>, Vec<RecordId>) {
    let mut record_vertex: HashMap<RecordId, u32> = HashMap::new();
    let mut records: Vec<RecordId> = Vec::new();
    for t in txns {
        for r in t.records() {
            record_vertex.entry(r).or_insert_with(|| {
                records.push(r);
                (records.len() - 1) as u32
            });
        }
    }
    let mut graph = Graph::with_vertices(records.len());
    for (i, &r) in records.iter().enumerate() {
        graph.vwgt[i] = match metric {
            // Transactions isn't representable without t-vertices; Schism
            // balances records or accesses.
            LoadMetric::Transactions | LoadMetric::Records => 1.0,
            LoadMetric::Accesses => accesses(r),
        };
    }
    for txn in txns {
        let rs = txn.distinct_records();
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                graph.add_edge(record_vertex[&rs[i]], record_vertex[&rs[j]], 1.0);
            }
        }
    }
    (graph, record_vertex, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TxnTrace;
    use chiller_common::ids::TableId;

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    fn trace() -> Vec<TxnTrace> {
        vec![
            TxnTrace::new(vec![rid(1)], vec![rid(2)]),
            TxnTrace::new(vec![], vec![rid(1), rid(2), rid(3)]),
        ]
    }

    #[test]
    fn graph_edge_accumulation() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 2.0);
        g.add_edge(1, 2, 1.0);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.adj[0][0], (1, 3.0));
        assert_eq!(g.adj[1].iter().find(|(n, _)| *n == 0).unwrap().1, 3.0);
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 4.0);
        let cut = g.edge_cut(&[0, 0, 1, 1]);
        assert_eq!(cut, 2.0);
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0.0);
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 7.0);
    }

    #[test]
    fn star_graph_shape_matches_paper() {
        // |V| = |R| + |T|, |E| = Σ records per txn (the §4.4 size claim).
        let txns = trace();
        let sg = StarGraph::build(&txns, |_| 0.5, |_| 1.0, LoadMetric::Records, 0.0);
        assert_eq!(sg.num_records(), 3);
        assert_eq!(sg.graph.num_vertices(), 3 + 2);
        assert_eq!(sg.graph.num_edges(), 2 + 3);
        // No record-to-record edges.
        for (u, nbrs) in sg.graph.adj.iter().enumerate().take(sg.num_records()) {
            for &(v, _) in nbrs {
                assert!(v >= sg.t_base, "r-vertex {u} connects to r-vertex {v}");
            }
        }
    }

    #[test]
    fn star_edge_weights_follow_likelihood_plus_floor() {
        let txns = trace();
        let lk = |r: RecordId| if r == rid(2) { 0.8 } else { 0.0 };
        let sg = StarGraph::build(&txns, lk, |_| 1.0, LoadMetric::Records, 0.1);
        let rv2 = sg.record_vertex[&rid(2)];
        for &(_, w) in &sg.graph.adj[rv2 as usize] {
            assert!((w - 0.9).abs() < 1e-12);
        }
        let rv1 = sg.record_vertex[&rid(1)];
        for &(_, w) in &sg.graph.adj[rv1 as usize] {
            assert!((w - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn star_load_metrics() {
        let txns = trace();
        let by_txn = StarGraph::build(&txns, |_| 0.0, |_| 2.0, LoadMetric::Transactions, 0.0);
        assert_eq!(by_txn.graph.vwgt[..3], [0.0, 0.0, 0.0]);
        assert_eq!(by_txn.graph.vwgt[3..], [1.0, 1.0]);
        let by_acc = StarGraph::build(&txns, |_| 0.0, |_| 2.0, LoadMetric::Accesses, 0.0);
        assert_eq!(by_acc.graph.vwgt[..3], [2.0, 2.0, 2.0]);
        assert_eq!(by_acc.graph.vwgt[3..], [0.0, 0.0]);
    }

    #[test]
    fn clique_graph_is_quadratic_per_txn() {
        let txns = trace();
        let (g, _, records) = build_clique_graph(&txns, |_| 1.0, LoadMetric::Records);
        assert_eq!(records.len(), 3);
        // txn1 (2 records): 1 edge; txn2 (3 records): 3 edges; pair (1,2)
        // repeats so it accumulates: distinct edges = 1+3-1 = 3.
        assert_eq!(g.num_edges(), 3);
        // Co-access frequency of (1,2) is 2.
        let v1 = records.iter().position(|&r| r == rid(1)).unwrap();
        let w12 = g.adj[v1]
            .iter()
            .find(|(n, _)| records[*n as usize] == rid(2))
            .unwrap()
            .1;
        assert_eq!(w12, 2.0);
    }

    #[test]
    fn star_vs_clique_edge_counts_diverge_for_wide_txns() {
        // A 10-record transaction: star = 10 edges, clique = 45.
        let txn = TxnTrace::new((0..10).map(rid).collect(), vec![]);
        let sg = StarGraph::build(
            std::slice::from_ref(&txn),
            |_| 0.0,
            |_| 1.0,
            LoadMetric::Records,
            0.0,
        );
        let (cg, _, _) =
            build_clique_graph(std::slice::from_ref(&txn), |_| 1.0, LoadMetric::Records);
        assert_eq!(sg.graph.num_edges(), 10);
        assert_eq!(cg.num_edges(), 45);
    }
}
