//! Schism-like baseline partitioner (Curino et al., VLDB'10), as used in the
//! paper's §7.2 comparison.
//!
//! Schism's objective is to **minimize the number of distributed
//! transactions**: it models records as vertices with an edge per
//! co-accessed pair, weighted by co-access frequency, and asks METIS for a
//! balanced min-cut. Every record then needs an explicit lookup-table entry
//! (the layout is not expressible as ranges for workloads like Instacart),
//! which is the §7.2.2 lookup-table-size comparison.
//!
//! Faithfulness notes (documented substitutions): the original Schism also
//! post-processes the per-record placement into range predicates with a
//! decision tree and may replicate read-mostly records; neither affects the
//! objective being compared (distributed-transaction minimization), so both
//! are out of scope here.

use crate::graph::{build_clique_graph, LoadMetric};
use crate::metis::{MetisLike, PartitionResult};
use crate::stats::WorkloadTrace;
use chiller_common::ids::{PartitionId, RecordId};
use chiller_storage::placement::{ExplicitPlacement, HashPlacement};
use std::collections::HashMap;

/// Configuration of the Schism-like partitioner.
#[derive(Debug, Clone)]
pub struct SchismPartitioner {
    pub k: u32,
    pub epsilon: f64,
    pub seed: u64,
    pub load_metric: LoadMetric,
}

impl SchismPartitioner {
    pub fn new(k: u32) -> Self {
        SchismPartitioner {
            k,
            epsilon: 0.05,
            seed: 0x5C415,
            load_metric: LoadMetric::Records,
        }
    }

    pub fn partition(&self, trace: &WorkloadTrace) -> SchismPartitioning {
        let mut collector = crate::stats::StatsCollector::new();
        collector.observe_all(trace);
        let accesses: HashMap<RecordId, f64> = collector
            .records()
            .map(|(r, s)| (*r, s.reads + s.writes))
            .collect();

        let (graph, record_vertex, records) = build_clique_graph(
            &trace.txns,
            |r| accesses.get(&r).copied().unwrap_or(0.0),
            self.load_metric,
        );
        let result = MetisLike::new(self.k, self.epsilon, self.seed).partition(&graph);

        let map: HashMap<RecordId, PartitionId> = record_vertex
            .iter()
            .map(|(r, &v)| (*r, PartitionId(result.assignment[v as usize])))
            .collect();

        SchismPartitioning {
            k: self.k,
            map,
            records,
            result,
            graph_vertices: graph.num_vertices(),
            graph_edges: graph.num_edges(),
        }
    }
}

/// Output of the Schism-like pipeline.
#[derive(Debug, Clone)]
pub struct SchismPartitioning {
    pub k: u32,
    /// Every traced record gets an explicit entry — the source of Schism's
    /// large lookup tables.
    pub map: HashMap<RecordId, PartitionId>,
    pub records: Vec<RecordId>,
    pub result: PartitionResult,
    pub graph_vertices: usize,
    pub graph_edges: usize,
}

impl SchismPartitioning {
    /// Materialize as a placement (hash fallback for never-traced records).
    pub fn into_placement(&self) -> ExplicitPlacement<HashPlacement> {
        ExplicitPlacement::new(self.map.clone(), HashPlacement::new(self.k))
    }

    pub fn lookup_entries(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chiller_part::distributed_ratio;
    use crate::stats::TxnTrace;
    use chiller_common::ids::TableId;
    use chiller_common::rng::seeded;
    use chiller_storage::placement::{HashPlacement, Placement};
    use rand::Rng;

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    /// Clusterable workload: transactions stay within groups of records.
    fn clustered_trace(groups: u64, per_group: u64, txns: usize) -> WorkloadTrace {
        let mut rng = seeded(23);
        let mut out = Vec::new();
        for _ in 0..txns {
            let g = rng.gen_range(0..groups);
            let base = g * per_group;
            let recs: Vec<RecordId> = (0..4)
                .map(|_| rid(base + rng.gen_range(0..per_group)))
                .collect();
            out.push(TxnTrace::new(vec![], recs));
        }
        WorkloadTrace::new(out, 1_000_000)
    }

    #[test]
    fn schism_minimizes_distributed_txns_vs_hash() {
        let trace = clustered_trace(4, 100, 4_000);
        let schism = SchismPartitioner::new(4).partition(&trace);
        let placement = schism.into_placement();
        let hash = HashPlacement::new(4);
        let r_schism = distributed_ratio(&trace.txns, &placement);
        let r_hash = distributed_ratio(&trace.txns, &hash);
        assert!(
            r_schism < 0.2,
            "clusterable workload must be mostly local under Schism (got {r_schism})"
        );
        assert!(
            r_hash > 0.8,
            "hash partitioning must break clusters (got {r_hash})"
        );
    }

    #[test]
    fn schism_lookup_covers_every_traced_record() {
        let trace = clustered_trace(2, 50, 500);
        let schism = SchismPartitioner::new(2).partition(&trace);
        let mut traced: Vec<RecordId> = trace
            .txns
            .iter()
            .flat_map(|t| t.distinct_records())
            .collect();
        traced.sort();
        traced.dedup();
        assert_eq!(schism.lookup_entries(), traced.len());
        for r in traced {
            assert!(schism.map.contains_key(&r));
        }
    }

    #[test]
    fn schism_balance_held() {
        let trace = clustered_trace(4, 100, 4_000);
        let schism = SchismPartitioner::new(4).partition(&trace);
        assert!(
            schism.result.imbalance() <= 1.15,
            "imbalance {}",
            schism.result.imbalance()
        );
    }

    #[test]
    fn placement_fallback_for_unseen_records() {
        let trace = clustered_trace(2, 10, 100);
        let schism = SchismPartitioner::new(2).partition(&trace);
        let placement = schism.into_placement();
        // A record never traced still resolves (hash fallback).
        let p = placement.partition_of(rid(999_999));
        assert!(p.0 < 2);
    }
}
