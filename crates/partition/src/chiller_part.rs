//! The end-to-end Chiller partitioning pipeline (§4).
//!
//! trace → per-record contention likelihood (§4.1) → star graph (§4.2) →
//! multilevel min-cut partitioning (§4.3) → hot-record lookup table over a
//! default hash partitioner (§4.4).
//!
//! Only records whose contention likelihood clears `hot_threshold` receive
//! lookup-table entries; everything else falls back to hash placement. The
//! paper notes this "might cause more transactions to be distributed", which
//! is acceptable because distributed transactions are cheap on fast networks
//! — contention is what matters.

use crate::graph::{LoadMetric, StarGraph};
use crate::likelihood::ContentionModel;
use crate::metis::{MetisLike, PartitionResult};
use crate::stats::{StatsCollector, TxnTrace, WorkloadTrace};
use chiller_common::ids::{PartitionId, RecordId};
use chiller_storage::placement::{HashPlacement, LookupTable, Placement};
use std::collections::HashMap;

/// Configuration of the Chiller partitioner.
#[derive(Debug, Clone)]
pub struct ChillerPartitioner {
    pub k: u32,
    pub epsilon: f64,
    pub seed: u64,
    /// Contention-likelihood threshold above which a record is "hot" and
    /// receives a lookup-table entry.
    pub hot_threshold: f64,
    /// §4.4 co-optimization: positive floor on edge weights to also
    /// discourage distributed transactions as a secondary objective.
    pub min_edge_weight: f64,
    pub load_metric: LoadMetric,
    pub model: ContentionModel,
}

impl ChillerPartitioner {
    pub fn new(k: u32, model: ContentionModel) -> Self {
        ChillerPartitioner {
            k,
            epsilon: 0.05,
            seed: 0xC411E6,
            hot_threshold: 0.01,
            min_edge_weight: 1e-4,
            load_metric: LoadMetric::Accesses,
            model,
        }
    }

    /// Run the pipeline over a trace.
    pub fn partition(&self, trace: &WorkloadTrace) -> ChillerPartitioning {
        let mut collector = StatsCollector::new();
        collector.observe_all(trace);

        let likelihoods: HashMap<RecordId, f64> =
            self.model.all_likelihoods(&collector).into_iter().collect();
        let accesses: HashMap<RecordId, f64> = collector
            .records()
            .map(|(r, s)| (*r, s.reads + s.writes))
            .collect();

        let star = StarGraph::build(
            &trace.txns,
            |r| likelihoods.get(&r).copied().unwrap_or(0.0),
            |r| accesses.get(&r).copied().unwrap_or(0.0),
            self.load_metric,
            self.min_edge_weight,
        );

        let result = MetisLike::new(self.k, self.epsilon, self.seed).partition(&star.graph);

        // Keep assignments only for hot records.
        let mut hot_assignments = HashMap::new();
        let mut hot_likelihoods = Vec::new();
        for (r, p) in self.model.hot_records(&collector, self.hot_threshold) {
            if let Some(&v) = star.record_vertex.get(&r) {
                hot_assignments.insert(r, PartitionId(result.assignment[v as usize]));
                hot_likelihoods.push((r, p));
            }
        }

        // Inner-host preference per traced transaction: the partition of
        // its t-vertex (diagnostics; the run-time decision recomputes this
        // per instance).
        let txn_home: Vec<PartitionId> = (0..star.num_txns)
            .map(|t| PartitionId(result.assignment[(star.t_base as usize) + t]))
            .collect();

        ChillerPartitioning {
            k: self.k,
            hot_assignments,
            hot_likelihoods,
            txn_home,
            result,
            graph_vertices: star.graph.num_vertices(),
            graph_edges: star.graph.num_edges(),
        }
    }
}

/// Output of the Chiller pipeline.
#[derive(Debug, Clone)]
pub struct ChillerPartitioning {
    pub k: u32,
    /// Hot record → partition (the lookup table's content).
    pub hot_assignments: HashMap<RecordId, PartitionId>,
    /// Hot records with their likelihoods, descending.
    pub hot_likelihoods: Vec<(RecordId, f64)>,
    /// Partition of each traced transaction's t-vertex.
    pub txn_home: Vec<PartitionId>,
    pub result: PartitionResult,
    pub graph_vertices: usize,
    pub graph_edges: usize,
}

impl ChillerPartitioning {
    /// Materialize the §4.4 placement: lookup entries for hot records, hash
    /// for the rest.
    pub fn into_lookup_table(&self) -> LookupTable<HashPlacement> {
        LookupTable::with_entries(
            self.hot_assignments.iter().map(|(r, p)| (*r, *p)),
            HashPlacement::new(self.k),
        )
    }

    pub fn num_hot(&self) -> usize {
        self.hot_assignments.len()
    }
}

/// Fraction of transactions that touch more than one partition under a
/// placement — the paper's Figure 8 metric.
pub fn distributed_ratio<P: Placement>(txns: &[TxnTrace], placement: &P) -> f64 {
    if txns.is_empty() {
        return 0.0;
    }
    let distributed = txns
        .iter()
        .filter(|t| {
            let mut first: Option<PartitionId> = None;
            t.records().any(|r| {
                let p = placement.partition_of(r);
                match first {
                    None => {
                        first = Some(p);
                        false
                    }
                    Some(f) => f != p,
                }
            })
        })
        .count();
    distributed as f64 / txns.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::TableId;
    use chiller_common::rng::{seeded, Zipf};
    use rand::Rng;

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    /// Synthetic skewed workload: a few hot records co-written in pairs,
    /// many cold records.
    fn skewed_trace() -> WorkloadTrace {
        let mut rng = seeded(17);
        let zipf = Zipf::new(200, 1.2);
        let mut txns = Vec::new();
        for _ in 0..3_000 {
            // Two skewed picks + two uniform cold picks.
            let h1 = zipf.sample(&mut rng) as u64;
            let h2 = zipf.sample(&mut rng) as u64;
            let c1 = 1_000 + rng.gen_range(0..50_000u64);
            let c2 = 1_000 + rng.gen_range(0..50_000u64);
            txns.push(TxnTrace::new(
                vec![rid(c1), rid(c2)],
                vec![rid(h1), rid(h2)],
            ));
        }
        WorkloadTrace::new(txns, 10_000_000)
    }

    fn model() -> ContentionModel {
        ContentionModel::new(20_000.0, 10_000_000.0)
    }

    #[test]
    fn hot_set_is_small_and_skew_ordered() {
        let trace = skewed_trace();
        let part = ChillerPartitioner::new(4, model()).partition(&trace);
        assert!(part.num_hot() > 0, "skew must produce hot records");
        assert!(
            part.num_hot() < 500,
            "hot set ({}) must be far smaller than the record population",
            part.num_hot()
        );
        // Likelihoods sorted descending.
        let ls: Vec<f64> = part.hot_likelihoods.iter().map(|(_, p)| *p).collect();
        assert!(ls.windows(2).all(|w| w[0] >= w[1]));
        // Rank-0 of the Zipf must be hot.
        assert!(part.hot_assignments.contains_key(&rid(0)));
    }

    #[test]
    fn lookup_table_entries_match_hot_set() {
        let trace = skewed_trace();
        let part = ChillerPartitioner::new(4, model()).partition(&trace);
        let lt = part.into_lookup_table();
        assert_eq!(lt.lookup_entries(), part.num_hot());
        for (r, p) in &part.hot_assignments {
            assert_eq!(lt.partition_of(*r), *p);
        }
    }

    #[test]
    fn partitions_are_balanced() {
        let trace = skewed_trace();
        let part = ChillerPartitioner::new(4, model()).partition(&trace);
        assert!(
            part.result.imbalance() <= 1.06,
            "imbalance {}",
            part.result.imbalance()
        );
    }

    #[test]
    fn cowritten_hot_pairs_tend_to_colocate() {
        // Build a workload where hot records 0&1 are always written
        // together, and 2&3 are always written together: Chiller must
        // co-locate each pair.
        let mut txns = Vec::new();
        for i in 0..2_000u64 {
            let pair = if i % 2 == 0 { (0, 1) } else { (2, 3) };
            let cold = 100 + i % 997;
            txns.push(TxnTrace::new(
                vec![rid(cold)],
                vec![rid(pair.0), rid(pair.1)],
            ));
        }
        let trace = WorkloadTrace::new(txns, 10_000_000);
        let part = ChillerPartitioner::new(2, model()).partition(&trace);
        let p0 = part.hot_assignments.get(&rid(0));
        let p1 = part.hot_assignments.get(&rid(1));
        let p2 = part.hot_assignments.get(&rid(2));
        let p3 = part.hot_assignments.get(&rid(3));
        assert!(p0.is_some() && p1.is_some() && p2.is_some() && p3.is_some());
        assert_eq!(p0, p1, "always-co-written pair must share a partition");
        assert_eq!(p2, p3, "always-co-written pair must share a partition");
    }

    #[test]
    fn distributed_ratio_counts_cross_partition_txns() {
        use chiller_storage::placement::HashPlacement;
        let txns = vec![
            TxnTrace::new(vec![rid(1)], vec![rid(1)]), // single record: local
            TxnTrace::new(vec![], (0..64).map(rid).collect()), // wide: distributed w.h.p.
        ];
        let r = distributed_ratio(&txns, &HashPlacement::new(8));
        assert!((r - 0.5).abs() < 1e-9, "ratio={r}");
    }

    #[test]
    fn deterministic_pipeline() {
        let trace = skewed_trace();
        let a = ChillerPartitioner::new(4, model()).partition(&trace);
        let b = ChillerPartitioner::new(4, model()).partition(&trace);
        assert_eq!(a.result.assignment, b.result.assignment);
        assert_eq!(a.num_hot(), b.num_hot());
    }
}
