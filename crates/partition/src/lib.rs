//! # chiller-partition
//!
//! Contention-aware data partitioning (§4 of the Chiller paper), plus the
//! baselines it is evaluated against:
//!
//! * [`stats`] — the sampling statistics service: collects per-record read
//!   and write frequencies from a (sampled) workload trace.
//! * [`likelihood`] — the Poisson contention-likelihood model
//!   `Pc = 1 − e^{−λw} − λw·e^{−λw}·e^{−λr}` (§4.1).
//! * [`graph`] — workload-graph representations: Chiller's **star** graph
//!   (one t-vertex per transaction, edges to its records weighted by
//!   contention likelihood, §4.2) and Schism's **clique** co-access graph.
//! * [`metis`] — a from-scratch multilevel k-way graph partitioner in the
//!   METIS family: heavy-edge-matching coarsening, greedy initial
//!   partitioning, Fiduccia–Mattheyses boundary refinement under a
//!   `(1+ε)·µ` balance constraint (§4.3).
//! * [`chiller_part`] — the end-to-end Chiller pipeline: trace → contention
//!   likelihoods → star graph → partitioner → hot-record lookup table over
//!   a default hash partitioner (§4.4).
//! * [`schism`] — the Schism-like baseline: co-access clique graph → same
//!   partitioner → full per-record placement (its lookup table must cover
//!   every record, the paper's §7.2.2 observation).

pub mod chiller_part;
pub mod graph;
pub mod likelihood;
pub mod metis;
pub mod schism;
pub mod stats;

pub use chiller_part::{ChillerPartitioner, ChillerPartitioning};
pub use graph::{Graph, LoadMetric, StarGraph};
pub use likelihood::{contention_likelihood, ContentionModel};
pub use metis::{MetisLike, PartitionResult};
pub use schism::SchismPartitioner;
pub use stats::{RecordStats, StatsCollector, TxnTrace, WorkloadTrace};
