//! A from-scratch multilevel k-way graph partitioner in the METIS family
//! (§4.3 uses METIS itself; this is the substitution documented in
//! DESIGN.md).
//!
//! Pipeline:
//! 1. **Coarsening** — repeated heavy-edge matching contracts the graph
//!    until it is small (preserving edge/vertex weight structure).
//! 2. **Initial partitioning** — greedy region growing on the coarsest
//!    graph, targeting `total_weight / k` per partition.
//! 3. **Uncoarsening + refinement** — the assignment is projected back
//!    level by level, running boundary Fiduccia–Mattheyses passes that move
//!    vertices to the partition with the highest connectivity gain, subject
//!    to the `(1+ε)·µ` balance ceiling.
//!
//! Determinism: all tie-breaking orders come from a seeded RNG.

use crate::graph::Graph;
use chiller_common::rng::seeded;
use rand::seq::SliceRandom;

/// Result of a k-way partitioning.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Partition of each vertex (`0..k`).
    pub assignment: Vec<u32>,
    /// Total weight of cut edges.
    pub cut: f64,
    /// Vertex-weight load per partition.
    pub loads: Vec<f64>,
}

impl PartitionResult {
    /// Maximum load divided by average load (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let avg = self.loads.iter().sum::<f64>() / self.loads.len() as f64;
        if avg == 0.0 {
            return 1.0;
        }
        self.loads.iter().cloned().fold(0.0, f64::max) / avg
    }
}

/// Configuration + entry point.
#[derive(Debug, Clone)]
pub struct MetisLike {
    pub k: u32,
    /// Allowed imbalance ε: every partition's load ≤ (1+ε)·µ.
    pub epsilon: f64,
    pub seed: u64,
    /// Stop coarsening below this many vertices (scaled by k).
    pub coarsen_target_per_part: usize,
    /// Maximum FM passes per level.
    pub max_passes: usize,
}

impl MetisLike {
    pub fn new(k: u32, epsilon: f64, seed: u64) -> Self {
        assert!(k >= 1);
        assert!(epsilon >= 0.0);
        MetisLike {
            k,
            epsilon,
            seed,
            coarsen_target_per_part: 30,
            max_passes: 8,
        }
    }

    /// Partition `g` into `k` parts.
    pub fn partition(&self, g: &Graph) -> PartitionResult {
        let n = g.num_vertices();
        if self.k == 1 || n == 0 {
            let assignment = vec![0u32; n];
            return self.finish(g, assignment);
        }
        if n <= self.k as usize {
            // Degenerate: one vertex per partition.
            let assignment = (0..n as u32).collect();
            return self.finish(g, assignment);
        }

        // --- Coarsening ---------------------------------------------------
        let target = (self.coarsen_target_per_part * self.k as usize).max(64);
        let mut levels: Vec<(Graph, Vec<u32>)> = Vec::new(); // (fine graph, fine→coarse map)
        let mut current: Graph = g.clone();
        let mut round = 0u64;
        while current.num_vertices() > target {
            let (coarse, map) =
                coarsen(&current, chiller_common::rng::derive_seed(self.seed, round));
            round += 1;
            // Stop when matching stops making progress (dense graphs).
            if coarse.num_vertices() as f64 > current.num_vertices() as f64 * 0.95 {
                break;
            }
            levels.push((std::mem::replace(&mut current, coarse), map));
        }

        // --- Initial partitioning on the coarsest graph --------------------
        // The coarsest graph is small, so afford real FM with tentative
        // negative-gain sequences and rollback — greedy hill climbing alone
        // reliably strands hub-heavy workload graphs in local optima (e.g.
        // two co-accessed hub records stuck on opposite sides because every
        // individually-beneficial move violates balance).
        let mut assignment = greedy_grow(&current, self.k, self.seed);
        for _ in 0..self.max_passes {
            if !fm_rollback_pass(&current, &mut assignment, self.k, self.epsilon) {
                break;
            }
        }
        refine(
            &current,
            &mut assignment,
            self.k,
            self.epsilon,
            self.max_passes,
        );

        // --- Uncoarsen + refine --------------------------------------------
        while let Some((fine, map)) = levels.pop() {
            let mut fine_assignment = vec![0u32; fine.num_vertices()];
            for (v, &cv) in map.iter().enumerate() {
                fine_assignment[v] = assignment[cv as usize];
            }
            assignment = fine_assignment;
            refine(
                &fine,
                &mut assignment,
                self.k,
                self.epsilon,
                self.max_passes,
            );
            current = fine;
        }
        debug_assert_eq!(current.num_vertices(), n);
        self.finish(g, assignment)
    }

    fn finish(&self, g: &Graph, assignment: Vec<u32>) -> PartitionResult {
        let mut loads = vec![0.0; self.k as usize];
        for (v, &p) in assignment.iter().enumerate() {
            loads[p as usize] += g.vwgt[v];
        }
        let cut = g.edge_cut(&assignment);
        PartitionResult {
            assignment,
            cut,
            loads,
        }
    }
}

/// One level of heavy-edge-matching coarsening. Returns the coarse graph
/// and the fine→coarse vertex map.
fn coarsen(g: &Graph, seed: u64) -> (Graph, Vec<u32>) {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut seeded(seed));

    const UNMATCHED: u32 = u32::MAX;
    // Matching below a vertex's weight scale destroys workload structure:
    // once a few hub records are matched, a transaction vertex's heaviest
    // *unmatched* neighbor is often a near-zero-weight cold edge, and
    // contracting through it glues unrelated transactions together. Only
    // accept matches within a factor of the vertex's strongest edge; the
    // two-hop pass below handles the rest structurally.
    const REL_THRESHOLD: f64 = 0.5;
    let max_edge: Vec<f64> = g
        .adj
        .iter()
        .map(|nbrs| nbrs.iter().map(|&(_, w)| w).fold(0.0, f64::max))
        .collect();

    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbor above the relative threshold.
        let floor = max_edge[v as usize] * REL_THRESHOLD;
        let mut best: Option<(u32, f64)> = None;
        for &(u, w) in &g.adj[v as usize] {
            if mate[u as usize] == UNMATCHED && u != v && w >= floor {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        // On None: try two-hop matching below.
        if let Some((u, _)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }

    // Two-hop matching pass: star-shaped workload graphs (few hub records,
    // many degree-2 transaction vertices) stall one-hop matching the moment
    // the hubs are taken — every leaf's only neighbors are matched. Pair
    // unmatched vertices that share a neighbor instead (METIS does the
    // same). Leaves of the same hub get merged, which is exactly the
    // contraction that lets hubs sharing many transactions eventually
    // collapse into one vertex.
    // Two-hop matches go through the vertex's *heaviest* incident edges
    // first: two transactions sharing a hot record are far better merge
    // candidates than two sharing a cold record. A per-intermediate scan
    // cursor keeps the total work O(E log E) even around very high-degree
    // hubs.
    let mut scan_pos = vec![0usize; n];
    let mut hops: Vec<(u32, f64)> = Vec::new();
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let floor = max_edge[v as usize] * REL_THRESHOLD;
        hops.clear();
        hops.extend(g.adj[v as usize].iter().filter(|&&(_, w)| w >= floor));
        hops.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let mut found = None;
        'outer: for &(u, _) in &hops {
            let nbrs = &g.adj[u as usize];
            while scan_pos[u as usize] < nbrs.len() {
                let w2 = nbrs[scan_pos[u as usize]].0;
                if w2 != v && mate[w2 as usize] == UNMATCHED {
                    found = Some(w2);
                    break 'outer;
                }
                scan_pos[u as usize] += 1;
            }
        }
        // On None: the final fallback pass below handles it.
        if let Some(u) = found {
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }

    // Final fallback: anything still unmatched pairs with any unmatched
    // neighbor (no threshold), else stays a singleton. This guarantees the
    // graph keeps shrinking even when thresholds exclude every candidate.
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut found = None;
        for &(u, _) in &g.adj[v as usize] {
            if u != v && mate[u as usize] == UNMATCHED {
                found = Some(u);
                break;
            }
        }
        match found {
            Some(u) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }

    // Assign coarse ids.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != UNMATCHED {
            map[m as usize] = next;
        }
        next += 1;
    }

    // Build coarse graph.
    let mut coarse = Graph::with_vertices(next as usize);
    for (&cv, &w) in map.iter().zip(&g.vwgt) {
        coarse.vwgt[cv as usize] += w;
    }
    // Accumulate edges via a scratch map to avoid O(deg^2) duplicate scans.
    let mut scratch: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    for v in 0..n {
        let cv = map[v];
        for &(u, w) in &g.adj[v] {
            let cu = map[u as usize];
            if cu == cv {
                continue; // contracted (or self) edge disappears
            }
            let key = if cv < cu { (cv, cu) } else { (cu, cv) };
            *scratch.entry(key).or_insert(0.0) += w;
        }
    }
    for ((a, b), w) in scratch {
        // Each undirected fine edge was visited from both endpoints.
        coarse.adj[a as usize].push((b, w / 2.0));
        coarse.adj[b as usize].push((a, w / 2.0));
    }
    // Deterministic adjacency order regardless of hash iteration.
    for nbrs in &mut coarse.adj {
        nbrs.sort_by_key(|a| a.0);
    }
    (coarse, map)
}

/// Greedy region growing for the initial partitioning of the coarsest graph.
fn greedy_grow(g: &Graph, k: u32, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let total: f64 = g.total_vertex_weight();
    let target = total / k as f64;
    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut seeded(chiller_common::rng::derive_seed(seed, 0xBEEF)));
    let mut cursor = 0usize;

    for p in 0..k {
        // Seed: next unassigned vertex in the shuffled order.
        while cursor < n && assignment[order[cursor] as usize] != UNASSIGNED {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let seed_v = order[cursor];
        let mut load = 0.0;
        let mut frontier = std::collections::VecDeque::new();
        assignment[seed_v as usize] = p;
        load += g.vwgt[seed_v as usize];
        frontier.push_back(seed_v);
        'grow: while load < target {
            let Some(v) = frontier.pop_front() else {
                // Region exhausted its component: jump to a fresh seed.
                let mut jump = None;
                for &cand in order.iter().skip(cursor) {
                    if assignment[cand as usize] == UNASSIGNED {
                        jump = Some(cand);
                        break;
                    }
                }
                match jump {
                    Some(cand) => {
                        assignment[cand as usize] = p;
                        load += g.vwgt[cand as usize];
                        frontier.push_back(cand);
                        continue 'grow;
                    }
                    None => break 'grow,
                }
            };
            for &(u, _) in &g.adj[v as usize] {
                if assignment[u as usize] == UNASSIGNED {
                    assignment[u as usize] = p;
                    load += g.vwgt[u as usize];
                    frontier.push_back(u);
                    if load >= target {
                        break 'grow;
                    }
                }
            }
        }
    }

    // Leftovers: attach to the partition with best connectivity, else the
    // least-loaded one.
    let mut loads = vec![0.0; k as usize];
    for (v, &p) in assignment.iter().enumerate() {
        if p != UNASSIGNED {
            loads[p as usize] += g.vwgt[v];
        }
    }
    for v in 0..n {
        if assignment[v] != UNASSIGNED {
            continue;
        }
        let mut conn = vec![0.0; k as usize];
        for &(u, w) in &g.adj[v] {
            let pu = assignment[u as usize];
            if pu != UNASSIGNED {
                conn[pu as usize] += w;
            }
        }
        let best = (0..k as usize)
            .max_by(|&a, &b| {
                (conn[a], std::cmp::Reverse(loads[a] as i64))
                    .partial_cmp(&(conn[b], std::cmp::Reverse(loads[b] as i64)))
                    .expect("finite")
            })
            .expect("k >= 1");
        let best = if conn[best] == 0.0 {
            // No connectivity signal: least loaded.
            (0..k as usize)
                .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite"))
                .expect("k >= 1")
        } else {
            best
        };
        assignment[v] = best as u32;
        loads[best] += g.vwgt[v];
    }
    assignment
}

/// One classic Fiduccia–Mattheyses pass with tentative moves and rollback.
///
/// Repeatedly applies the globally best move (including negative-gain moves
/// — each vertex moves at most once per pass), tracking the cumulative cut
/// delta; at the end, rewinds to the best balanced prefix. This escapes the
/// swap deadlocks greedy hill climbing cannot. O(moves · n · k): intended
/// for the (small) coarsest graph only.
///
/// Returns `true` if the pass improved the cut.
fn fm_rollback_pass(g: &Graph, assignment: &mut [u32], k: u32, epsilon: f64) -> bool {
    let n = g.num_vertices();
    let total = g.total_vertex_weight();
    let mu = total / k as f64;
    let ceiling = (1.0 + epsilon) * mu;

    let mut loads = vec![0.0; k as usize];
    for (v, &p) in assignment.iter().enumerate() {
        loads[p as usize] += g.vwgt[v];
    }
    let initial_max = loads.iter().cloned().fold(0.0, f64::max);

    let mut locked = vec![false; n];
    let mut moves: Vec<(usize, u32)> = Vec::new(); // (vertex, old partition)
    let mut cur_delta = 0.0;
    let mut best_delta = 0.0;
    let mut best_prefix = 0usize;
    let mut conn = vec![0.0f64; k as usize];

    // Cap the sequence length to bound the pass on large graphs.
    let max_moves = n.min(4_096);
    for _ in 0..max_moves {
        // Globally best movable vertex.
        let mut best: Option<(f64, usize, usize)> = None; // (gain, v, to)
        for v in 0..n {
            if locked[v] || g.adj[v].is_empty() {
                continue;
            }
            let from = assignment[v] as usize;
            conn.iter_mut().for_each(|c| *c = 0.0);
            for &(u, w) in &g.adj[v] {
                conn[assignment[u as usize] as usize] += w;
            }
            for to in 0..k as usize {
                if to == from {
                    continue;
                }
                // Transient ceiling: one vertex of overshoot allowed; the
                // rollback keeps only balanced prefixes anyway.
                if loads[to] + g.vwgt[v] > ceiling.max(mu + g.vwgt[v]) {
                    continue;
                }
                let gain = conn[to] - conn[from];
                let better = match best {
                    None => true,
                    Some((bg, _, bt)) => {
                        gain > bg + 1e-12 || ((gain - bg).abs() <= 1e-12 && loads[to] < loads[bt])
                    }
                };
                if better {
                    best = Some((gain, v, to));
                }
            }
        }
        let Some((gain, v, to)) = best else { break };
        let from = assignment[v] as usize;
        assignment[v] = to as u32;
        loads[from] -= g.vwgt[v];
        loads[to] += g.vwgt[v];
        locked[v] = true;
        moves.push((v, from as u32));
        cur_delta -= gain; // positive gain reduces the cut
        let max_load = loads.iter().cloned().fold(0.0, f64::max);
        let balanced = max_load <= ceiling + 1e-9 || max_load < initial_max - 1e-9;
        if balanced && cur_delta < best_delta - 1e-12 {
            best_delta = cur_delta;
            best_prefix = moves.len();
        }
        // Early exit: nothing left on the boundary worth trying.
        if moves.len() > 64 && best_prefix + 64 < moves.len() {
            break;
        }
    }

    // Rewind to the best prefix.
    for &(v, old) in moves.iter().skip(best_prefix).rev() {
        assignment[v] = old;
    }
    best_delta < -1e-12
}

/// Boundary FM refinement: greedy connectivity-gain moves under the balance
/// ceiling. Mutates `assignment` in place.
fn refine(g: &Graph, assignment: &mut [u32], k: u32, epsilon: f64, max_passes: usize) {
    let n = g.num_vertices();
    let total = g.total_vertex_weight();
    let mu = total / k as f64;
    let ceiling = (1.0 + epsilon) * mu;

    let mut loads = vec![0.0; k as usize];
    for (v, &p) in assignment.iter().enumerate() {
        loads[p as usize] += g.vwgt[v];
    }

    let mut conn = vec![0.0f64; k as usize];
    for _pass in 0..max_passes {
        let mut moved = 0usize;
        for v in 0..n {
            if g.adj[v].is_empty() {
                continue;
            }
            let from = assignment[v] as usize;
            conn.iter_mut().for_each(|c| *c = 0.0);
            for &(u, w) in &g.adj[v] {
                conn[assignment[u as usize] as usize] += w;
            }
            // Best target by gain, then by lower load (helps balance).
            let mut best_to = from;
            let mut best_gain = 0.0f64;
            for to in 0..k as usize {
                if to == from {
                    continue;
                }
                let gain = conn[to] - conn[from];
                // Strict ceiling, relaxed for strictly-improving moves into
                // below-average partitions: this lets a heavy vertex (or one
                // half of a pairwise swap) pass through a transient overshoot
                // that later passes / the repair phase rebalance — the role
                // classic FM's tentative negative-gain sequences play.
                let fits = loads[to] + g.vwgt[v] <= ceiling || (gain > 1e-12 && loads[to] <= mu);
                if !fits {
                    continue;
                }
                let better = gain > best_gain + 1e-12
                    || (gain > best_gain - 1e-12 && gain > 0.0 && loads[to] < loads[best_to]);
                if better {
                    best_gain = gain;
                    best_to = to;
                }
            }
            if best_to != from && best_gain > 1e-12 {
                assignment[v] = best_to as u32;
                loads[from] -= g.vwgt[v];
                loads[best_to] += g.vwgt[v];
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }

    // Balance repair: if anything exceeds the ceiling (possible after
    // projection or transiently-relaxed moves), push lowest-loss boundary
    // vertices out. Budgeted to guarantee termination when the ceiling is
    // infeasible (a single vertex heavier than ε·µ).
    let mut budget = n;
    loop {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(over) = (0..k as usize).find(|&p| loads[p] > ceiling + 1e-9) else {
            break;
        };
        // Candidate: vertex in `over` with the smallest move loss into the
        // least-loaded partition.
        let to = (0..k as usize)
            .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite"))
            .expect("k >= 1");
        if to == over {
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if assignment[v] as usize != over || g.vwgt[v] == 0.0 {
                continue;
            }
            let mut loss = 0.0;
            for &(u, w) in &g.adj[v] {
                let pu = assignment[u as usize] as usize;
                if pu == over {
                    loss += w;
                } else if pu == to {
                    loss -= w;
                }
            }
            match best {
                Some((_, bl)) if bl <= loss => {}
                _ => best = Some((v, loss)),
            }
        }
        match best {
            Some((v, _)) => {
                // Only move if it actually reduces the maximum load —
                // otherwise the ceiling is infeasible for this vertex mix.
                let new_to = loads[to] + g.vwgt[v];
                if new_to.max(loads[over] - g.vwgt[v]) >= loads[over] {
                    break;
                }
                assignment[v] = to as u32;
                loads[over] -= g.vwgt[v];
                loads[to] += g.vwgt[v];
            }
            None => break, // nothing movable (all zero-weight)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense clusters joined by one light edge: the partitioner must
    /// cut the bridge.
    fn two_clusters(size: usize) -> Graph {
        let mut g = Graph::with_vertices(2 * size);
        for c in 0..2 {
            let base = c * size;
            for i in 0..size {
                g.vwgt[base + i] = 1.0;
                for j in (i + 1)..size {
                    g.add_edge((base + i) as u32, (base + j) as u32, 1.0);
                }
            }
        }
        g.add_edge(0, size as u32, 0.1);
        g
    }

    #[test]
    fn bisects_two_clusters_along_bridge() {
        let g = two_clusters(20);
        let res = MetisLike::new(2, 0.05, 42).partition(&g);
        assert!(
            res.cut <= 0.1 + 1e-9,
            "cut={} should be the bridge",
            res.cut
        );
        assert!(res.imbalance() <= 1.05 + 1e-9);
        // Clusters must be pure.
        let p0 = res.assignment[0];
        assert!(res.assignment[..20].iter().all(|&p| p == p0));
        assert!(res.assignment[20..].iter().all(|&p| p != p0));
    }

    #[test]
    fn k4_on_four_clusters() {
        let mut g = Graph::with_vertices(40);
        for c in 0..4 {
            let base = c * 10;
            for i in 0..10 {
                g.vwgt[base + i] = 1.0;
                for j in (i + 1)..10 {
                    g.add_edge((base + i) as u32, (base + j) as u32, 1.0);
                }
            }
        }
        // Light ring between clusters.
        for c in 0..4u32 {
            g.add_edge(c * 10, ((c + 1) % 4) * 10, 0.01);
        }
        let res = MetisLike::new(4, 0.10, 7).partition(&g);
        assert!(res.cut <= 0.04 + 1e-9, "cut={}", res.cut);
        for c in 0..4 {
            let p = res.assignment[c * 10];
            assert!((0..10).all(|i| res.assignment[c * 10 + i] == p));
        }
        assert!(res.imbalance() <= 1.10 + 1e-9);
    }

    #[test]
    fn respects_balance_on_path_graph() {
        let n = 100;
        let mut g = Graph::with_vertices(n);
        for i in 0..n {
            g.vwgt[i] = 1.0;
        }
        for i in 0..n - 1 {
            g.add_edge(i as u32, (i + 1) as u32, 1.0);
        }
        let res = MetisLike::new(4, 0.05, 3).partition(&g);
        assert!(res.imbalance() <= 1.06, "imbalance={}", res.imbalance());
        // A path cut into 4 balanced pieces needs only 3 cut edges.
        assert!(res.cut <= 6.0, "cut={}", res.cut);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = two_clusters(30);
        let a = MetisLike::new(2, 0.05, 99).partition(&g);
        let b = MetisLike::new(2, 0.05, 99).partition(&g);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn k1_assigns_everything_to_zero() {
        let g = two_clusters(5);
        let res = MetisLike::new(1, 0.0, 1).partition(&g);
        assert!(res.assignment.iter().all(|&p| p == 0));
        assert_eq!(res.cut, 0.0);
    }

    #[test]
    fn tiny_graphs_handled() {
        let res = MetisLike::new(4, 0.1, 1).partition(&Graph::with_vertices(0));
        assert!(res.assignment.is_empty());
        let mut g = Graph::with_vertices(2);
        g.vwgt = vec![1.0, 1.0];
        g.add_edge(0, 1, 5.0);
        let res = MetisLike::new(4, 0.1, 1).partition(&g);
        assert_eq!(res.assignment.len(), 2);
        assert!(res.assignment.iter().all(|&p| p < 4));
    }

    #[test]
    fn zero_weight_vertices_do_not_break_balance() {
        // Star graphs have zero-weight t-vertices under the Records metric.
        let mut g = Graph::with_vertices(20);
        for i in 0..10 {
            g.vwgt[i] = 1.0; // records
        }
        for t in 10..20 {
            g.vwgt[t] = 0.0; // t-vertices
            g.add_edge(t as u32, ((t - 10) % 10) as u32, 1.0);
            g.add_edge(t as u32, ((t - 9) % 10) as u32, 1.0);
        }
        let res = MetisLike::new(2, 0.10, 5).partition(&g);
        let record_loads: Vec<f64> = res.loads.clone();
        assert!((record_loads[0] - 5.0).abs() <= 1.0);
    }

    #[test]
    fn heavy_edges_attract_matching() {
        // Pairs joined by heavy edges should survive contraction together,
        // giving a near-zero cut when each pair stays whole.
        let mut g = Graph::with_vertices(8);
        for i in 0..8 {
            g.vwgt[i] = 1.0;
        }
        for p in 0..4u32 {
            g.add_edge(2 * p, 2 * p + 1, 100.0);
        }
        // Weak ring across pairs.
        for p in 0..4u32 {
            g.add_edge(2 * p, (2 * p + 2) % 8, 0.1);
        }
        let res = MetisLike::new(2, 0.1, 11).partition(&g);
        for p in 0..4usize {
            assert_eq!(
                res.assignment[2 * p],
                res.assignment[2 * p + 1],
                "pair {p} split by partitioning"
            );
        }
    }
}

#[cfg(test)]
mod hub_regression {
    use super::*;
    use crate::graph::Graph;

    /// Regression test for the star-graph local optimum: two pairs of hub
    /// records, each pair co-accessed by 1000 transactions, plus shared
    /// cold records. Greedy-only refinement used to strand the pairs on
    /// opposite sides (cut ≈ 1188); the rollback FM pass plus structural
    /// two-hop matching must find the community structure (cut ≈ cold
    /// edges only).
    #[test]
    fn hub_pairs_colocate_with_small_cut() {
        let mut g = Graph::with_vertices(4);
        for i in 0..4 {
            g.vwgt[i] = 1000.0;
        }
        for _ in 0..997 {
            g.add_vertex(2.0);
        }
        for i in 0..2000u32 {
            let t = g.add_vertex(0.0);
            let (a, b) = if i % 2 == 0 { (0u32, 1u32) } else { (2, 3) };
            g.add_edge(t, a, 0.594);
            g.add_edge(t, b, 0.594);
            let cold = 4 + (i % 997);
            g.add_edge(t, cold, 0.005);
        }
        let res = MetisLike::new(2, 0.05, 0xC411E6).partition(&g);
        assert!(res.cut < 50.0, "cut={} must be cold edges only", res.cut);
        assert_eq!(res.assignment[0], res.assignment[1], "pair (0,1) split");
        assert_eq!(res.assignment[2], res.assignment[3], "pair (2,3) split");
        assert_ne!(
            res.assignment[0], res.assignment[2],
            "balance requires separation"
        );
        assert!(res.imbalance() <= 1.06, "imbalance={}", res.imbalance());
    }
}
