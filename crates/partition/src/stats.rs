//! The sampling statistics service (§4.1, first paragraph).
//!
//! Each partition manager samples running transactions and periodically
//! ships the read- and write-sets of the most frequently accessed records to
//! a global statistics service. Here the service is a [`StatsCollector`]
//! that consumes a [`WorkloadTrace`] (optionally sampled) and aggregates
//! per-record access frequencies for a time window.

use chiller_common::ids::RecordId;
use chiller_common::rng::seeded;
use rand::Rng;
use std::collections::HashMap;

/// One sampled transaction: its read set and write set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnTrace {
    pub reads: Vec<RecordId>,
    pub writes: Vec<RecordId>,
}

impl TxnTrace {
    pub fn new(reads: Vec<RecordId>, writes: Vec<RecordId>) -> Self {
        TxnTrace { reads, writes }
    }

    /// All records the transaction touches (reads ∪ writes, writes first).
    pub fn records(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.writes.iter().chain(self.reads.iter()).copied()
    }

    /// Deduplicated record set (a record both read and written counts once,
    /// as a write).
    pub fn distinct_records(&self) -> Vec<RecordId> {
        let mut v: Vec<RecordId> = self.records().collect();
        v.sort();
        v.dedup();
        v
    }
}

/// A workload trace: sampled transactions covering `window_ns` of run time.
#[derive(Debug, Clone, Default)]
pub struct WorkloadTrace {
    pub txns: Vec<TxnTrace>,
    /// Virtual-time span the trace covers, for rate normalization.
    pub window_ns: u64,
}

impl WorkloadTrace {
    pub fn new(txns: Vec<TxnTrace>, window_ns: u64) -> Self {
        WorkloadTrace { txns, window_ns }
    }

    /// Uniformly subsample with the given rate (the paper finds 0.1%
    /// sufficient). The effective transaction *rate* is preserved by
    /// scaling counts at aggregation time via the returned trace's
    /// `sample_inverse`.
    pub fn sampled(&self, rate: f64, seed: u64) -> (WorkloadTrace, f64) {
        assert!((0.0..=1.0).contains(&rate));
        let mut rng = seeded(seed);
        let txns: Vec<TxnTrace> = self
            .txns
            .iter()
            .filter(|_| rng.gen::<f64>() < rate)
            .cloned()
            .collect();
        (
            WorkloadTrace {
                txns,
                window_ns: self.window_ns,
            },
            if rate > 0.0 { 1.0 / rate } else { 0.0 },
        )
    }
}

/// Aggregated per-record counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecordStats {
    pub reads: f64,
    pub writes: f64,
}

/// Aggregates traces into per-record access frequencies.
#[derive(Debug, Default)]
pub struct StatsCollector {
    counts: HashMap<RecordId, RecordStats>,
    txns_seen: u64,
    /// Multiplier applied to each sampled observation (inverse sample rate).
    scale: f64,
}

impl StatsCollector {
    pub fn new() -> Self {
        StatsCollector {
            counts: HashMap::new(),
            txns_seen: 0,
            scale: 1.0,
        }
    }

    /// Collector for a trace that represents a `1/scale` sample of the
    /// real workload.
    pub fn with_scale(scale: f64) -> Self {
        StatsCollector {
            counts: HashMap::new(),
            txns_seen: 0,
            scale,
        }
    }

    pub fn observe(&mut self, txn: &TxnTrace) {
        self.txns_seen += 1;
        for &r in &txn.reads {
            self.counts.entry(r).or_default().reads += self.scale;
        }
        for &w in &txn.writes {
            self.counts.entry(w).or_default().writes += self.scale;
        }
    }

    pub fn observe_all(&mut self, trace: &WorkloadTrace) {
        for t in &trace.txns {
            self.observe(t);
        }
    }

    pub fn stats(&self, record: RecordId) -> RecordStats {
        self.counts.get(&record).copied().unwrap_or_default()
    }

    pub fn records(&self) -> impl Iterator<Item = (&RecordId, &RecordStats)> {
        self.counts.iter()
    }

    pub fn num_records(&self) -> usize {
        self.counts.len()
    }

    pub fn txns_seen(&self) -> u64 {
        self.txns_seen
    }

    /// The most frequently *written* records, descending — a quick view of
    /// the contention points (ties broken by record id for determinism).
    pub fn top_written(&self, n: usize) -> Vec<(RecordId, RecordStats)> {
        let mut v: Vec<(RecordId, RecordStats)> =
            self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by(|a, b| {
            b.1.writes
                .partial_cmp(&a.1.writes)
                .expect("counts are finite")
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::TableId;

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    #[test]
    fn observe_counts_reads_and_writes() {
        let mut c = StatsCollector::new();
        c.observe(&TxnTrace::new(vec![rid(1), rid(2)], vec![rid(1)]));
        c.observe(&TxnTrace::new(vec![], vec![rid(1)]));
        assert_eq!(
            c.stats(rid(1)),
            RecordStats {
                reads: 1.0,
                writes: 2.0
            }
        );
        assert_eq!(
            c.stats(rid(2)),
            RecordStats {
                reads: 1.0,
                writes: 0.0
            }
        );
        assert_eq!(c.stats(rid(9)), RecordStats::default());
        assert_eq!(c.txns_seen(), 2);
    }

    #[test]
    fn scale_amplifies_sampled_counts() {
        let mut c = StatsCollector::with_scale(1000.0);
        c.observe(&TxnTrace::new(vec![], vec![rid(1)]));
        assert_eq!(c.stats(rid(1)).writes, 1000.0);
    }

    #[test]
    fn top_written_orders_descending() {
        let mut c = StatsCollector::new();
        for _ in 0..5 {
            c.observe(&TxnTrace::new(vec![], vec![rid(7)]));
        }
        for _ in 0..2 {
            c.observe(&TxnTrace::new(vec![], vec![rid(3)]));
        }
        let top = c.top_written(2);
        assert_eq!(top[0].0, rid(7));
        assert_eq!(top[1].0, rid(3));
    }

    #[test]
    fn sampling_preserves_rate_statistically() {
        let trace = WorkloadTrace::new(
            (0..10_000)
                .map(|i| TxnTrace::new(vec![rid(i % 10)], vec![]))
                .collect(),
            1_000,
        );
        let (sampled, inv) = trace.sampled(0.1, 42);
        assert!(inv == 10.0);
        let n = sampled.txns.len();
        assert!((800..1_200).contains(&n), "sampled {n} of 10000 at 10%");
        // Scaled aggregation approximates the full counts.
        let mut full = StatsCollector::new();
        full.observe_all(&trace);
        let mut est = StatsCollector::with_scale(inv);
        est.observe_all(&sampled);
        let f = full.stats(rid(1)).reads;
        let e = est.stats(rid(1)).reads;
        assert!((e - f).abs() / f < 0.25, "estimate {e} vs full {f}");
    }

    #[test]
    fn distinct_records_dedupes() {
        let t = TxnTrace::new(vec![rid(1), rid(2)], vec![rid(2), rid(3)]);
        assert_eq!(t.distinct_records(), vec![rid(1), rid(2), rid(3)]);
    }
}
