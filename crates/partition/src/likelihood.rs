//! The Poisson contention-likelihood model (§4.1).
//!
//! Reads and writes to a record within a *lock window* (the average time a
//! lock is held) are modeled as Poisson processes with arrival rates λr and
//! λw. A conflicting access occurs on (i) a write-write conflict — more than
//! one write and no read — or (ii) a read-write conflict. The paper derives:
//!
//! ```text
//! Pc(λw, λr) = 1 − e^{−λw} − λw · e^{−λw} · e^{−λr}
//! ```
//!
//! Note the properties the paper calls out: `Pc = 0` when `λw = 0` (shared
//! locks never conflict), and for `λw > 0`, `Pc` grows with `λr`.

use crate::stats::{RecordStats, StatsCollector};
use chiller_common::ids::RecordId;

/// Evaluate the closed-form contention likelihood.
#[inline]
pub fn contention_likelihood(lambda_w: f64, lambda_r: f64) -> f64 {
    debug_assert!(lambda_w >= 0.0 && lambda_r >= 0.0);
    1.0 - (-lambda_w).exp() - lambda_w * (-lambda_w).exp() * (-lambda_r).exp()
}

/// Converts raw access counts into arrival rates and likelihoods.
///
/// λ is the *time-normalized* access frequency: accesses per lock window,
/// i.e. `count / trace_window * lock_window`.
#[derive(Debug, Clone, Copy)]
pub struct ContentionModel {
    /// Average lock-hold duration in ns (measured by the engines; the paper
    /// defines the lock window this way).
    pub lock_window_ns: f64,
    /// Span of virtual time the statistics cover.
    pub trace_window_ns: f64,
}

impl ContentionModel {
    pub fn new(lock_window_ns: f64, trace_window_ns: f64) -> Self {
        assert!(lock_window_ns > 0.0 && trace_window_ns > 0.0);
        ContentionModel {
            lock_window_ns,
            trace_window_ns,
        }
    }

    /// Arrival rate per lock window for an access count.
    #[inline]
    pub fn lambda(&self, count: f64) -> f64 {
        count / self.trace_window_ns * self.lock_window_ns
    }

    /// Contention likelihood of a record with the given counters.
    pub fn likelihood(&self, stats: RecordStats) -> f64 {
        contention_likelihood(self.lambda(stats.writes), self.lambda(stats.reads))
    }

    /// Likelihoods for every record a collector has seen, unsorted.
    pub fn all_likelihoods(&self, collector: &StatsCollector) -> Vec<(RecordId, f64)> {
        collector
            .records()
            .map(|(r, s)| (*r, self.likelihood(*s)))
            .collect()
    }

    /// Records whose likelihood passes `threshold`, sorted by likelihood
    /// descending (ties by id) — the hot set that populates the lookup
    /// table (§4.4).
    pub fn hot_records(&self, collector: &StatsCollector, threshold: f64) -> Vec<(RecordId, f64)> {
        let mut v: Vec<(RecordId, f64)> = self
            .all_likelihoods(collector)
            .into_iter()
            .filter(|(_, p)| *p >= threshold)
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TxnTrace;
    use chiller_common::ids::TableId;

    #[test]
    fn zero_writes_means_zero_contention() {
        // Shared locks are compatible: reads alone never conflict.
        for lr in [0.0, 0.5, 10.0, 1e6] {
            assert_eq!(contention_likelihood(0.0, lr), 0.0);
        }
    }

    #[test]
    fn monotone_in_write_rate() {
        let mut last = -1.0;
        for i in 0..100 {
            let p = contention_likelihood(i as f64 * 0.1, 0.5);
            assert!(p >= last, "Pc must be nondecreasing in λw");
            last = p;
        }
    }

    #[test]
    fn monotone_in_read_rate_given_writes() {
        let mut last = -1.0;
        for i in 0..100 {
            let p = contention_likelihood(0.7, i as f64 * 0.1);
            assert!(p >= last, "Pc must be nondecreasing in λr when λw>0");
            last = p;
        }
    }

    #[test]
    fn bounded_in_unit_interval() {
        for lw in [0.0, 0.1, 1.0, 10.0, 100.0] {
            for lr in [0.0, 0.1, 1.0, 10.0, 100.0] {
                let p = contention_likelihood(lw, lr);
                assert!((0.0..=1.0).contains(&p), "Pc({lw},{lr})={p}");
            }
        }
    }

    #[test]
    fn matches_closed_form_expansion() {
        // Independent derivation from the two scenario terms:
        // (i)  P(Xw>1)·P(Xr=0) and (ii) P(Xw>0)·P(Xr>0).
        let (lw, lr): (f64, f64) = (0.8, 1.3);
        let p_w_gt1 = 1.0 - (-lw).exp() - lw * (-lw).exp();
        let p_r_eq0 = (-lr).exp();
        let p_w_gt0 = 1.0 - (-lw).exp();
        let p_r_gt0 = 1.0 - p_r_eq0;
        let expected = p_w_gt1 * p_r_eq0 + p_w_gt0 * p_r_gt0;
        let got = contention_likelihood(lw, lr);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn saturates_at_high_rates() {
        assert!(contention_likelihood(50.0, 0.0) > 0.999);
    }

    #[test]
    fn model_normalizes_by_windows() {
        let m = ContentionModel::new(1_000.0, 1_000_000.0);
        // 2000 writes over 1ms window, 1us lock window → λw = 2.
        assert!((m.lambda(2_000.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hot_records_filter_and_order() {
        let rid = |k| RecordId::new(TableId(1), k);
        let mut c = StatsCollector::new();
        // Record 1: very hot (many writes); record 2: warm; record 3: cold.
        for _ in 0..1_000 {
            c.observe(&TxnTrace::new(vec![], vec![rid(1)]));
        }
        for _ in 0..100 {
            c.observe(&TxnTrace::new(vec![], vec![rid(2)]));
        }
        c.observe(&TxnTrace::new(vec![rid(3)], vec![]));
        let m = ContentionModel::new(10_000.0, 1_000_000.0);
        // λw(rec1) = 10 → Pc ≈ 1; λw(rec2) = 1 → Pc = 1 − 2/e ≈ 0.264.
        let hot = m.hot_records(&c, 0.5);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, rid(1));
        let warm = m.hot_records(&c, 0.0001);
        assert_eq!(warm.len(), 2, "read-only record must stay cold");
        assert_eq!(warm[0].0, rid(1));
        assert_eq!(warm[1].0, rid(2));
    }
}
