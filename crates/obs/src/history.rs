//! Recorded-history transport: the observation side of black-box
//! serializability checking (DESIGN.md §14).
//!
//! Engines record three kinds of observation — the version a committed
//! transaction *read* for each record, the version each of its writes
//! *installed*, and the commit itself — into a per-engine lock-free SPSC
//! ring, exactly like the lifecycle [`crate::Tracer`]: pushes are
//! wait-free and never stall an engine; a full ring counts drops instead
//! of blocking. The control plane drains every ring at phase boundaries
//! into a [`History`], which `chiller-checker` assembles into committed
//! transactions and checks for dependency cycles.
//!
//! Aborted attempts need no filtering at record time: every attempt runs
//! under a fresh `TxnId`, so observations from attempts that never emit a
//! [`HistoryEventKind::Commit`] simply drop out at assembly.

use chiller_common::{NodeId, RecordId, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-engine history ring capacity (events). Override with
/// `CHILLER_CHECK_BUF`. Overflow never blocks the engine: excess events
/// are counted as dropped and reported on the [`History`].
pub const DEFAULT_HISTORY_BUF: usize = 1 << 16;

/// One recorded observation. `ts` is nanoseconds on the owning runtime's
/// clock (virtual time on the simulator, monotonic wall time otherwise);
/// `node` is the engine that observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryEvent {
    /// Clock timestamp in nanoseconds (sim-time or wall-time).
    pub ts: u64,
    /// Engine that recorded the observation.
    pub node: NodeId,
    /// What was observed.
    pub kind: HistoryEventKind,
}

/// The observation taxonomy: versioned reads, versioned writes, commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryEventKind {
    /// The transaction read `record` and observed the state installed by
    /// its `version`-th committed write (0 = initial load, never written).
    ReadObs {
        /// Reading transaction.
        txn: TxnId,
        /// Record read.
        record: RecordId,
        /// Per-record version observed (see `PartitionStore::record_version`).
        version: u64,
    },
    /// The transaction's commit installed the `version`-th write of
    /// `record` (a delete counts: it installs a tombstone version).
    WriteObs {
        /// Writing transaction.
        txn: TxnId,
        /// Record written.
        record: RecordId,
        /// Per-record version this write installed.
        version: u64,
    },
    /// The transaction committed (recorded at its coordinator). Attempts
    /// without this event are aborts and drop out at assembly.
    Commit {
        /// Committed transaction.
        txn: TxnId,
    },
}

impl HistoryEventKind {
    /// The transaction this observation belongs to.
    pub fn txn(&self) -> TxnId {
        match *self {
            HistoryEventKind::ReadObs { txn, .. }
            | HistoryEventKind::WriteObs { txn, .. }
            | HistoryEventKind::Commit { txn } => txn,
        }
    }
}

/// Per-engine observation producer. Owned by the engine actor so it moves
/// with the actor between phases and threads; pushes are wait-free
/// (Lamport SPSC) and never block — a full ring counts the event as
/// dropped.
pub struct HistoryRecorder {
    tx: Option<ringq::spsc::Producer<HistoryEvent>>,
    dropped: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for HistoryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryRecorder")
            .field("enabled", &self.tx.is_some())
            .finish()
    }
}

impl HistoryRecorder {
    /// A recorder that records nothing (checking off: no ring is allocated,
    /// every record call is a branch on a `None`).
    pub fn disabled() -> HistoryRecorder {
        HistoryRecorder {
            tx: None,
            dropped: None,
        }
    }

    /// A recorder feeding a `capacity`-event ring, plus the sink the
    /// control plane drains at phase boundaries.
    pub fn buffered(capacity: usize) -> (HistoryRecorder, HistorySink) {
        let (tx, rx) = ringq::spsc::bounded(capacity.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        (
            HistoryRecorder {
                tx: Some(tx),
                dropped: Some(Arc::clone(&dropped)),
            },
            HistorySink { rx, dropped },
        )
    }

    /// Whether observations are recorded at all. Hot paths gate the
    /// version lookup behind this so checking off costs one branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tx.is_some()
    }

    /// Push one observation; never blocks. A full ring drops the event and
    /// bumps the shared drop counter.
    #[inline]
    pub fn record(&mut self, ts: u64, node: NodeId, kind: HistoryEventKind) {
        if let Some(tx) = &mut self.tx {
            if tx.push(HistoryEvent { ts, node, kind }).is_err() {
                if let Some(d) = &self.dropped {
                    d.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Consumer half of one engine's history ring. The control plane drains
/// all sinks into a [`History`] at phase boundaries (the engines are
/// quiescent then, so drains race with nothing).
pub struct HistorySink {
    rx: ringq::spsc::Consumer<HistoryEvent>,
    dropped: Arc<AtomicU64>,
}

impl HistorySink {
    /// Move every buffered observation into `history` and fold in the drop
    /// count accumulated since the last drain.
    pub fn drain_into(&mut self, history: &mut History) {
        while let Some(ev) = self.rx.pop() {
            history.events.push(ev);
        }
        history.dropped += self.dropped.swap(0, Ordering::Relaxed);
    }
}

/// All drained observations of a run, in per-engine push order (drain
/// order across engines is by node id; the checker groups by transaction,
/// so cross-engine interleaving is irrelevant).
#[derive(Debug, Default)]
pub struct History {
    /// Drained observations.
    pub events: Vec<HistoryEvent>,
    /// Observations lost to full rings. A nonzero count makes the history
    /// incomplete: the checker reports it and callers should size
    /// `CHILLER_CHECK_BUF` up rather than trust a partial verdict.
    pub dropped: u64,
}

impl History {
    /// Number of buffered observations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::TableId;

    fn txn(node: u32, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    #[test]
    fn disabled_recorder_is_a_noop() {
        let mut r = HistoryRecorder::disabled();
        assert!(!r.enabled());
        r.record(1, NodeId(0), HistoryEventKind::Commit { txn: txn(0, 1) });
    }

    #[test]
    fn buffered_recorder_roundtrips_observations() {
        let (mut r, mut sink) = HistoryRecorder::buffered(8);
        assert!(r.enabled());
        r.record(
            10,
            NodeId(1),
            HistoryEventKind::ReadObs {
                txn: txn(1, 3),
                record: rid(7),
                version: 2,
            },
        );
        r.record(
            20,
            NodeId(1),
            HistoryEventKind::WriteObs {
                txn: txn(1, 3),
                record: rid(7),
                version: 3,
            },
        );
        r.record(30, NodeId(1), HistoryEventKind::Commit { txn: txn(1, 3) });
        let mut h = History::default();
        sink.drain_into(&mut h);
        assert_eq!(h.len(), 3);
        assert_eq!(h.dropped, 0);
        assert_eq!(h.events[0].kind.txn(), txn(1, 3));
        assert_eq!(
            h.events[2].kind,
            HistoryEventKind::Commit { txn: txn(1, 3) }
        );
    }

    #[test]
    fn full_ring_counts_drops_instead_of_blocking() {
        let (mut r, mut sink) = HistoryRecorder::buffered(2);
        for i in 0..5u64 {
            r.record(i, NodeId(0), HistoryEventKind::Commit { txn: txn(0, i) });
        }
        let mut h = History::default();
        sink.drain_into(&mut h);
        assert_eq!(h.len() as u64 + h.dropped, 5);
        assert!(h.dropped >= 1, "capacity-2 ring must have dropped");
    }
}
