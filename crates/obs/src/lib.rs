//! # chiller-obs
//!
//! Transaction-lifecycle tracing + runtime telemetry for the Chiller
//! reproduction (DESIGN.md §13).
//!
//! Two independent facilities share this crate:
//!
//! * **Lifecycle tracing** ([`Tracer`] / [`TraceLog`]): per-transaction spans
//!   (begin, lock acquire/release, remote hops, abort with a structured
//!   reason, retry, commit) pushed into a per-engine lock-free SPSC ring
//!   (the `ringq` shim) and drained by the control plane at quiescence.
//!   Timestamps come from the owning runtime's `Clock`, so the simulated
//!   backend traces in virtual time and stays byte-deterministic. Gated by
//!   [`TraceMode`] (`CHILLER_TRACE` / `ClusterBuilder::trace`): when off, the
//!   tracer is a `None` producer and every record call is a branch on a
//!   local field — nothing is allocated and no ring exists.
//! * **History recording** ([`HistoryRecorder`] / [`History`]): versioned
//!   read/write observations plus commits, pushed through the same SPSC
//!   ring discipline and drained into the input of the black-box
//!   serializability checker (`chiller-checker`, DESIGN.md §14). Gated by
//!   `CHILLER_CHECK` / `ClusterBuilder::check`: when off, no ring exists
//!   and every record call is one branch.
//! * **Runtime telemetry** ([`RuntimeTelemetry`]): always-on counters for the
//!   scheduler internals the threaded and async backends were previously
//!   debugged blind on — batches drained, flush stalls, parked-queue depth
//!   high-water, park/unpark and lost-wakeup-avoided counts, task-queue
//!   steal/inject counts, ring occupancy high-water, and a timer-wheel slop
//!   histogram. Counters are plain per-thread fields merged on read, not
//!   shared atomics, so the hot paths pay one increment per *batch*.
//!
//! Exporters: [`TraceLog::to_jsonl`] (one JSON object per event line) and
//! [`TraceLog::to_chrome_trace`] (Chrome `trace_event` JSON: one track per
//! engine, nestable async spans per transaction attempt, lock-hold spans as
//! complete events). `RunReport::prometheus()` in `chiller` renders the
//! counter side as a Prometheus-style plain-text dump.

#![warn(missing_docs)]

mod export;
mod history;
mod telemetry;
mod trace;

pub use history::{
    History, HistoryEvent, HistoryEventKind, HistoryRecorder, HistorySink, DEFAULT_HISTORY_BUF,
};
pub use telemetry::RuntimeTelemetry;
pub use trace::{
    EventKind, TraceEvent, TraceLog, TraceMode, TraceSink, Tracer, DEFAULT_SAMPLE_INTERVAL,
    DEFAULT_TRACE_BUF,
};
