//! Trace mode, event model, and the lock-free producer/drain pair.

use chiller_common::metrics::AbortReason;
use chiller_common::{NodeId, RecordId, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default sampling interval for `CHILLER_TRACE=sample`: one in every N
/// transactions (by per-engine sequence number) is traced.
pub const DEFAULT_SAMPLE_INTERVAL: u32 = 64;

/// Default per-engine trace ring capacity (events). Override with
/// `CHILLER_TRACE_BUF`. Overflow never blocks the engine: excess events are
/// counted as dropped and reported on the [`TraceLog`].
pub const DEFAULT_TRACE_BUF: usize = 1 << 16;

/// How much of the transaction lifecycle to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing: no rings exist, record calls are a single branch.
    Off,
    /// Lifecycle events (begin/retry/abort/commit) for one in every `N`
    /// transactions, selected deterministically by per-engine sequence
    /// number (`seq % N == 0`). Lock spans and hops are not recorded.
    Sample(u32),
    /// Everything for every transaction: lifecycle, per-record lock
    /// acquire/release spans, and remote send/recv hops.
    Full,
}

impl TraceMode {
    /// Parse `CHILLER_TRACE`: unset/`off`/`0` → `Off`, `sample` →
    /// `Sample(64)`, `sample=N` → `Sample(N)`, `full`/`1` → `Full`.
    ///
    /// # Panics
    /// On an unrecognized value, so a typo'd knob fails loudly instead of
    /// silently benchmarking the wrong configuration.
    pub fn from_env() -> TraceMode {
        match std::env::var("CHILLER_TRACE") {
            Err(_) => TraceMode::Off,
            Ok(v) => match v.as_str() {
                "" | "off" | "0" => TraceMode::Off,
                "full" | "1" => TraceMode::Full,
                "sample" => TraceMode::Sample(DEFAULT_SAMPLE_INTERVAL),
                other => match other.strip_prefix("sample=") {
                    Some(n) => TraceMode::Sample(
                        n.parse::<u32>()
                            .unwrap_or_else(|_| {
                                panic!("CHILLER_TRACE=sample=N needs an integer, got {n:?}")
                            })
                            .max(1),
                    ),
                    None => panic!("CHILLER_TRACE must be off|sample|sample=N|full, got {other:?}"),
                },
            },
        }
    }

    /// Trace ring capacity from `CHILLER_TRACE_BUF` (events per engine),
    /// defaulting to [`DEFAULT_TRACE_BUF`].
    ///
    /// # Panics
    /// On anything that is not a positive integer — a zero-capacity ring
    /// would silently drop every event, which is indistinguishable from
    /// tracing being off (same loud-knob contract as `CHILLER_TRACE` and
    /// `CHILLER_WORKERS`).
    pub fn buf_from_env() -> usize {
        match std::env::var("CHILLER_TRACE_BUF") {
            Err(_) => DEFAULT_TRACE_BUF,
            Ok(v) => Self::parse_buf(&v),
        }
    }

    /// Parse one `CHILLER_TRACE_BUF` value; panics unless it is a positive
    /// integer (factored out of [`Self::buf_from_env`] so the loudness
    /// contract is testable without mutating process environment).
    pub fn parse_buf(v: &str) -> usize {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("CHILLER_TRACE_BUF must be a positive integer, got {v:?}"),
        }
    }

    /// Whether any events are recorded at all.
    pub fn enabled(self) -> bool {
        !matches!(self, TraceMode::Off)
    }

    /// Whether the transaction with this per-engine sequence number gets
    /// lifecycle events. Deterministic: depends only on the sequence number,
    /// never on wall time, so sampled sim runs replay identically.
    #[inline]
    pub fn traces_txn(self, seq: u64) -> bool {
        match self {
            TraceMode::Off => false,
            TraceMode::Sample(n) => seq.is_multiple_of(n as u64),
            TraceMode::Full => true,
        }
    }

    /// Short label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Sample(_) => "sample",
            TraceMode::Full => "full",
        }
    }
}

/// One lifecycle event. `ts` is nanoseconds on the owning runtime's clock
/// (virtual time on the simulator, monotonic wall time otherwise); `node` is
/// the engine that observed the event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock timestamp in nanoseconds (sim-time or wall-time).
    pub ts: u64,
    /// Engine that recorded the event.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy. Lifecycle variants are recorded in `Sample` and
/// `Full` modes; lock spans and hops only in `Full`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction attempt started on its coordinator.
    TxnBegin {
        /// Transaction id.
        txn: TxnId,
        /// Registered procedure index (join with the proc registry to name).
        proc: u32,
        /// 1-based attempt number (1 = first execution, 2+ = retries).
        attempt: u32,
    },
    /// A transient abort scheduled a retry after backoff.
    TxnRetry {
        /// Transaction id.
        txn: TxnId,
        /// Attempt number that just failed.
        attempt: u32,
        /// Backoff delay before the next attempt, ns.
        backoff_ns: u64,
    },
    /// The attempt committed.
    TxnCommit {
        /// Transaction id.
        txn: TxnId,
        /// First-begin → commit latency, ns (spans retries).
        latency_ns: u64,
        /// Whether execution touched more than one partition.
        distributed: bool,
    },
    /// The attempt aborted.
    TxnAbort {
        /// Transaction id.
        txn: TxnId,
        /// Attempt number that aborted.
        attempt: u32,
        /// Transient abort reason; `None` for final logic aborts
        /// (intentional rollbacks).
        reason: Option<AbortReason>,
    },
    /// A NO_WAIT lock was granted on this participant.
    LockAcquire {
        /// Holding transaction.
        txn: TxnId,
        /// Locked record.
        record: RecordId,
        /// Whether the record is in the hot (inner-region) set.
        hot: bool,
    },
    /// A lock was released; `held_ns` is the contention span.
    LockRelease {
        /// Holding transaction.
        txn: TxnId,
        /// Unlocked record.
        record: RecordId,
        /// Lock hold time, ns.
        held_ns: u64,
    },
    /// The coordinator sent a protocol message for this transaction.
    SendHop {
        /// Transaction the message belongs to.
        txn: TxnId,
        /// Destination node.
        dst: NodeId,
        /// Message kind label (e.g. `lock_read`).
        label: &'static str,
    },
    /// An engine received a remote protocol message for this transaction.
    RecvHop {
        /// Transaction the message belongs to.
        txn: TxnId,
        /// Source node.
        src: NodeId,
        /// Message kind label.
        label: &'static str,
    },
}

impl EventKind {
    /// The transaction this event belongs to.
    pub fn txn(&self) -> TxnId {
        match *self {
            EventKind::TxnBegin { txn, .. }
            | EventKind::TxnRetry { txn, .. }
            | EventKind::TxnCommit { txn, .. }
            | EventKind::TxnAbort { txn, .. }
            | EventKind::LockAcquire { txn, .. }
            | EventKind::LockRelease { txn, .. }
            | EventKind::SendHop { txn, .. }
            | EventKind::RecvHop { txn, .. } => txn,
        }
    }

    /// Stable snake_case tag used by both exporters.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::TxnBegin { .. } => "txn_begin",
            EventKind::TxnRetry { .. } => "txn_retry",
            EventKind::TxnCommit { .. } => "txn_commit",
            EventKind::TxnAbort { .. } => "txn_abort",
            EventKind::LockAcquire { .. } => "lock_acquire",
            EventKind::LockRelease { .. } => "lock_release",
            EventKind::SendHop { .. } => "send_hop",
            EventKind::RecvHop { .. } => "recv_hop",
        }
    }
}

/// Per-engine event producer. Owned by the engine actor, so it moves with
/// the actor between phases and threads; pushes are wait-free (Lamport SPSC)
/// and never block — on a full ring the event is counted as dropped.
pub struct Tracer {
    mode: TraceMode,
    tx: Option<ringq::spsc::Producer<TraceEvent>>,
    dropped: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("mode", &self.mode)
            .field("enabled", &self.tx.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing (the `TraceMode::Off` fast path: no
    /// ring is allocated, `record` is a branch on a `None`).
    pub fn disabled() -> Tracer {
        Tracer {
            mode: TraceMode::Off,
            tx: None,
            dropped: None,
        }
    }

    /// A tracer feeding a `capacity`-event ring, plus the sink the control
    /// plane drains at quiescence.
    pub fn buffered(mode: TraceMode, capacity: usize) -> (Tracer, TraceSink) {
        if !mode.enabled() {
            // Callers normally gate on the mode, but keep the invariant that
            // Off never owns a ring even if they don't.
            let (_, rx) = ringq::spsc::bounded::<TraceEvent>(1);
            let dropped = Arc::new(AtomicU64::new(0));
            return (Tracer::disabled(), TraceSink { rx, dropped });
        }
        let (tx, rx) = ringq::spsc::bounded(capacity.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        (
            Tracer {
                mode,
                tx: Some(tx),
                dropped: Some(Arc::clone(&dropped)),
            },
            TraceSink { rx, dropped },
        )
    }

    /// Whether any recording is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tx.is_some()
    }

    /// Whether lock spans and hops are recorded (Full mode only).
    #[inline]
    pub fn full(&self) -> bool {
        self.tx.is_some() && matches!(self.mode, TraceMode::Full)
    }

    /// Whether the transaction with this per-engine sequence number gets
    /// lifecycle events.
    #[inline]
    pub fn traces_txn(&self, seq: u64) -> bool {
        self.tx.is_some() && self.mode.traces_txn(seq)
    }

    /// Push one event; never blocks. A full ring drops the event and bumps
    /// the shared drop counter.
    #[inline]
    pub fn record(&mut self, ts: u64, node: NodeId, kind: EventKind) {
        if let Some(tx) = &mut self.tx {
            if tx.push(TraceEvent { ts, node, kind }).is_err() {
                if let Some(d) = &self.dropped {
                    d.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Consumer half of one engine's trace ring. The control plane drains all
/// sinks into a [`TraceLog`] at phase boundaries (the engines are quiescent
/// then, so drains race with nothing).
pub struct TraceSink {
    rx: ringq::spsc::Consumer<TraceEvent>,
    dropped: Arc<AtomicU64>,
}

impl TraceSink {
    /// Move every buffered event into `log` and fold in the drop count
    /// accumulated since the last drain.
    pub fn drain_into(&mut self, log: &mut TraceLog) {
        while let Some(ev) = self.rx.pop() {
            log.events.push(ev);
        }
        log.dropped += self.dropped.swap(0, Ordering::Relaxed);
    }
}

/// All drained events of a run, in per-engine push order (drain order across
/// engines is by node id; exporters sort by timestamp where formats need it).
#[derive(Debug, Default)]
pub struct TraceLog {
    /// Drained events.
    pub events: Vec<TraceEvent>,
    /// Events lost to full rings (size with `CHILLER_TRACE_BUF` if nonzero).
    pub dropped: u64,
}

impl TraceLog {
    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::TableId;

    fn txn(node: u32, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn trace_buf_parses_positive_integers() {
        assert_eq!(TraceMode::parse_buf("1"), 1);
        assert_eq!(TraceMode::parse_buf("4096"), 4096);
    }

    #[test]
    #[should_panic(expected = "CHILLER_TRACE_BUF must be a positive integer")]
    fn trace_buf_rejects_zero_loudly() {
        TraceMode::parse_buf("0");
    }

    #[test]
    #[should_panic(expected = "CHILLER_TRACE_BUF must be a positive integer")]
    fn trace_buf_rejects_garbage_loudly() {
        TraceMode::parse_buf("big");
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(!t.traces_txn(0));
        // Must be a no-op, not a panic.
        t.record(
            1,
            NodeId(0),
            EventKind::TxnBegin {
                txn: txn(0, 1),
                proc: 0,
                attempt: 1,
            },
        );
    }

    #[test]
    fn buffered_tracer_roundtrips_events() {
        let (mut t, mut sink) = Tracer::buffered(TraceMode::Full, 8);
        assert!(t.full());
        assert!(t.traces_txn(7));
        t.record(
            10,
            NodeId(1),
            EventKind::TxnBegin {
                txn: txn(1, 3),
                proc: 2,
                attempt: 1,
            },
        );
        t.record(
            20,
            NodeId(1),
            EventKind::TxnCommit {
                txn: txn(1, 3),
                latency_ns: 10,
                distributed: false,
            },
        );
        let mut log = TraceLog::default();
        sink.drain_into(&mut log);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events[0].ts, 10);
        assert_eq!(log.events[1].kind.tag(), "txn_commit");
        assert_eq!(log.events[1].kind.txn(), txn(1, 3));
    }

    #[test]
    fn full_ring_counts_drops_instead_of_blocking() {
        let (mut t, mut sink) = Tracer::buffered(TraceMode::Full, 2);
        for i in 0..5u64 {
            t.record(
                i,
                NodeId(0),
                EventKind::LockAcquire {
                    txn: txn(0, 1),
                    record: RecordId {
                        table: TableId(0),
                        key: i,
                    },
                    hot: false,
                },
            );
        }
        let mut log = TraceLog::default();
        sink.drain_into(&mut log);
        assert_eq!(log.len() as u64 + log.dropped, 5);
        assert!(log.dropped >= 1, "capacity-2 ring must have dropped");
    }

    #[test]
    fn sample_mode_is_deterministic_in_seq() {
        let m = TraceMode::Sample(4);
        let picks: Vec<bool> = (0..9).map(|s| m.traces_txn(s)).collect();
        assert_eq!(
            picks,
            [true, false, false, false, true, false, false, false, true]
        );
        assert!(TraceMode::Full.traces_txn(12345));
        assert!(!TraceMode::Off.traces_txn(0));
    }
}
