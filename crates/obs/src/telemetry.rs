//! Always-on runtime scheduler counters.

use chiller_common::metrics::Histogram;

/// Counters for the runtime internals the backends were previously debugged
/// blind on. Cheap by construction: each backend keeps one instance per
/// worker/engine as plain (non-atomic) fields bumped at most once per batch,
/// and the `Runtime::telemetry()` accessor merges them on read. The
/// simulated backend reports an empty default — it has no scheduler.
#[derive(Debug, Clone, Default)]
pub struct RuntimeTelemetry {
    /// Worker-loop iterations that handled at least one message/timer.
    pub batches_drained: u64,
    /// Remote-send flushes that stopped at a full destination mailbox
    /// (the global-FIFO parked queue grew instead of blocking).
    pub flush_stalls: u64,
    /// High-water mark of the parked remote-send queue depth.
    pub parked_depth_hwm: u64,
    /// High-water mark of inbox ring occupancy observed before drains
    /// (0 under channel mailboxes, which expose no length).
    pub ring_occupancy_hwm: u64,
    /// Times a worker actually parked (slept) waiting for work.
    pub parks: u64,
    /// Parked workers actually woken by a sender/notifier.
    pub unparks: u64,
    /// Pre-park rechecks that found work or quiescence after publishing the
    /// sleep flag — each one is a lost wakeup the handshake prevented.
    pub lost_wakeups_avoided: u64,
    /// Async worker turns that made zero progress (pure flush-stall retry;
    /// each forces a `yield_now` — see DESIGN §12).
    pub zero_progress_turns: u64,
    /// Tasks pushed to a worker's own deque (async backend).
    pub tasks_pushed: u64,
    /// Tasks pushed through the shared injector (async backend).
    pub tasks_injected: u64,
    /// Tasks popped for execution (async backend).
    pub tasks_popped: u64,
    /// Tasks moved between workers by stealing (async backend).
    pub tasks_stolen: u64,
    /// Steal operations (each moves a front-half batch).
    pub steal_batches: u64,
    /// Engine notifications that enqueued a task (IDLE→QUEUED transitions;
    /// notifications during RUNNING convert to DIRTY and are not counted).
    pub notifies: u64,
    /// Timer-wheel slop: actual fire time minus due time, ns, per fired
    /// timer. Empty on the simulator (virtual timers are exact).
    pub timer_slop: Histogram,
    /// Trace events lost to full trace rings (0 unless tracing is on and
    /// `CHILLER_TRACE_BUF` is undersized).
    pub trace_events_dropped: u64,
    /// History observations lost to full checker rings (0 unless checking
    /// is on and `CHILLER_CHECK_BUF` is undersized). Nonzero means every
    /// verdict over the run's history is `incomplete`.
    pub history_events_dropped: u64,
    /// WAL records appended (durable runs only).
    pub wal_records_appended: u64,
    /// WAL bytes appended, framing included (durable runs only).
    pub wal_bytes_appended: u64,
    /// WAL buffered-write flushes that reached the file.
    pub wal_flushes: u64,
    /// WAL fsyncs issued. With group commit this is the amortization
    /// headline: commit marks per fsync = commits / fsyncs.
    pub wal_fsyncs: u64,
}

impl RuntimeTelemetry {
    /// Fold another instance in: counters add, high-water marks take the
    /// max, histograms merge.
    pub fn merge(&mut self, other: &RuntimeTelemetry) {
        self.batches_drained += other.batches_drained;
        self.flush_stalls += other.flush_stalls;
        self.parked_depth_hwm = self.parked_depth_hwm.max(other.parked_depth_hwm);
        self.ring_occupancy_hwm = self.ring_occupancy_hwm.max(other.ring_occupancy_hwm);
        self.parks += other.parks;
        self.unparks += other.unparks;
        self.lost_wakeups_avoided += other.lost_wakeups_avoided;
        self.zero_progress_turns += other.zero_progress_turns;
        self.tasks_pushed += other.tasks_pushed;
        self.tasks_injected += other.tasks_injected;
        self.tasks_popped += other.tasks_popped;
        self.tasks_stolen += other.tasks_stolen;
        self.steal_batches += other.steal_batches;
        self.notifies += other.notifies;
        self.timer_slop.merge(&other.timer_slop);
        self.trace_events_dropped += other.trace_events_dropped;
        self.history_events_dropped += other.history_events_dropped;
        self.wal_records_appended += other.wal_records_appended;
        self.wal_bytes_appended += other.wal_bytes_appended;
        self.wal_flushes += other.wal_flushes;
        self.wal_fsyncs += other.wal_fsyncs;
    }

    /// `(name, value)` pairs for every plain counter/gauge, in render order.
    /// Names are Prometheus-style suffix-less stems; the report layer adds
    /// the `chiller_runtime_` prefix. The timer-slop histogram is rendered
    /// separately as quantile gauges.
    pub fn counters(&self) -> [(&'static str, u64); 18] {
        [
            ("batches_drained", self.batches_drained),
            ("flush_stalls", self.flush_stalls),
            ("parked_depth_hwm", self.parked_depth_hwm),
            ("ring_occupancy_hwm", self.ring_occupancy_hwm),
            ("parks", self.parks),
            ("unparks", self.unparks),
            ("lost_wakeups_avoided", self.lost_wakeups_avoided),
            ("zero_progress_turns", self.zero_progress_turns),
            ("tasks_pushed", self.tasks_pushed),
            ("tasks_injected", self.tasks_injected),
            ("tasks_popped", self.tasks_popped),
            ("tasks_stolen", self.tasks_stolen),
            ("steal_batches", self.steal_batches),
            ("notifies", self.notifies),
            ("wal_records_appended", self.wal_records_appended),
            ("wal_bytes_appended", self.wal_bytes_appended),
            ("wal_flushes", self.wal_flushes),
            ("wal_fsyncs", self.wal_fsyncs),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_maxes_hwms() {
        let mut a = RuntimeTelemetry {
            batches_drained: 3,
            parked_depth_hwm: 7,
            ring_occupancy_hwm: 2,
            parks: 1,
            ..Default::default()
        };
        let mut b = RuntimeTelemetry {
            batches_drained: 4,
            parked_depth_hwm: 5,
            ring_occupancy_hwm: 9,
            unparks: 2,
            ..Default::default()
        };
        b.timer_slop.record(1_000);
        a.merge(&b);
        assert_eq!(a.batches_drained, 7);
        assert_eq!(a.parked_depth_hwm, 7);
        assert_eq!(a.ring_occupancy_hwm, 9);
        assert_eq!(a.parks, 1);
        assert_eq!(a.unparks, 2);
        assert_eq!(a.timer_slop.count(), 1);
    }

    #[test]
    fn counters_cover_every_scalar_field() {
        let t = RuntimeTelemetry {
            batches_drained: 1,
            flush_stalls: 2,
            parked_depth_hwm: 3,
            ring_occupancy_hwm: 4,
            parks: 5,
            unparks: 6,
            lost_wakeups_avoided: 7,
            zero_progress_turns: 8,
            tasks_pushed: 9,
            tasks_injected: 10,
            tasks_popped: 11,
            tasks_stolen: 12,
            steal_batches: 13,
            notifies: 14,
            timer_slop: Histogram::new(),
            // The drop counters are rendered separately (as degradation
            // flags on the summary line), so they sit outside counters().
            trace_events_dropped: 100,
            history_events_dropped: 101,
            wal_records_appended: 15,
            wal_bytes_appended: 16,
            wal_flushes: 17,
            wal_fsyncs: 18,
        };
        let names: Vec<&str> = t.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 18);
        let vals: Vec<u64> = t.counters().iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, (1..=18).collect::<Vec<u64>>());
    }
}
