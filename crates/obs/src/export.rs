//! Exporters: JSONL event stream and Chrome `trace_event` JSON.
//!
//! Both are hand-rolled — the workspace's `serde` shim derives are no-ops
//! (DESIGN §Shims), so any JSON this repo emits is built by hand and kept
//! deliberately simple.

use crate::trace::{EventKind, TraceEvent, TraceLog};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (quotes, backslashes, control
/// characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → microseconds with 3 decimals (Chrome's `ts`/`dur` unit).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn jsonl_line(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"ts\":{},\"node\":{},\"kind\":\"{}\",\"txn\":\"{}\"",
        ev.ts,
        ev.node.0,
        ev.kind.tag(),
        ev.kind.txn()
    );
    match &ev.kind {
        EventKind::TxnBegin { proc, attempt, .. } => {
            let _ = write!(s, ",\"proc\":{proc},\"attempt\":{attempt}");
        }
        EventKind::TxnRetry {
            attempt,
            backoff_ns,
            ..
        } => {
            let _ = write!(s, ",\"attempt\":{attempt},\"backoff_ns\":{backoff_ns}");
        }
        EventKind::TxnCommit {
            latency_ns,
            distributed,
            ..
        } => {
            let _ = write!(
                s,
                ",\"latency_ns\":{latency_ns},\"distributed\":{distributed}"
            );
        }
        EventKind::TxnAbort {
            attempt, reason, ..
        } => {
            match reason {
                Some(r) => {
                    let _ = write!(s, ",\"attempt\":{attempt},\"reason\":\"{}\"", r.label());
                }
                None => {
                    let _ = write!(s, ",\"attempt\":{attempt},\"reason\":null");
                }
            };
        }
        EventKind::LockAcquire { record, hot, .. } => {
            let _ = write!(s, ",\"record\":\"{record}\",\"hot\":{hot}");
        }
        EventKind::LockRelease {
            record, held_ns, ..
        } => {
            let _ = write!(s, ",\"record\":\"{record}\",\"held_ns\":{held_ns}");
        }
        EventKind::SendHop { dst, label, .. } => {
            let _ = write!(s, ",\"dst\":{},\"label\":\"{}\"", dst.0, esc(label));
        }
        EventKind::RecvHop { src, label, .. } => {
            let _ = write!(s, ",\"src\":{},\"label\":\"{}\"", src.0, esc(label));
        }
    }
    s.push('}');
    s
}

impl TraceLog {
    /// One JSON object per line, one line per event, in drain order. Grep-
    /// and `jq`-friendly; the format every future subsystem (WAL, history
    /// checker) consumes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for ev in &self.events {
            out.push_str(&jsonl_line(ev));
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (load in `chrome://tracing` or Perfetto).
    ///
    /// Layout: one process (`pid` 0), one track (`tid`) per engine node.
    /// Transaction attempts are *nestable async* spans (`ph` `"b"`/`"e"`,
    /// keyed by category `"txn"` + the transaction id) — distinct
    /// transactions interleave freely on one engine track, which plain
    /// `B`/`E` duration events cannot express. Lock holds are complete
    /// (`"X"`) events emitted at release time with `ts = release − held`;
    /// retries and hops are instants. Abort reasons ride in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |obj: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&obj);
        };

        // Name each engine's track once.
        let nodes: BTreeSet<u32> = self.events.iter().map(|e| e.node.0).collect();
        for n in nodes {
            emit(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{n},\
                     \"args\":{{\"name\":\"engine n{n}\"}}}}"
                ),
                &mut out,
            );
        }

        for ev in &self.events {
            let tid = ev.node.0;
            let ts = us(ev.ts);
            let txn = ev.kind.txn();
            let id = format!("0x{:x}", txn.0);
            let obj = match &ev.kind {
                EventKind::TxnBegin { proc, attempt, .. } => format!(
                    "{{\"name\":\"{txn}\",\"cat\":\"txn\",\"ph\":\"b\",\"id\":\"{id}\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"proc\":{proc},\"attempt\":{attempt}}}}}"
                ),
                EventKind::TxnRetry {
                    attempt,
                    backoff_ns,
                    ..
                } => format!(
                    "{{\"name\":\"retry\",\"cat\":\"txn\",\"ph\":\"n\",\"id\":\"{id}\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"attempt\":{attempt},\"backoff_us\":{}}}}}",
                    us(*backoff_ns)
                ),
                EventKind::TxnCommit {
                    latency_ns,
                    distributed,
                    ..
                } => format!(
                    "{{\"name\":\"{txn}\",\"cat\":\"txn\",\"ph\":\"e\",\"id\":\"{id}\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"outcome\":\"commit\",\"latency_us\":{},\
                     \"distributed\":{distributed}}}}}",
                    us(*latency_ns)
                ),
                EventKind::TxnAbort {
                    attempt, reason, ..
                } => {
                    let reason = match reason {
                        Some(r) => format!("\"{}\"", r.label()),
                        None => "\"logic\"".to_owned(),
                    };
                    format!(
                        "{{\"name\":\"{txn}\",\"cat\":\"txn\",\"ph\":\"e\",\"id\":\"{id}\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"outcome\":\"abort\",\"attempt\":{attempt},\
                         \"reason\":{reason}}}}}"
                    )
                }
                EventKind::LockAcquire { record, hot, .. } => format!(
                    "{{\"name\":\"acquire {record}\",\"cat\":\"lock\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"txn\":\"{txn}\",\"hot\":{hot}}}}}"
                ),
                EventKind::LockRelease {
                    record, held_ns, ..
                } => format!(
                    "{{\"name\":\"lock {record}\",\"cat\":\"lock\",\"ph\":\"X\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"args\":{{\"txn\":\"{txn}\"}}}}",
                    us(ev.ts.saturating_sub(*held_ns)),
                    us(*held_ns)
                ),
                EventKind::SendHop { dst, label, .. } => format!(
                    "{{\"name\":\"send {} n{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"txn\":\"{txn}\"}}}}",
                    esc(label),
                    dst.0
                ),
                EventKind::RecvHop { src, label, .. } => format!(
                    "{{\"name\":\"recv {} n{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"txn\":\"{txn}\"}}}}",
                    esc(label),
                    src.0
                ),
            };
            emit(obj, &mut out);
        }
        let _ = write!(
            out,
            "],\"otherData\":{{\"dropped_events\":{}}}}}",
            self.dropped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceMode, Tracer};
    use chiller_common::metrics::AbortReason;
    use chiller_common::{NodeId, RecordId, TableId, TxnId};

    fn sample_log() -> TraceLog {
        let (mut t, mut sink) = Tracer::buffered(TraceMode::Full, 64);
        let txn = TxnId::new(NodeId(2), 5);
        let rec = RecordId {
            table: TableId(1),
            key: 42,
        };
        t.record(
            1_000,
            NodeId(2),
            EventKind::TxnBegin {
                txn,
                proc: 3,
                attempt: 1,
            },
        );
        t.record(
            2_000,
            NodeId(0),
            EventKind::LockAcquire {
                txn,
                record: rec,
                hot: true,
            },
        );
        t.record(
            3_000,
            NodeId(2),
            EventKind::SendHop {
                txn,
                dst: NodeId(0),
                label: "lock_read",
            },
        );
        t.record(
            4_000,
            NodeId(2),
            EventKind::TxnAbort {
                txn,
                attempt: 1,
                reason: Some(AbortReason::NoWaitConflict),
            },
        );
        t.record(
            4_500,
            NodeId(2),
            EventKind::TxnRetry {
                txn,
                attempt: 1,
                backoff_ns: 10_000,
            },
        );
        t.record(
            5_000,
            NodeId(0),
            EventKind::LockRelease {
                txn,
                record: rec,
                held_ns: 3_000,
            },
        );
        t.record(
            9_000,
            NodeId(2),
            EventKind::TxnCommit {
                txn,
                latency_ns: 8_000,
                distributed: true,
            },
        );
        let mut log = TraceLog::default();
        sink.drain_into(&mut log);
        log
    }

    #[test]
    fn jsonl_one_line_per_event_with_fields() {
        let log = sample_log();
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"kind\":\"txn_begin\""));
        assert!(lines[0].contains("\"txn\":\"txn2.5\""));
        assert!(lines[3].contains("\"reason\":\"no_wait_conflict\""));
        assert!(lines[5].contains("\"held_ns\":3000"));
        assert!(lines[6].contains("\"distributed\":true"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_has_tracks_spans_and_reasons() {
        let log = sample_log();
        let chrome = log.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with('}'));
        // One thread_name per node track.
        assert!(chrome.contains("\"name\":\"engine n0\""));
        assert!(chrome.contains("\"name\":\"engine n2\""));
        // Nestable async begin/end pair keyed by the txn id.
        assert!(chrome.contains("\"ph\":\"b\",\"id\":\"0x20000000005\""));
        assert!(chrome.contains("\"outcome\":\"abort\""));
        assert!(chrome.contains("\"reason\":\"no_wait_conflict\""));
        assert!(chrome.contains("\"outcome\":\"commit\""));
        // Lock span back-dated by its hold time: 5000ns − 3000ns = 2µs.
        assert!(chrome.contains("\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":2.000,\"dur\":3.000"));
        assert!(chrome.contains("\"dropped_events\":0"));
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn us_formatting() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(10_000), "10.000");
        assert_eq!(us(999), "0.999");
    }
}
