//! Property tests: lock-word invariants under arbitrary operation
//! sequences, and key-packer round trips.

use chiller_common::ids::{NodeId, TxnId};
use chiller_common::time::SimTime;
use chiller_storage::lock::{LockMode, LockState};
use chiller_storage::schema::KeyPacker;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Acquire(u8, bool), // (txn, exclusive)
    Release(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, any::<bool>()).prop_map(|(t, x)| Op::Acquire(t, x)),
        (0u8..6).prop_map(Op::Release),
    ]
}

proptest! {
    /// Core mutual-exclusion invariant: never an exclusive holder together
    /// with shared holders (other than itself), never two exclusive holders,
    /// and every grant/denial is consistent with the current state.
    #[test]
    fn lock_invariants(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut lock = LockState::new();
        // Model state: set of shared holders, exclusive holder.
        let mut shared: Vec<u8> = Vec::new();
        let mut exclusive: Option<u8> = None;
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime(i as u64);
            match *op {
                Op::Acquire(t, true) => {
                    let txn = TxnId::new(NodeId(0), t as u64);
                    let granted = lock.try_acquire(txn, LockMode::Exclusive, now);
                    let expect = match exclusive {
                        Some(h) => h == t,
                        None => shared.is_empty() || shared == vec![t],
                    };
                    prop_assert_eq!(granted, expect);
                    if granted && exclusive.is_none() {
                        exclusive = Some(t);
                        shared.clear();
                    }
                }
                Op::Acquire(t, false) => {
                    let txn = TxnId::new(NodeId(0), t as u64);
                    let granted = lock.try_acquire(txn, LockMode::Shared, now);
                    let expect = match exclusive {
                        Some(h) => h == t,
                        None => true,
                    };
                    prop_assert_eq!(granted, expect);
                    if granted && exclusive.is_none() && !shared.contains(&t) {
                        shared.push(t);
                    }
                }
                Op::Release(t) => {
                    let txn = TxnId::new(NodeId(0), t as u64);
                    let released = lock.release(txn, now).is_some();
                    let expect = exclusive == Some(t) || shared.contains(&t);
                    prop_assert_eq!(released, expect);
                    if exclusive == Some(t) {
                        exclusive = None;
                    }
                    shared.retain(|&s| s != t);
                }
            }
            prop_assert_eq!(lock.is_free(), exclusive.is_none() && shared.is_empty());
        }
    }

    /// KeyPacker round-trips arbitrary in-range fields.
    #[test]
    fn key_packer_roundtrip(
        w in 0u64..(1 << 16),
        d in 0u64..(1 << 8),
        c in 0u64..(1 << 24),
        pad in 0u64..(1 << 16),
    ) {
        let kp = KeyPacker::new(&[16, 8, 24, 16]);
        let fields = vec![w, d, c, pad];
        prop_assert_eq!(kp.unpack(kp.pack(&fields)), fields);
    }
}
