//! Property tests: lock-word invariants under arbitrary operation
//! sequences, key-packer round trips, and placement-layer laws
//! (lookup-table consistency, size accounting, explicit fallback).

use chiller_common::ids::{NodeId, PartitionId, RecordId, TableId, TxnId};
use chiller_common::time::SimTime;
use chiller_storage::lock::{LockMode, LockState};
use chiller_storage::placement::{ExplicitPlacement, HashPlacement, LookupTable, Placement};
use chiller_storage::schema::KeyPacker;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Acquire(u8, bool), // (txn, exclusive)
    Release(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, any::<bool>()).prop_map(|(t, x)| Op::Acquire(t, x)),
        (0u8..6).prop_map(Op::Release),
    ]
}

proptest! {
    /// Core mutual-exclusion invariant: never an exclusive holder together
    /// with shared holders (other than itself), never two exclusive holders,
    /// and every grant/denial is consistent with the current state.
    #[test]
    fn lock_invariants(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut lock = LockState::new();
        // Model state: set of shared holders, exclusive holder.
        let mut shared: Vec<u8> = Vec::new();
        let mut exclusive: Option<u8> = None;
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime(i as u64);
            match *op {
                Op::Acquire(t, true) => {
                    let txn = TxnId::new(NodeId(0), t as u64);
                    let granted = lock.try_acquire(txn, LockMode::Exclusive, now);
                    let expect = match exclusive {
                        Some(h) => h == t,
                        None => shared.is_empty() || shared == vec![t],
                    };
                    prop_assert_eq!(granted, expect);
                    if granted && exclusive.is_none() {
                        exclusive = Some(t);
                        shared.clear();
                    }
                }
                Op::Acquire(t, false) => {
                    let txn = TxnId::new(NodeId(0), t as u64);
                    let granted = lock.try_acquire(txn, LockMode::Shared, now);
                    let expect = match exclusive {
                        Some(h) => h == t,
                        None => true,
                    };
                    prop_assert_eq!(granted, expect);
                    if granted && exclusive.is_none() && !shared.contains(&t) {
                        shared.push(t);
                    }
                }
                Op::Release(t) => {
                    let txn = TxnId::new(NodeId(0), t as u64);
                    let released = lock.release(txn, now).is_some();
                    let expect = exclusive == Some(t) || shared.contains(&t);
                    prop_assert_eq!(released, expect);
                    if exclusive == Some(t) {
                        exclusive = None;
                    }
                    shared.retain(|&s| s != t);
                }
            }
            prop_assert_eq!(lock.is_free(), exclusive.is_none() && shared.is_empty());
        }
    }

    /// LookupTable law: `is_hot(r)` ⇔ an entry exists ⇔ `partition_of(r)`
    /// returns the entry; all other records fall through to the default,
    /// and `lookup_entries` counts exactly the distinct inserted records.
    #[test]
    fn lookup_table_hot_entry_consistency(
        entries in prop::collection::vec((0u64..64, 0u32..4), 0..40),
        probes in prop::collection::vec(0u64..96, 1..40),
        k in 1u32..6,
    ) {
        let mut lt = LookupTable::new(HashPlacement::new(k));
        let mut model: HashMap<RecordId, PartitionId> = HashMap::new();
        for (key, p) in entries {
            let rid = RecordId::new(TableId(1), key);
            lt.insert(rid, PartitionId(p));
            model.insert(rid, PartitionId(p));
        }
        prop_assert_eq!(lt.lookup_entries(), model.len());
        let fallback = HashPlacement::new(k);
        for key in probes {
            let rid = RecordId::new(TableId(1), key);
            prop_assert_eq!(lt.is_hot(rid), model.contains_key(&rid));
            let expect = model.get(&rid).copied().unwrap_or_else(|| fallback.partition_of(rid));
            prop_assert_eq!(lt.partition_of(rid), expect);
        }
        // Every hot entry is enumerable and self-consistent.
        for (r, p) in lt.hot_entries() {
            prop_assert_eq!(model.get(r), Some(p));
        }
    }

    /// `approx_size_bytes` is monotone under `insert` and exactly linear in
    /// the number of distinct entries.
    #[test]
    fn lookup_table_size_monotone_under_insert(
        keys in prop::collection::vec(0u64..50, 1..80),
    ) {
        let mut lt = LookupTable::new(HashPlacement::new(4));
        let mut last = lt.approx_size_bytes();
        for key in keys {
            lt.insert(RecordId::new(TableId(1), key), PartitionId(0));
            let now = lt.approx_size_bytes();
            prop_assert!(now >= last, "size must never shrink on insert");
            last = now;
        }
        let per_entry = std::mem::size_of::<RecordId>() + std::mem::size_of::<PartitionId>();
        prop_assert_eq!(last, lt.lookup_entries() * per_entry);
    }

    /// ExplicitPlacement: mapped records obey the map; unmapped records
    /// (e.g. inserts created after partitioning) obey the fallback.
    #[test]
    fn explicit_placement_fallback_correctness(
        mapped in prop::collection::vec((0u64..64, 0u32..4), 0..40),
        probes in prop::collection::vec(0u64..128, 1..40),
        k in 1u32..6,
    ) {
        let map: HashMap<RecordId, PartitionId> = mapped
            .into_iter()
            .map(|(key, p)| (RecordId::new(TableId(2), key), PartitionId(p)))
            .collect();
        let ep = ExplicitPlacement::new(map.clone(), HashPlacement::new(k));
        prop_assert_eq!(ep.lookup_entries(), map.len());
        let fallback = HashPlacement::new(k);
        for key in probes {
            let rid = RecordId::new(TableId(2), key);
            let expect = map.get(&rid).copied().unwrap_or_else(|| fallback.partition_of(rid));
            prop_assert_eq!(ep.partition_of(rid), expect);
        }
    }

    /// KeyPacker round-trips arbitrary in-range fields.
    #[test]
    fn key_packer_roundtrip(
        w in 0u64..(1 << 16),
        d in 0u64..(1 << 8),
        c in 0u64..(1 << 24),
        pad in 0u64..(1 << 16),
    ) {
        let kp = KeyPacker::new(&[16, 8, 24, 16]);
        let fields = vec![w, d, c, pad];
        prop_assert_eq!(kp.unpack(kp.pack(&fields)), fields);
    }
}
