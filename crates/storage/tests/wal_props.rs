//! WAL codec property tests: arbitrary record streams round-trip through
//! the framed binary codec, and recovery after truncation at **every**
//! byte offset — the torn-write model — always yields a clean prefix of
//! what was logged, never garbage and never a panic. A file-level
//! property drives the same contract through `Wal::open`: a torn file
//! recovers its valid prefix, reports the dropped tail, and accepts
//! appends at the truncation point.

use chiller_common::ids::{NodeId, PartitionId, RecordId, TableId, TxnId};
use chiller_common::value::Value;
use chiller_storage::wal::{
    decode_stream, encode_record, DecideWrite, RedoOp, RedoWrite, Wal, WalRecord,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        // Halves of integers: exact in f64, so PartialEq round-trips.
        any::<i32>().prop_map(|i| Value::F64(f64::from(i) * 0.5)),
        (0u32..1000).prop_map(|n| Value::Str(format!("s{n}"))),
        (0u8..1).prop_map(|_| Value::Null),
    ]
}

fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(value_strategy(), 0..5)
}

fn op_strategy() -> impl Strategy<Value = RedoOp> {
    prop_oneof![
        row_strategy().prop_map(RedoOp::Put),
        row_strategy().prop_map(RedoOp::Insert),
        (0u8..1).prop_map(|_| RedoOp::Delete),
    ]
}

fn record_id_strategy() -> impl Strategy<Value = RecordId> {
    (1u16..9, any::<u64>()).prop_map(|(t, k)| RecordId::new(TableId(t), k))
}

fn txn_strategy() -> impl Strategy<Value = TxnId> {
    (0u32..16, 0u64..(1 << 40)).prop_map(|(n, s)| TxnId::new(NodeId(n), s))
}

fn redo_write_strategy() -> impl Strategy<Value = RedoWrite> {
    (record_id_strategy(), 1u64..1000, op_strategy()).prop_map(|(record, version, op)| RedoWrite {
        record,
        version,
        op,
    })
}

fn decide_write_strategy() -> impl Strategy<Value = DecideWrite> {
    (0u32..16, record_id_strategy(), op_strategy()).prop_map(|(p, record, op)| DecideWrite {
        partition: PartitionId(p),
        record,
        op,
    })
}

fn wal_record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (
            txn_strategy(),
            prop::collection::vec(redo_write_strategy(), 0..6)
        )
            .prop_map(|(txn, writes)| WalRecord::Redo { txn, writes }),
        (
            txn_strategy(),
            0u32..100,
            prop::option::of((0u32..16).prop_map(PartitionId)),
            prop::collection::vec(decide_write_strategy(), 0..6),
        )
            .prop_map(|(txn, p, pending_inner, writes)| WalRecord::Decide {
                txn,
                proc: format!("proc-{p}"),
                pending_inner,
                writes,
            }),
        txn_strategy().prop_map(|txn| WalRecord::InnerCommit { txn }),
        txn_strategy().prop_map(|txn| WalRecord::Ack { txn }),
    ]
}

fn encode_all(records: &[WalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for rec in records {
        encode_record(rec, &mut buf);
    }
    buf
}

proptest! {
    /// Any record stream decodes back to itself, consuming every byte.
    #[test]
    fn codec_round_trips(records in prop::collection::vec(wal_record_strategy(), 1..20)) {
        let buf = encode_all(&records);
        let (decoded, consumed) = decode_stream(&buf);
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, records);
    }

    /// Torn tail at EVERY byte offset: truncating the stream anywhere
    /// yields exactly the records whose frames fit completely before the
    /// cut, and the reported prefix length is exactly their encoding —
    /// recovery never invents a record and never loses a whole frame.
    #[test]
    fn truncation_at_every_offset_recovers_the_frame_prefix(
        records in prop::collection::vec(wal_record_strategy(), 1..8),
    ) {
        let buf = encode_all(&records);
        for cut in 0..=buf.len() {
            let (decoded, consumed) = decode_stream(&buf[..cut]);
            // The decode must be the longest run of whole frames under
            // the cut: re-encoding it reproduces the consumed prefix.
            prop_assert!(decoded.len() <= records.len());
            prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
            let prefix = encode_all(&decoded);
            prop_assert_eq!(consumed, prefix.len());
            prop_assert!(consumed <= cut);
            prop_assert_eq!(&buf[..consumed], &prefix[..]);
            // And nothing more would have fit: either the cut is exactly
            // frame-aligned, or the next frame straddles it.
            if decoded.len() < records.len() {
                let next = encode_all(&records[..decoded.len() + 1]);
                prop_assert!(next.len() > cut);
            }
        }
    }

    /// Flipping any single byte never panics the decoder and never
    /// corrupts the records before the damaged frame: the decode is
    /// always a clean prefix of what was written.
    #[test]
    fn single_byte_corruption_yields_a_clean_prefix(
        records in prop::collection::vec(wal_record_strategy(), 1..8),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut buf = encode_all(&records);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= flip;
        let (decoded, consumed) = decode_stream(&buf);
        prop_assert!(decoded.len() <= records.len());
        prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
        prop_assert!(consumed <= pos, "decode consumed past the corrupted byte");
    }

    /// The file-level contract: a log torn at an arbitrary byte offset
    /// reopens to the longest whole-frame prefix, reports the dropped
    /// tail, and appends land cleanly at the truncation point.
    #[test]
    fn torn_file_recovers_and_accepts_appends(
        records in prop::collection::vec(wal_record_strategy(), 1..6),
        cut_seed in any::<u64>(),
        case in 0u64..(1 << 32),
    ) {
        let path = scratch_path(case);
        let _ = std::fs::remove_file(&path);

        // Write and flush a clean log, then tear it mid-byte.
        {
            let (mut wal, recovered) = Wal::open(&path, 1).expect("open fresh");
            prop_assert!(recovered.is_empty());
            for rec in &records {
                wal.append(rec);
            }
            wal.flush();
        }
        let full = std::fs::read(&path).expect("read log");
        let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
        std::fs::write(&path, &full[..cut]).expect("tear log");

        // Reopen: the valid prefix comes back, the tail is accounted for.
        let (expected, expected_bytes) = decode_stream(&full[..cut]);
        let (mut wal, recovered) = Wal::open(&path, 1).expect("reopen torn");
        prop_assert_eq!(&recovered[..], &expected[..]);
        prop_assert_eq!(wal.stats.torn_bytes_dropped, (cut - expected_bytes) as u64);

        // Appends continue from the truncation point.
        let extra = WalRecord::Ack {
            txn: TxnId::new(NodeId(7), 7),
        };
        wal.append(&extra);
        wal.flush();
        drop(wal);
        let (_, recovered) = Wal::open(&path, 1).expect("reopen after append");
        let mut want = expected;
        want.push(extra);
        prop_assert_eq!(recovered, want);

        let _ = std::fs::remove_file(&path);
    }
}

/// Per-case scratch file (process- and case-qualified: property cases in
/// one run must not share files, nor races across test binaries).
fn scratch_path(case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "chiller-wal-props-{}-{case}.wal",
        std::process::id()
    ))
}
