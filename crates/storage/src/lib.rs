//! # chiller-storage
//!
//! The NAM-DB-style storage layer (§6 of the Chiller paper): in-memory
//! tables split into **buckets**, each encapsulating its own shared/exclusive
//! **lock word** and a version counter — the design that lets remote engines
//! manipulate locks with one-sided RDMA atomics instead of talking to a
//! centralized lock manager.
//!
//! * [`bucket`] — records + embedded lock word + version.
//! * [`lock`] — NO_WAIT shared/exclusive lock semantics.
//! * [`store`] — per-partition table stores; primary and replica copies.
//! * [`placement`] — where records live: hash/range default partitioners and
//!   the hot-record lookup table (§4.4).
//! * [`schema`] — table metadata and key-packing helpers.
//! * [`wal`] — per-partition redo log, group commit, checkpoints (§15).

pub mod bucket;
pub mod lock;
pub mod placement;
pub mod schema;
pub mod store;
pub mod wal;

pub use bucket::Bucket;
pub use lock::{LockMode, LockState};
pub use placement::{HashPlacement, LookupTable, Placement, RangePlacement};
pub use schema::{KeyPacker, Schema, TableDef};
pub use store::{PartitionStore, TableStore};
pub use wal::{
    DecideWrite, RedoOp, RedoWrite, StoreSnapshot, TableSnapshot, Wal, WalRecord, WalStats,
    DEFAULT_FSYNC_BATCH,
};
