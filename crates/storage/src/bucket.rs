//! Buckets: the unit of locking and one-sided access.
//!
//! §6: "Chiller splits partitions into smaller buckets. Records within a
//! partition are placed in buckets based on a hash/range/user-defined
//! function on their primary keys. Each bucket may host multiple records"
//! and "buckets are locked when any of their records are being accessed".
//!
//! Each bucket carries a monotonically increasing **version** that is bumped
//! by every committed write to any of its records; the OCC engine validates
//! against it.

use crate::lock::LockState;
use chiller_common::value::Row;
use std::collections::BTreeMap;

/// A bucket: a small set of records sharing one lock word and version.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    /// Records keyed by primary key (within this bucket).
    records: BTreeMap<u64, Row>,
    /// Embedded lock word, manipulable via simulated one-sided atomics.
    pub lock: LockState,
    /// Bumped on every committed write/insert/delete.
    version: u64,
    /// Per-record write counters for history recording. Unlike the bucket
    /// version (which couples neighbors by design — it is what OCC
    /// validates), these identify exactly which record a write installed,
    /// so the serializability checker never sees a spurious cross-key
    /// edge. Entries survive `remove` (a delete is itself a versioned
    /// write), keeping versions monotone across delete + re-insert.
    record_versions: BTreeMap<u64, u64>,
}

impl Bucket {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    /// The per-record write counter of `key`: 0 if never written, otherwise
    /// the number of committed writes (including deletes) it has absorbed.
    pub fn record_version(&self, key: u64) -> u64 {
        self.record_versions.get(&key).copied().unwrap_or(0)
    }

    /// Force `key`'s write counter to `v` (migration carry-over: the
    /// destination continues the source's version chain so one record never
    /// installs the same version twice across partitions).
    pub fn set_record_version(&mut self, key: u64, v: u64) {
        self.record_versions.insert(key, v);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn get(&self, key: u64) -> Option<&Row> {
        self.records.get(&key)
    }

    pub fn contains(&self, key: u64) -> bool {
        self.records.contains_key(&key)
    }

    /// Overwrite (or create) a record and bump the version.
    pub fn put(&mut self, key: u64, row: Row) {
        self.records.insert(key, row);
        self.version += 1;
        *self.record_versions.entry(key).or_insert(0) += 1;
    }

    /// Insert a new record; returns `false` (without bumping the version) if
    /// the key already exists.
    pub fn insert_new(&mut self, key: u64, row: Row) -> bool {
        use std::collections::btree_map::Entry;
        match self.records.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(row);
                self.version += 1;
                *self.record_versions.entry(key).or_insert(0) += 1;
                true
            }
        }
    }

    /// Remove a record; returns the old row if present, bumping the version.
    pub fn remove(&mut self, key: u64) -> Option<Row> {
        let old = self.records.remove(&key);
        if old.is_some() {
            self.version += 1;
            *self.record_versions.entry(key).or_insert(0) += 1;
        }
        old
    }

    /// Iterate records in key order (used by range scans like TPC-C's
    /// StockLevel and Delivery).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Row)> {
        self.records.iter()
    }

    /// Iterate the complete per-record version map in key order —
    /// tombstones included (a key deleted by a committed write keeps its
    /// counter here). Checkpoints capture this so version chains survive
    /// recovery across delete + re-insert.
    pub fn versions(&self) -> impl Iterator<Item = (&u64, &u64)> {
        self.record_versions.iter()
    }

    /// Approximate memory footprint of the bucket's records in bytes.
    pub fn approx_size(&self) -> usize {
        self.records
            .values()
            .map(|r| r.iter().map(|v| v.approx_size()).sum::<usize>() + 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::value::Value;

    fn row1(v: i64) -> Row {
        vec![Value::I64(v)]
    }

    #[test]
    fn put_get_roundtrip() {
        let mut b = Bucket::new();
        b.put(5, row1(50));
        assert_eq!(b.get(5).unwrap()[0].as_i64(), 50);
        assert!(b.get(6).is_none());
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut b = Bucket::new();
        assert_eq!(b.version(), 0);
        b.put(1, row1(1));
        assert_eq!(b.version(), 1);
        b.get(1);
        assert_eq!(b.version(), 1);
        b.put(1, row1(2));
        assert_eq!(b.version(), 2);
        b.remove(1);
        assert_eq!(b.version(), 3);
        // Removing a missing key is not a write.
        b.remove(1);
        assert_eq!(b.version(), 3);
    }

    #[test]
    fn insert_new_rejects_duplicates() {
        let mut b = Bucket::new();
        assert!(b.insert_new(1, row1(1)));
        assert!(!b.insert_new(1, row1(2)));
        assert_eq!(b.get(1).unwrap()[0].as_i64(), 1);
        assert_eq!(b.version(), 1);
    }

    #[test]
    fn record_versions_are_per_key_and_survive_delete() {
        let mut b = Bucket::new();
        assert_eq!(b.record_version(1), 0);
        b.put(1, row1(1));
        b.put(2, row1(2));
        // Neighbors do not couple: key 1 saw one write, key 2 one write.
        assert_eq!(b.record_version(1), 1);
        assert_eq!(b.record_version(2), 1);
        b.put(1, row1(10));
        assert_eq!(b.record_version(1), 2);
        assert_eq!(b.record_version(2), 1);
        // A delete is a versioned write, and the counter survives it so a
        // re-insert continues the chain instead of duplicating version 1.
        b.remove(1);
        assert_eq!(b.record_version(1), 3);
        assert!(b.insert_new(1, row1(99)));
        assert_eq!(b.record_version(1), 4);
        // Migration carry-over.
        b.set_record_version(7, 42);
        b.put(7, row1(7));
        assert_eq!(b.record_version(7), 43);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut b = Bucket::new();
        for k in [5u64, 1, 3] {
            b.put(k, row1(k as i64));
        }
        let keys: Vec<u64> = b.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn approx_size_counts_rows() {
        let mut b = Bucket::new();
        assert_eq!(b.approx_size(), 0);
        b.put(1, vec![Value::I64(1), Value::from("abcd")]);
        assert_eq!(b.approx_size(), 8 + 12 + 8);
    }
}
