//! Per-partition stores: tables of buckets, plus primary/replica copies.
//!
//! A [`PartitionStore`] is the state one simulated node owns for one
//! partition. The concurrency-control layer calls into it for record access
//! and lock-word manipulation; all timing (latencies, CPU) is modeled by the
//! caller, never here.

use crate::bucket::Bucket;
use crate::lock::{LockMode, Released};
use crate::schema::Schema;
use crate::wal::{RedoOp, RedoWrite, StoreSnapshot, TableSnapshot};
use chiller_common::error::{ChillerError, Result};
use chiller_common::ids::{PartitionId, RecordId, TableId, TxnId};
use chiller_common::time::SimTime;
use chiller_common::value::Row;
use std::collections::HashMap;

/// One table's buckets within a partition.
#[derive(Debug, Clone)]
pub struct TableStore {
    buckets: HashMap<u64, Bucket>,
    records_per_bucket: u64,
}

impl TableStore {
    pub fn new(records_per_bucket: u64) -> Self {
        TableStore {
            buckets: HashMap::new(),
            records_per_bucket: records_per_bucket.max(1),
        }
    }

    #[inline]
    fn bucket_id(&self, key: u64) -> u64 {
        key / self.records_per_bucket
    }

    pub fn bucket_for(&self, key: u64) -> Option<&Bucket> {
        self.buckets.get(&self.bucket_id(key))
    }

    pub fn bucket_for_mut(&mut self, key: u64) -> &mut Bucket {
        let id = self.bucket_id(key);
        self.buckets.entry(id).or_default()
    }

    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    pub fn num_records(&self) -> usize {
        self.buckets.values().map(Bucket::len).sum()
    }

    /// Iterate all `(key, row)` pairs, unordered across buckets.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Row)> {
        self.buckets.values().flat_map(Bucket::iter)
    }
}

/// All tables of one partition, primary copy.
pub struct PartitionStore {
    pub partition: PartitionId,
    schema: Schema,
    tables: HashMap<TableId, TableStore>,
}

impl PartitionStore {
    pub fn new(partition: PartitionId, schema: Schema) -> Self {
        let tables = schema
            .tables()
            .map(|t| (t.id, TableStore::new(t.records_per_bucket)))
            .collect();
        PartitionStore {
            partition,
            schema,
            tables,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn table(&self, id: TableId) -> &TableStore {
        self.tables
            .get(&id)
            .unwrap_or_else(|| panic!("partition {} has no table {id}", self.partition))
    }

    pub fn table_mut(&mut self, id: TableId) -> &mut TableStore {
        self.tables
            .get_mut(&id)
            .unwrap_or_else(|| panic!("no table {id}"))
    }

    /// Iterate `(table id, table store)` pairs, unordered (used by
    /// replica-consistency checks and diagnostics).
    pub fn tables(&self) -> impl Iterator<Item = (&TableId, &TableStore)> {
        self.tables.iter()
    }

    // ---- record access -------------------------------------------------

    pub fn read(&self, rid: RecordId) -> Result<&Row> {
        self.table(rid.table)
            .bucket_for(rid.key)
            .and_then(|b| b.get(rid.key))
            .ok_or(ChillerError::RecordNotFound(rid))
    }

    pub fn read_opt(&self, rid: RecordId) -> Option<&Row> {
        self.table(rid.table)
            .bucket_for(rid.key)
            .and_then(|b| b.get(rid.key))
    }

    pub fn exists(&self, rid: RecordId) -> bool {
        self.read_opt(rid).is_some()
    }

    /// Overwrite a record (used for committed updates and replica apply).
    pub fn write(&mut self, rid: RecordId, row: Row) {
        self.table_mut(rid.table)
            .bucket_for_mut(rid.key)
            .put(rid.key, row);
    }

    /// Insert a fresh record, failing on duplicates.
    pub fn insert(&mut self, rid: RecordId, row: Row) -> Result<()> {
        if self
            .table_mut(rid.table)
            .bucket_for_mut(rid.key)
            .insert_new(rid.key, row)
        {
            Ok(())
        } else {
            Err(ChillerError::DuplicateKey(rid))
        }
    }

    pub fn delete(&mut self, rid: RecordId) -> Result<Row> {
        self.table_mut(rid.table)
            .bucket_for_mut(rid.key)
            .remove(rid.key)
            .ok_or(ChillerError::RecordNotFound(rid))
    }

    /// Bulk load during data generation: no locks, no versions semantics
    /// beyond normal put.
    pub fn load(&mut self, rid: RecordId, row: Row) {
        self.write(rid, row);
    }

    // ---- lock words (one-sided atomics target) --------------------------

    /// NO_WAIT lock attempt on the bucket containing `rid`.
    pub fn try_lock(
        &mut self,
        rid: RecordId,
        txn: TxnId,
        mode: LockMode,
        now: SimTime,
    ) -> Result<()> {
        let bucket = self.table_mut(rid.table).bucket_for_mut(rid.key);
        if bucket.lock.try_acquire(txn, mode, now) {
            Ok(())
        } else {
            Err(ChillerError::LockConflict { txn, record: rid })
        }
    }

    /// Release `txn`'s lock on the bucket of `rid`, reporting the held span.
    pub fn unlock(&mut self, rid: RecordId, txn: TxnId, now: SimTime) -> Option<Released> {
        self.table_mut(rid.table)
            .bucket_for_mut(rid.key)
            .lock
            .release(txn, now)
    }

    /// Current version of the bucket holding `rid` (for OCC validation).
    pub fn version(&self, rid: RecordId) -> u64 {
        self.table(rid.table)
            .bucket_for(rid.key)
            .map(Bucket::version)
            .unwrap_or(0)
    }

    /// Per-record write counter of `rid` (for history recording): 0 if never
    /// written, monotone across deletes and re-inserts. Unlike
    /// [`Self::version`] this never couples bucket neighbors.
    pub fn record_version(&self, rid: RecordId) -> u64 {
        self.table(rid.table)
            .bucket_for(rid.key)
            .map(|b| b.record_version(rid.key))
            .unwrap_or(0)
    }

    /// Install a migrated-in record continuing the source's version chain:
    /// the destination's counter is seeded with the source's value *before*
    /// the insert bumps it, so the copy's observable version equals the
    /// source's and later writes keep increasing from there.
    pub fn insert_migrated(&mut self, rid: RecordId, row: Row, src_version: u64) -> Result<()> {
        self.table_mut(rid.table)
            .bucket_for_mut(rid.key)
            .set_record_version(rid.key, src_version.saturating_sub(1));
        self.insert(rid, row)
    }

    /// Whether the bucket of `rid` is currently locked by anyone.
    pub fn is_locked(&self, rid: RecordId) -> bool {
        self.table(rid.table)
            .bucket_for(rid.key)
            .map(|b| !b.lock.is_free())
            .unwrap_or(false)
    }

    /// Whether `txn` holds the lock on `rid`'s bucket.
    pub fn holds_lock(&self, rid: RecordId, txn: TxnId) -> bool {
        self.table(rid.table)
            .bucket_for(rid.key)
            .map(|b| b.lock.holds(txn))
            .unwrap_or(false)
    }

    // ---- durability (WAL + checkpoints, DESIGN.md §15) -------------------

    /// Force `rid`'s per-record write counter to `v` exactly (WAL replay
    /// installs the logged version rather than re-deriving it by bumping).
    pub fn set_record_version(&mut self, rid: RecordId, v: u64) {
        self.table_mut(rid.table)
            .bucket_for_mut(rid.key)
            .set_record_version(rid.key, v);
    }

    /// Replay one logged write, idempotently: the write is applied only
    /// when its logged version is newer than what the store already holds,
    /// and it installs that exact version. Replaying a log against a
    /// checkpoint that already contains a suffix of it (the crash window
    /// between checkpoint rename and log truncation) is therefore safe.
    /// Returns whether the write was applied.
    pub fn apply_redo(&mut self, w: &RedoWrite) -> bool {
        if self.record_version(w.record) >= w.version {
            return false;
        }
        match &w.op {
            // Insert degrades to write on replay: the duplicate-key check
            // already passed when the write committed pre-crash.
            RedoOp::Put(row) | RedoOp::Insert(row) => self.write(w.record, row.clone()),
            RedoOp::Delete => {
                // The record may already be gone (present in neither the
                // checkpoint nor the store); the tombstone version still
                // advances below.
                let _ = self.delete(w.record);
            }
        }
        self.set_record_version(w.record, w.version);
        true
    }

    /// Capture the partition's durable state: every row of every table
    /// plus the complete per-record version map (tombstones included).
    /// Tables and keys are sorted so snapshots are byte-stable.
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut tables: Vec<TableSnapshot> = self
            .tables
            .iter()
            .map(|(id, t)| {
                let mut rows: Vec<(u64, Row)> =
                    t.iter().map(|(k, row)| (*k, row.clone())).collect();
                rows.sort_by_key(|(k, _)| *k);
                let mut versions: Vec<(u64, u64)> = t
                    .buckets
                    .values()
                    .flat_map(|b| b.versions().map(|(k, v)| (*k, *v)))
                    .collect();
                versions.sort_by_key(|(k, _)| *k);
                TableSnapshot {
                    table: *id,
                    rows,
                    versions,
                }
            })
            .collect();
        tables.sort_by_key(|t| t.table);
        StoreSnapshot { tables }
    }

    /// Replace the partition's contents with `snap`: tables are rebuilt
    /// empty from the schema (so records deleted after the snapshot do not
    /// survive), rows installed, and record versions forced to the
    /// snapshot's exact values.
    pub fn restore(&mut self, snap: &StoreSnapshot) {
        self.tables = self
            .schema
            .tables()
            .map(|t| (t.id, TableStore::new(t.records_per_bucket)))
            .collect();
        for t in &snap.tables {
            let ts = self
                .tables
                .get_mut(&t.table)
                .unwrap_or_else(|| panic!("checkpoint has unknown table {}", t.table));
            for (k, row) in &t.rows {
                ts.bucket_for_mut(*k).put(*k, row.clone());
            }
            for (k, v) in &t.versions {
                ts.bucket_for_mut(*k).set_record_version(*k, *v);
            }
        }
    }

    /// Diagnostic: total records across tables.
    pub fn num_records(&self) -> usize {
        self.tables.values().map(TableStore::num_records).sum()
    }

    /// Diagnostic: true when no bucket in the partition holds any lock.
    /// Used by tests to assert that runs never leak locks.
    pub fn all_locks_free(&self) -> bool {
        self.tables
            .values()
            .all(|t| t.buckets.values().all(|b| b.lock.is_free()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableDef;
    use chiller_common::ids::NodeId;
    use chiller_common::value::Value;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add(TableDef::new(TableId(1), "acct", vec!["id", "bal"]));
        s.add(TableDef::new(TableId(2), "coarse", vec!["id"]).with_bucket_size(10));
        s
    }

    fn store() -> PartitionStore {
        PartitionStore::new(PartitionId(0), schema())
    }

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(1), k)
    }

    fn txn(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    #[test]
    fn crud_roundtrip() {
        let mut st = store();
        st.insert(rid(1), vec![Value::I64(1), Value::F64(10.0)])
            .unwrap();
        assert_eq!(st.read(rid(1)).unwrap()[1].as_f64(), 10.0);
        st.write(rid(1), vec![Value::I64(1), Value::F64(20.0)]);
        assert_eq!(st.read(rid(1)).unwrap()[1].as_f64(), 20.0);
        let old = st.delete(rid(1)).unwrap();
        assert_eq!(old[1].as_f64(), 20.0);
        assert!(matches!(
            st.read(rid(1)),
            Err(ChillerError::RecordNotFound(_))
        ));
    }

    #[test]
    fn insert_duplicate_fails() {
        let mut st = store();
        st.insert(rid(1), vec![Value::I64(1), Value::Null]).unwrap();
        assert!(matches!(
            st.insert(rid(1), vec![Value::I64(1), Value::Null]),
            Err(ChillerError::DuplicateKey(_))
        ));
    }

    #[test]
    fn no_wait_lock_conflict_surfaces_error() {
        let mut st = store();
        st.insert(rid(1), vec![Value::I64(1), Value::Null]).unwrap();
        st.try_lock(rid(1), txn(1), LockMode::Exclusive, SimTime(0))
            .unwrap();
        let err = st
            .try_lock(rid(1), txn(2), LockMode::Shared, SimTime(0))
            .unwrap_err();
        assert!(matches!(err, ChillerError::LockConflict { .. }));
        assert!(err.is_retryable());
    }

    #[test]
    fn unlock_reports_contention_span() {
        let mut st = store();
        st.insert(rid(1), vec![Value::I64(1), Value::Null]).unwrap();
        st.try_lock(rid(1), txn(1), LockMode::Exclusive, SimTime(100))
            .unwrap();
        let rel = st.unlock(rid(1), txn(1), SimTime(400)).unwrap();
        assert_eq!(rel.held_for.as_nanos(), 300);
        assert!(st.all_locks_free());
    }

    #[test]
    fn bucket_granularity_couples_neighbors() {
        let mut st = store();
        let a = RecordId::new(TableId(2), 3);
        let b = RecordId::new(TableId(2), 7); // same bucket (size 10)
        let c = RecordId::new(TableId(2), 13); // next bucket
        st.load(a, vec![Value::I64(3)]);
        st.load(b, vec![Value::I64(7)]);
        st.load(c, vec![Value::I64(13)]);
        st.try_lock(a, txn(1), LockMode::Exclusive, SimTime(0))
            .unwrap();
        assert!(st
            .try_lock(b, txn(2), LockMode::Shared, SimTime(0))
            .is_err());
        assert!(st.try_lock(c, txn(2), LockMode::Shared, SimTime(0)).is_ok());
    }

    #[test]
    fn version_bumps_per_bucket_write() {
        let mut st = store();
        assert_eq!(st.version(rid(5)), 0);
        st.write(rid(5), vec![Value::I64(5), Value::Null]);
        let v1 = st.version(rid(5));
        st.write(rid(5), vec![Value::I64(5), Value::Null]);
        assert!(st.version(rid(5)) > v1);
    }

    #[test]
    fn record_counts() {
        let mut st = store();
        for k in 0..5 {
            st.load(rid(k), vec![Value::I64(k as i64), Value::Null]);
        }
        assert_eq!(st.num_records(), 5);
        assert_eq!(st.table(TableId(1)).num_buckets(), 5);
    }

    #[test]
    fn holds_and_is_locked() {
        let mut st = store();
        st.load(rid(1), vec![Value::I64(1), Value::Null]);
        assert!(!st.is_locked(rid(1)));
        st.try_lock(rid(1), txn(1), LockMode::Shared, SimTime(0))
            .unwrap();
        assert!(st.is_locked(rid(1)));
        assert!(st.holds_lock(rid(1), txn(1)));
        assert!(!st.holds_lock(rid(1), txn(2)));
    }
}
