//! Per-partition redo write-ahead log (DESIGN.md §15).
//!
//! Durability for the memory-only store: each engine appends the write-sets
//! the commit path already collects to an append-only log, batching fsyncs
//! the same way the runtime already batches sends (group commit). The format
//! is dependency-free: length-prefixed binary frames, each carrying a CRC32
//! over its payload so a torn tail — the normal state of a log after a
//! crash — is detected and truncated on open rather than misparsed.
//!
//! Four record kinds cover the protocols' commit paths:
//!
//! * [`WalRecord::Redo`] — participant-side, appended when a committed
//!   write-set is applied to the store. Carries the per-record version each
//!   write installed so the monotone version chain the serializability
//!   checker relies on (DESIGN.md §14) survives recovery.
//! * [`WalRecord::Decide`] — coordinator-side, appended at the commit
//!   decision point *before* the commit messages are sent. Carries the full
//!   write-set with rows and target partitions so recovery can repair
//!   participants that crashed between decision and apply. For Chiller
//!   two-region transactions the decision is delegated: a `Decide` with
//!   `pending_inner = Some(host)` is provisional, and the transaction's fate
//!   is settled by whether the inner host's log contains an
//!   [`WalRecord::InnerCommit`] for it.
//! * [`WalRecord::InnerCommit`] — the inner host's unilateral commit marker
//!   (§3.3: if the inner region commits, the outer region commits
//!   unconditionally), appended atomically with the inner redo.
//! * [`WalRecord::Ack`] — the coordinator acknowledged the commit to the
//!   client (metrics/latency recorded). A `Decide` without an `Ack` is an
//!   in-doubt transaction that recovery must resolve.
//!
//! The frame layout is `[u32 len][u32 crc32][payload]`, little-endian. A
//! record is valid iff the frame is complete, the CRC matches, and the
//! payload decodes with nothing left over; the log's valid prefix ends at
//! the first record that is not.

use crate::store::PartitionStore;
use chiller_common::ids::{PartitionId, RecordId, TableId, TxnId};
use chiller_common::value::{Row, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default number of commit-decision records batched per fsync. Override
/// with `CHILLER_FSYNC_BATCH` or [`crate::wal::Wal::set_fsync_batch`];
/// `1` degenerates to an fsync per commit.
pub const DEFAULT_FSYNC_BATCH: u64 = 64;

/// Upper bound on a single frame's payload, so a corrupt length prefix in
/// a torn tail cannot drive a multi-gigabyte allocation on open.
const MAX_FRAME_LEN: u32 = 1 << 28;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — nibble-table, dependency-free
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 16] = [
    0x0000_0000,
    0x1DB7_1064,
    0x3B6E_20C8,
    0x26D9_30AC,
    0x76DC_4190,
    0x6B6B_51F4,
    0x4DB2_6158,
    0x5005_713C,
    0xEDB8_8320,
    0xF00F_9344,
    0xD6D6_A3E8,
    0xCB61_B38C,
    0x9B64_C2B0,
    0x86D3_D2D4,
    0xA00A_E278,
    0xBDBD_F21C,
];

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 4) ^ CRC_TABLE[((crc ^ b as u32) & 0xF) as usize];
        crc = (crc >> 4) ^ CRC_TABLE[((crc ^ ((b as u32) >> 4)) & 0xF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Record types
// ---------------------------------------------------------------------------

/// The store mutation a redo write replays. Mirrors the commit path's
/// `WriteKind` without depending on the message layer (storage sits below
/// it in the crate graph).
#[derive(Debug, Clone, PartialEq)]
pub enum RedoOp {
    /// Overwrite (or create) the record with this row.
    Put(Row),
    /// Insert a fresh record with this row.
    Insert(Row),
    /// Delete the record (a tombstone is itself a versioned write).
    Delete,
}

/// One applied write: record, the per-record version the apply installed,
/// and the mutation itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RedoWrite {
    /// Record written.
    pub record: RecordId,
    /// Per-record version this write installed (see
    /// `PartitionStore::record_version`). `0` in [`WalRecord::Decide`]
    /// records, where the apply has not happened yet.
    pub version: u64,
    /// The mutation.
    pub op: RedoOp,
}

/// One write in a coordinator's decision record: where it goes plus the
/// mutation (versions are assigned at apply time, not decision time).
#[derive(Debug, Clone, PartialEq)]
pub struct DecideWrite {
    /// Partition the write targets.
    pub partition: PartitionId,
    /// Record written.
    pub record: RecordId,
    /// The mutation.
    pub op: RedoOp,
}

/// One durable log record. See the module docs for the roles.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Participant applied `writes` for committed transaction `txn`.
    Redo {
        /// Committed transaction.
        txn: TxnId,
        /// Applied writes with installed versions, in apply order.
        writes: Vec<RedoWrite>,
    },
    /// Coordinator decided to commit `txn` (logged before the commit
    /// messages leave the node).
    Decide {
        /// Deciding transaction.
        txn: TxnId,
        /// Stored-procedure name, for per-proc recovery accounting.
        proc: String,
        /// `Some(host)` while the decision is delegated to an inner host
        /// (Chiller two-region): the transaction committed iff that host's
        /// log carries an [`WalRecord::InnerCommit`] for it.
        pending_inner: Option<PartitionId>,
        /// The decided write-set with rows and target partitions.
        writes: Vec<DecideWrite>,
    },
    /// Inner host committed `txn` unilaterally (§3.3).
    InnerCommit {
        /// Transaction whose inner region committed.
        txn: TxnId,
    },
    /// Coordinator acknowledged `txn`'s commit (counted in metrics).
    Ack {
        /// Acknowledged transaction.
        txn: TxnId,
    },
}

impl WalRecord {
    /// Whether this record marks a commit decision — the unit group commit
    /// batches fsyncs over.
    pub fn is_commit_mark(&self) -> bool {
        matches!(
            self,
            WalRecord::Decide { .. } | WalRecord::InnerCommit { .. }
        )
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::I64(i) => {
            buf.push(0);
            put_u64(buf, *i as u64);
        }
        Value::F64(f) => {
            buf.push(1);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            buf.push(2);
            put_str(buf, s);
        }
        Value::Null => buf.push(3),
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn put_record_id(buf: &mut Vec<u8>, rid: RecordId) {
    put_u16(buf, rid.table.0);
    put_u64(buf, rid.key);
}

fn put_op(buf: &mut Vec<u8>, op: &RedoOp) {
    match op {
        RedoOp::Put(row) => {
            buf.push(0);
            put_row(buf, row);
        }
        RedoOp::Insert(row) => {
            buf.push(1);
            put_row(buf, row);
        }
        RedoOp::Delete => buf.push(2),
    }
}

/// Cursor over an immutable byte slice; every getter fails (returns
/// `None`) on underrun instead of panicking, so a corrupt payload that
/// slipped past the CRC still cannot take the process down.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::I64(self.u64()? as i64),
            1 => Value::F64(f64::from_bits(self.u64()?)),
            2 => Value::Str(self.str()?),
            3 => Value::Null,
            _ => return None,
        })
    }

    fn row(&mut self) -> Option<Row> {
        let n = self.u32()? as usize;
        // Bound the pre-allocation by what the payload could possibly hold
        // (each value is at least one tag byte).
        if n > self.data.len() - self.pos {
            return None;
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Some(row)
    }

    fn record_id(&mut self) -> Option<RecordId> {
        let table = TableId(self.u16()?);
        let key = self.u64()?;
        Some(RecordId { table, key })
    }

    fn op(&mut self) -> Option<RedoOp> {
        Some(match self.u8()? {
            0 => RedoOp::Put(self.row()?),
            1 => RedoOp::Insert(self.row()?),
            2 => RedoOp::Delete,
            _ => return None,
        })
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Encode one record's payload (no framing).
fn encode_payload(rec: &WalRecord, buf: &mut Vec<u8>) {
    match rec {
        WalRecord::Redo { txn, writes } => {
            buf.push(1);
            put_u64(buf, txn.0);
            put_u32(buf, writes.len() as u32);
            for w in writes {
                put_record_id(buf, w.record);
                put_u64(buf, w.version);
                put_op(buf, &w.op);
            }
        }
        WalRecord::Decide {
            txn,
            proc,
            pending_inner,
            writes,
        } => {
            buf.push(2);
            put_u64(buf, txn.0);
            put_str(buf, proc);
            match pending_inner {
                Some(p) => {
                    buf.push(1);
                    put_u32(buf, p.0);
                }
                None => buf.push(0),
            }
            put_u32(buf, writes.len() as u32);
            for w in writes {
                put_u32(buf, w.partition.0);
                put_record_id(buf, w.record);
                put_op(buf, &w.op);
            }
        }
        WalRecord::InnerCommit { txn } => {
            buf.push(3);
            put_u64(buf, txn.0);
        }
        WalRecord::Ack { txn } => {
            buf.push(4);
            put_u64(buf, txn.0);
        }
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(payload);
    let rec = match c.u8()? {
        1 => {
            let txn = TxnId(c.u64()?);
            let n = c.u32()? as usize;
            let mut writes = Vec::new();
            for _ in 0..n {
                let record = c.record_id()?;
                let version = c.u64()?;
                let op = c.op()?;
                writes.push(RedoWrite {
                    record,
                    version,
                    op,
                });
            }
            WalRecord::Redo { txn, writes }
        }
        2 => {
            let txn = TxnId(c.u64()?);
            let proc = c.str()?;
            let pending_inner = match c.u8()? {
                0 => None,
                1 => Some(PartitionId(c.u32()?)),
                _ => return None,
            };
            let n = c.u32()? as usize;
            let mut writes = Vec::new();
            for _ in 0..n {
                let partition = PartitionId(c.u32()?);
                let record = c.record_id()?;
                let op = c.op()?;
                writes.push(DecideWrite {
                    partition,
                    record,
                    op,
                });
            }
            WalRecord::Decide {
                txn,
                proc,
                pending_inner,
                writes,
            }
        }
        3 => WalRecord::InnerCommit {
            txn: TxnId(c.u64()?),
        },
        4 => WalRecord::Ack {
            txn: TxnId(c.u64()?),
        },
        _ => return None,
    };
    // A record is only valid if the payload is fully consumed — trailing
    // garbage means the frame did not come from this encoder.
    if c.done() {
        Some(rec)
    } else {
        None
    }
}

/// Encode one framed record (`[len][crc][payload]`) onto `buf`.
pub fn encode_record(rec: &WalRecord, buf: &mut Vec<u8>) {
    let mut payload = Vec::new();
    encode_payload(rec, &mut payload);
    put_u32(buf, payload.len() as u32);
    put_u32(buf, crc32(&payload));
    buf.extend_from_slice(&payload);
}

/// Decode a stream of framed records, stopping at the first frame that is
/// incomplete, fails its CRC, or does not decode. Returns the records of
/// the valid prefix and the prefix's byte length — the torn-tail
/// truncation point.
pub fn decode_stream(data: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if data.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        if len > MAX_FRAME_LEN || data.len() - pos - 8 < len as usize {
            break;
        }
        let payload = &data[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        match decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => break,
        }
        pos += 8 + len as usize;
    }
    (records, pos)
}

// ---------------------------------------------------------------------------
// Log writer (group commit)
// ---------------------------------------------------------------------------

/// Counters a [`Wal`] accumulates; the engine folds them into the run's
/// telemetry so fsync amortization is observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (all kinds).
    pub records_appended: u64,
    /// Bytes appended (framing included).
    pub bytes_appended: u64,
    /// Buffered-write flushes that reached the file.
    pub flushes: u64,
    /// fsyncs issued (one per non-empty flush).
    pub fsyncs: u64,
    /// Valid records recovered on open.
    pub recovered_records: u64,
    /// Torn-tail bytes dropped on open.
    pub torn_bytes_dropped: u64,
}

/// Append-only per-engine redo log with group commit: appends buffer in
/// memory and an fsync is issued when the number of buffered commit marks
/// reaches the batch size, or when the owner flushes at a batch boundary
/// (the same amortization points the runtime already uses for sends).
///
/// Write errors panic: a durability subsystem that cannot write its log
/// has no useful degraded mode.
pub struct Wal {
    file: File,
    path: PathBuf,
    buf: Vec<u8>,
    pending_commit_marks: u64,
    fsync_batch: u64,
    /// Counters (fsyncs, bytes, recovery) for telemetry.
    pub stats: WalStats,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("buffered", &self.buf.len())
            .field("fsync_batch", &self.fsync_batch)
            .finish()
    }
}

impl Wal {
    /// Open (or create) the log at `path`, scan its valid prefix, truncate
    /// any torn tail, and return the writer positioned at the end plus the
    /// recovered records.
    pub fn open(path: &Path, fsync_batch: u64) -> std::io::Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let (records, valid_len) = decode_stream(&data);
        let mut stats = WalStats {
            recovered_records: records.len() as u64,
            ..WalStats::default()
        };
        if valid_len < data.len() {
            stats.torn_bytes_dropped = (data.len() - valid_len) as u64;
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                buf: Vec::new(),
                pending_commit_marks: 0,
                fsync_batch: fsync_batch.max(1),
                stats,
            },
            records,
        ))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Change the group-commit batch size (buffered commit marks per fsync).
    pub fn set_fsync_batch(&mut self, batch: u64) {
        self.fsync_batch = batch.max(1);
    }

    /// Append one record; flushes (write + fsync) when the buffered commit
    /// marks reach the batch size.
    pub fn append(&mut self, rec: &WalRecord) {
        let before = self.buf.len();
        encode_record(rec, &mut self.buf);
        self.stats.records_appended += 1;
        self.stats.bytes_appended += (self.buf.len() - before) as u64;
        if rec.is_commit_mark() {
            self.pending_commit_marks += 1;
            if self.pending_commit_marks >= self.fsync_batch {
                self.flush();
            }
        }
    }

    /// Bytes buffered but not yet on disk.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Push buffered bytes into the OS file **without** forcing them to
    /// disk. The batch-boundary valve for group commit: bounds the
    /// in-memory buffer at every engine batch without spending the fsync
    /// the commit-mark counter is amortizing. Commit marks written this
    /// way stay pending until the next [`Self::flush`].
    pub fn write_through(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.file
            .write_all(&self.buf)
            .unwrap_or_else(|e| panic!("wal write to {} failed: {e}", self.path.display()));
        self.buf.clear();
        self.stats.flushes += 1;
    }

    /// Write and fsync everything buffered. No-op when nothing is pending
    /// — neither buffered bytes nor commit marks awaiting their fsync.
    pub fn flush(&mut self) {
        if self.buf.is_empty() && self.pending_commit_marks == 0 {
            return;
        }
        if !self.buf.is_empty() {
            self.file
                .write_all(&self.buf)
                .unwrap_or_else(|e| panic!("wal write to {} failed: {e}", self.path.display()));
            self.buf.clear();
            self.stats.flushes += 1;
        }
        self.file
            .sync_data()
            .unwrap_or_else(|e| panic!("wal fsync of {} failed: {e}", self.path.display()));
        self.pending_commit_marks = 0;
        self.stats.fsyncs += 1;
    }

    /// Discard the log's contents (after a checkpoint made them redundant).
    /// Pending buffered records are dropped too — the caller checkpoints
    /// state that already includes them.
    pub fn truncate(&mut self) {
        self.buf.clear();
        self.pending_commit_marks = 0;
        self.file
            .set_len(0)
            .unwrap_or_else(|e| panic!("wal truncate of {} failed: {e}", self.path.display()));
        self.file
            .seek(SeekFrom::Start(0))
            .expect("wal seek after truncate");
        self.file
            .sync_data()
            .unwrap_or_else(|e| panic!("wal fsync of {} failed: {e}", self.path.display()));
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// A full snapshot of one partition's durable state: every row plus the
/// complete per-record version map — including tombstone versions for
/// deleted records, so a post-recovery re-insert continues the version
/// chain instead of duplicating an already-installed version.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreSnapshot {
    /// Per-table rows and version maps.
    pub tables: Vec<TableSnapshot>,
}

/// One table's rows and record versions in a [`StoreSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table captured.
    pub table: TableId,
    /// `(key, row)` pairs.
    pub rows: Vec<(u64, Row)>,
    /// Complete `(key, record_version)` map, tombstones included.
    pub versions: Vec<(u64, u64)>,
}

fn encode_snapshot(snap: &StoreSnapshot, buf: &mut Vec<u8>) {
    put_u32(buf, snap.tables.len() as u32);
    for t in &snap.tables {
        put_u16(buf, t.table.0);
        put_u32(buf, t.rows.len() as u32);
        for (k, row) in &t.rows {
            put_u64(buf, *k);
            put_row(buf, row);
        }
        put_u32(buf, t.versions.len() as u32);
        for (k, v) in &t.versions {
            put_u64(buf, *k);
            put_u64(buf, *v);
        }
    }
}

fn decode_snapshot(payload: &[u8]) -> Option<StoreSnapshot> {
    let mut c = Cursor::new(payload);
    let nt = c.u32()? as usize;
    let mut tables = Vec::new();
    for _ in 0..nt {
        let table = TableId(c.u16()?);
        let nr = c.u32()? as usize;
        let mut rows = Vec::new();
        for _ in 0..nr {
            let k = c.u64()?;
            let row = c.row()?;
            rows.push((k, row));
        }
        let nv = c.u32()? as usize;
        let mut versions = Vec::new();
        for _ in 0..nv {
            let k = c.u64()?;
            let v = c.u64()?;
            versions.push((k, v));
        }
        tables.push(TableSnapshot {
            table,
            rows,
            versions,
        });
    }
    if c.done() {
        Some(StoreSnapshot { tables })
    } else {
        None
    }
}

/// Write `store`'s snapshot to `path` atomically: encode + CRC-frame into
/// `path.tmp`, fsync, rename over `path`, fsync the directory. A crash at
/// any point leaves either the old checkpoint or the new one, never a
/// partial file.
pub fn write_checkpoint(path: &Path, store: &PartitionStore) -> std::io::Result<()> {
    let snap = store.snapshot();
    let mut payload = Vec::new();
    encode_snapshot(&snap, &mut payload);
    let mut framed = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut framed, payload.len() as u32);
    put_u32(&mut framed, crc32(&payload));
    framed.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename durable; some filesystems do not support
        // fsyncing directories, so failures are tolerated.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read the checkpoint at `path`. Returns `None` when the file is absent
/// or does not validate (a checkpoint is written atomically, so an invalid
/// file means "no checkpoint", not "torn checkpoint").
pub fn read_checkpoint(path: &Path) -> Option<StoreSnapshot> {
    let data = std::fs::read(path).ok()?;
    if data.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let crc = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if data.len() - 8 != len {
        return None;
    }
    let payload = &data[8..];
    if crc32(payload) != crc {
        return None;
    }
    decode_snapshot(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::NodeId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(1), seq)
    }

    fn rid(k: u64) -> RecordId {
        RecordId::new(TableId(3), k)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Decide {
                txn: txn(1),
                proc: "transfer".to_string(),
                pending_inner: Some(PartitionId(2)),
                writes: vec![
                    DecideWrite {
                        partition: PartitionId(0),
                        record: rid(7),
                        op: RedoOp::Put(vec![Value::I64(-5), Value::F64(1.25)]),
                    },
                    DecideWrite {
                        partition: PartitionId(2),
                        record: rid(9),
                        op: RedoOp::Delete,
                    },
                ],
            },
            WalRecord::InnerCommit { txn: txn(1) },
            WalRecord::Redo {
                txn: txn(1),
                writes: vec![RedoWrite {
                    record: rid(7),
                    version: 42,
                    op: RedoOp::Insert(vec![Value::Str("déjà".into()), Value::Null]),
                }],
            },
            WalRecord::Ack { txn: txn(1) },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn codec_roundtrips_every_record_kind() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let (decoded, len) = decode_stream(&buf);
        assert_eq!(decoded, recs);
        assert_eq!(len, buf.len());
    }

    #[test]
    fn torn_tail_recovers_longest_valid_prefix() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut offsets = vec![0usize];
        for r in &recs {
            encode_record(r, &mut buf);
            offsets.push(buf.len());
        }
        // Truncating at every byte offset must recover exactly the records
        // whose frames fit, and never panic.
        for cut in 0..=buf.len() {
            let (decoded, len) = decode_stream(&buf[..cut]);
            let whole = offsets.iter().filter(|&&o| o <= cut).count() - 1;
            assert_eq!(decoded.len(), whole, "cut at {cut}");
            assert_eq!(len, offsets[whole], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        // Flip a byte in the last record's payload: earlier records still
        // decode, the corrupt one is dropped.
        let n = buf.len();
        buf[n - 1] ^= 0xFF;
        let (decoded, _) = decode_stream(&buf);
        assert_eq!(decoded.len(), recs.len() - 1);
    }

    #[test]
    fn wal_open_append_reopen_roundtrips() {
        let dir = std::env::temp_dir().join(format!("chiller-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.wal");
        let _ = std::fs::remove_file(&path);

        let recs = sample_records();
        {
            let (mut wal, recovered) = Wal::open(&path, 1).unwrap();
            assert!(recovered.is_empty());
            for r in &recs {
                wal.append(r);
            }
            wal.flush();
            assert!(wal.stats.fsyncs >= 1);
        }
        let (wal, recovered) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovered, recs);
        assert_eq!(wal.stats.recovered_records, recs.len() as u64);
        assert_eq!(wal.stats.torn_bytes_dropped, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_open_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("chiller-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let _ = std::fs::remove_file(&path);

        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        // Simulate a torn write: drop the last 3 bytes.
        std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
        let (wal, recovered) = Wal::open(&path, 4).unwrap();
        assert_eq!(recovered.len(), recs.len() - 1);
        assert!(wal.stats.torn_bytes_dropped > 0);
        drop(wal);
        // The tail was truncated on disk, so a second open sees a clean log.
        let (wal2, recovered2) = Wal::open(&path, 4).unwrap();
        assert_eq!(recovered2.len(), recs.len() - 1);
        assert_eq!(wal2.stats.torn_bytes_dropped, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = std::env::temp_dir().join(format!("chiller-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("group.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path, 4).unwrap();
        for seq in 0..8 {
            wal.append(&WalRecord::Decide {
                txn: txn(seq),
                proc: "p".into(),
                pending_inner: None,
                writes: vec![],
            });
            // Redo/Ack records never trigger an fsync by themselves.
            wal.append(&WalRecord::Ack { txn: txn(seq) });
        }
        // 8 commit marks at batch 4 → exactly 2 fsyncs; the trailing Ack
        // (appended after the second batch filled) stays buffered until
        // the owner's next batch-boundary flush.
        assert_eq!(wal.stats.fsyncs, 2);
        assert!(wal.buffered() > 0);
        wal.flush();
        assert_eq!(wal.stats.fsyncs, 3);
        assert_eq!(wal.buffered(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = std::env::temp_dir().join(format!("chiller-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        wal.append(&WalRecord::Ack { txn: txn(1) });
        wal.flush();
        wal.truncate();
        drop(wal);
        let (_, recovered) = Wal::open(&path, 1).unwrap();
        assert!(recovered.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
