//! Shared/exclusive lock words with NO_WAIT semantics.
//!
//! Each bucket embeds one [`LockState`] (§6: "each bucket encapsulates its
//! own lock"). Under NO_WAIT, a conflicting request fails immediately and the
//! requesting transaction aborts — which makes deadlock impossible (§3.1).
//!
//! The lock also remembers *when* each holder acquired it so the storage
//! layer can report per-record **contention spans** (the thick blue lines of
//! the paper's Figure 3).

use chiller_common::ids::TxnId;
use chiller_common::time::{Duration, SimTime};

/// Requested access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Embedded lock word. Holder lists are tiny (NO_WAIT keeps queues empty, and
/// shared holder counts are bounded by engine concurrency), so a `Vec` with
/// linear scans beats a hash set here.
#[derive(Debug, Clone, Default)]
pub struct LockState {
    shared: Vec<(TxnId, SimTime)>,
    exclusive: Option<(TxnId, SimTime)>,
}

/// Outcome of a release, reporting how long the lock was held — the record's
/// contention span contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Released {
    pub held_for: Duration,
    pub mode: LockMode,
}

impl LockState {
    pub fn new() -> Self {
        Self::default()
    }

    /// True if no transaction holds the lock in any mode.
    pub fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none()
    }

    /// True if `txn` holds the lock in any mode.
    pub fn holds(&self, txn: TxnId) -> bool {
        self.exclusive.map(|(t, _)| t) == Some(txn) || self.shared.iter().any(|&(t, _)| t == txn)
    }

    /// Current exclusive holder, if any.
    pub fn exclusive_holder(&self) -> Option<TxnId> {
        self.exclusive.map(|(t, _)| t)
    }

    /// Number of shared holders.
    pub fn shared_count(&self) -> usize {
        self.shared.len()
    }

    /// Attempt to acquire under NO_WAIT. Returns `true` iff granted.
    ///
    /// Re-entrant acquisitions by the same transaction succeed without
    /// changing state; an upgrade (shared → exclusive) succeeds only when the
    /// requester is the sole shared holder.
    pub fn try_acquire(&mut self, txn: TxnId, mode: LockMode, now: SimTime) -> bool {
        match mode {
            LockMode::Shared => {
                if let Some((holder, _)) = self.exclusive {
                    // An exclusive holder may also read its own lock.
                    return holder == txn;
                }
                if !self.shared.iter().any(|&(t, _)| t == txn) {
                    self.shared.push((txn, now));
                }
                true
            }
            LockMode::Exclusive => {
                if let Some((holder, _)) = self.exclusive {
                    return holder == txn;
                }
                match self.shared.as_slice() {
                    [] => {
                        self.exclusive = Some((txn, now));
                        true
                    }
                    // Upgrade path: sole shared holder is the requester.
                    [(holder, since)] if *holder == txn => {
                        self.exclusive = Some((txn, *since));
                        self.shared.clear();
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// Release whatever `txn` holds. Returns `None` when `txn` held nothing
    /// (releases are idempotent — abort paths may release eagerly).
    pub fn release(&mut self, txn: TxnId, now: SimTime) -> Option<Released> {
        if let Some((holder, since)) = self.exclusive {
            if holder == txn {
                self.exclusive = None;
                return Some(Released {
                    held_for: now.saturating_since(since),
                    mode: LockMode::Exclusive,
                });
            }
        }
        if let Some(pos) = self.shared.iter().position(|&(t, _)| t == txn) {
            let (_, since) = self.shared.swap_remove(pos);
            return Some(Released {
                held_for: now.saturating_since(since),
                mode: LockMode::Shared,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::NodeId;

    fn t(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    const T0: SimTime = SimTime(0);

    #[test]
    fn shared_locks_are_compatible() {
        let mut l = LockState::new();
        assert!(l.try_acquire(t(1), LockMode::Shared, T0));
        assert!(l.try_acquire(t(2), LockMode::Shared, T0));
        assert_eq!(l.shared_count(), 2);
    }

    #[test]
    fn exclusive_blocks_everyone_else() {
        let mut l = LockState::new();
        assert!(l.try_acquire(t(1), LockMode::Exclusive, T0));
        assert!(!l.try_acquire(t(2), LockMode::Exclusive, T0));
        assert!(!l.try_acquire(t(2), LockMode::Shared, T0));
    }

    #[test]
    fn shared_blocks_exclusive_from_others() {
        let mut l = LockState::new();
        assert!(l.try_acquire(t(1), LockMode::Shared, T0));
        assert!(!l.try_acquire(t(2), LockMode::Exclusive, T0));
    }

    #[test]
    fn reentrant_acquire_is_noop_success() {
        let mut l = LockState::new();
        assert!(l.try_acquire(t(1), LockMode::Exclusive, T0));
        assert!(l.try_acquire(t(1), LockMode::Exclusive, T0));
        assert!(l.try_acquire(t(1), LockMode::Shared, T0));
        assert!(l.release(t(1), SimTime(5)).is_some());
        assert!(l.is_free());
    }

    #[test]
    fn upgrade_succeeds_when_sole_holder() {
        let mut l = LockState::new();
        assert!(l.try_acquire(t(1), LockMode::Shared, T0));
        assert!(l.try_acquire(t(1), LockMode::Exclusive, SimTime(10)));
        assert_eq!(l.exclusive_holder(), Some(t(1)));
        // Span counts from the original shared acquisition.
        let rel = l.release(t(1), SimTime(30)).unwrap();
        assert_eq!(rel.held_for, Duration(30));
    }

    #[test]
    fn upgrade_fails_with_other_readers() {
        let mut l = LockState::new();
        assert!(l.try_acquire(t(1), LockMode::Shared, T0));
        assert!(l.try_acquire(t(2), LockMode::Shared, T0));
        assert!(!l.try_acquire(t(1), LockMode::Exclusive, T0));
    }

    #[test]
    fn release_reports_span_and_mode() {
        let mut l = LockState::new();
        l.try_acquire(t(1), LockMode::Exclusive, SimTime(100));
        let r = l.release(t(1), SimTime(350)).unwrap();
        assert_eq!(r.held_for, Duration(250));
        assert_eq!(r.mode, LockMode::Exclusive);
    }

    #[test]
    fn release_is_idempotent() {
        let mut l = LockState::new();
        l.try_acquire(t(1), LockMode::Shared, T0);
        assert!(l.release(t(1), T0).is_some());
        assert!(l.release(t(1), T0).is_none());
        assert!(l.release(t(9), T0).is_none());
    }

    #[test]
    fn holds_reflects_both_modes() {
        let mut l = LockState::new();
        l.try_acquire(t(1), LockMode::Shared, T0);
        l.try_acquire(t(2), LockMode::Shared, T0);
        assert!(l.holds(t(1)) && l.holds(t(2)) && !l.holds(t(3)));
    }

    #[test]
    fn freed_lock_grants_again() {
        let mut l = LockState::new();
        l.try_acquire(t(1), LockMode::Exclusive, T0);
        l.release(t(1), SimTime(10));
        assert!(l.try_acquire(t(2), LockMode::Exclusive, SimTime(10)));
    }
}
