//! Record placement: which partition owns which record.
//!
//! §4.4 of the paper: only **hot** records get entries in a lookup table;
//! everything else falls back to an orthogonal default partitioner (hash or
//! range), which "takes almost no lookup-table space". This module provides
//! both default partitioners and the combined [`LookupTable`] placement.

use chiller_common::ids::{PartitionId, RecordId, TableId};
use std::collections::HashMap;

/// Maps records to their owning partition.
pub trait Placement {
    fn partition_of(&self, record: RecordId) -> PartitionId;

    /// Number of explicit (per-record) entries this placement must store —
    /// the metric of the paper's lookup-table size comparison (§7.2.2).
    fn lookup_entries(&self) -> usize {
        0
    }
}

impl<P: Placement + ?Sized> Placement for std::sync::Arc<P> {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        (**self).partition_of(record)
    }

    fn lookup_entries(&self) -> usize {
        (**self).lookup_entries()
    }
}

/// Hash partitioning on the primary key (the paper's baseline).
#[derive(Debug, Clone)]
pub struct HashPlacement {
    partitions: u32,
}

impl HashPlacement {
    pub fn new(partitions: u32) -> Self {
        assert!(partitions > 0);
        HashPlacement { partitions }
    }

    /// Stateless 64-bit mix (SplitMix64 finalizer); cheap and well spread.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Placement for HashPlacement {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        let h = Self::mix(record.key ^ ((record.table.0 as u64) << 48));
        PartitionId((h % self.partitions as u64) as u32)
    }
}

/// Range partitioning: per-table split points on the key space. This is what
/// "partitioned by warehouse" means for TPC-C: the warehouse id occupies the
/// most significant key bits, so contiguous ranges align with warehouses.
#[derive(Debug, Clone, Default)]
pub struct RangePlacement {
    /// Per table: sorted upper bounds (exclusive) for partitions 0..k-1; keys
    /// >= the last bound map to the last partition.
    ranges: HashMap<TableId, Vec<u64>>,
    fallback_partitions: u32,
}

impl RangePlacement {
    pub fn new(fallback_partitions: u32) -> Self {
        RangePlacement {
            ranges: HashMap::new(),
            fallback_partitions: fallback_partitions.max(1),
        }
    }

    /// Register split points for a table. `bounds[i]` is the exclusive upper
    /// key bound of partition `i`; there are `bounds.len() + 1` partitions.
    pub fn set_table(&mut self, table: TableId, bounds: Vec<u64>) {
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "unsorted bounds");
        self.ranges.insert(table, bounds);
    }

    /// Convenience: partition a table uniformly by the top bits of the key —
    /// i.e. `key_high = key >> shift` maps to partition `key_high % k`.
    pub fn by_key_prefix(table: TableId, _k: u32) -> impl Fn(RecordId) -> PartitionId {
        move |r: RecordId| {
            debug_assert_eq!(r.table, table);
            PartitionId((r.key >> 48) as u32)
        }
    }
}

impl Placement for RangePlacement {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        match self.ranges.get(&record.table) {
            Some(bounds) => {
                let p = bounds.partition_point(|&b| b <= record.key);
                PartitionId(p as u32)
            }
            None => HashPlacement::new(self.fallback_partitions).partition_of(record),
        }
    }
}

/// The paper's combined scheme: a small per-record lookup table for hot
/// records plus a default partitioner for everything else (§4.4).
pub struct LookupTable<P: Placement> {
    hot: HashMap<RecordId, PartitionId>,
    default: P,
}

impl<P: Placement> LookupTable<P> {
    pub fn new(default: P) -> Self {
        LookupTable {
            hot: HashMap::new(),
            default,
        }
    }

    pub fn with_entries(
        entries: impl IntoIterator<Item = (RecordId, PartitionId)>,
        default: P,
    ) -> Self {
        LookupTable {
            hot: entries.into_iter().collect(),
            default,
        }
    }

    pub fn insert(&mut self, record: RecordId, partition: PartitionId) {
        self.hot.insert(record, partition);
    }

    pub fn is_hot(&self, record: RecordId) -> bool {
        self.hot.contains_key(&record)
    }

    pub fn hot_entries(&self) -> impl Iterator<Item = (&RecordId, &PartitionId)> {
        self.hot.iter()
    }

    /// Approximate memory footprint in bytes (entry = RecordId + PartitionId).
    pub fn approx_size_bytes(&self) -> usize {
        self.hot.len() * (std::mem::size_of::<RecordId>() + std::mem::size_of::<PartitionId>())
    }
}

impl<P: Placement> Placement for LookupTable<P> {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        match self.hot.get(&record) {
            Some(p) => *p,
            None => self.default.partition_of(record),
        }
    }

    fn lookup_entries(&self) -> usize {
        self.hot.len()
    }
}

/// A placement defined entirely by an explicit per-record map — how Schism
/// must be deployed when the optimal layout is not expressible as ranges
/// (§7.2.2: "the number of entries in the lookup table can be as large as
/// the number of records in the database").
pub struct ExplicitPlacement<P: Placement> {
    map: HashMap<RecordId, PartitionId>,
    /// Fallback for records created after partitioning (inserts).
    fallback: P,
}

impl<P: Placement> ExplicitPlacement<P> {
    pub fn new(map: HashMap<RecordId, PartitionId>, fallback: P) -> Self {
        ExplicitPlacement { map, fallback }
    }
}

impl<P: Placement> Placement for ExplicitPlacement<P> {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        match self.map.get(&record) {
            Some(p) => *p,
            None => self.fallback.partition_of(record),
        }
    }

    fn lookup_entries(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(t: u16, k: u64) -> RecordId {
        RecordId::new(TableId(t), k)
    }

    #[test]
    fn hash_placement_in_range_and_deterministic() {
        let p = HashPlacement::new(4);
        for k in 0..1000 {
            let a = p.partition_of(rid(1, k));
            assert!(a.0 < 4);
            assert_eq!(a, p.partition_of(rid(1, k)));
        }
    }

    #[test]
    fn hash_placement_spreads_keys() {
        let p = HashPlacement::new(4);
        let mut counts = [0usize; 4];
        for k in 0..10_000 {
            counts[p.partition_of(rid(1, k)).idx()] += 1;
        }
        for c in counts {
            assert!((2_000..3_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn hash_differs_across_tables() {
        let p = HashPlacement::new(16);
        let same_everywhere =
            (0..100).all(|k| p.partition_of(rid(1, k)) == p.partition_of(rid(2, k)));
        assert!(!same_everywhere);
    }

    #[test]
    fn range_placement_respects_bounds() {
        let mut p = RangePlacement::new(1);
        p.set_table(TableId(1), vec![100, 200]);
        assert_eq!(p.partition_of(rid(1, 0)), PartitionId(0));
        assert_eq!(p.partition_of(rid(1, 99)), PartitionId(0));
        assert_eq!(p.partition_of(rid(1, 100)), PartitionId(1));
        assert_eq!(p.partition_of(rid(1, 199)), PartitionId(1));
        assert_eq!(p.partition_of(rid(1, 200)), PartitionId(2));
        assert_eq!(p.partition_of(rid(1, u64::MAX)), PartitionId(2));
    }

    #[test]
    fn lookup_table_overrides_default_only_for_hot() {
        let mut lt = LookupTable::new(HashPlacement::new(4));
        let hot = rid(1, 42);
        let want = PartitionId(3);
        lt.insert(hot, want);
        assert_eq!(lt.partition_of(hot), want);
        assert!(lt.is_hot(hot));
        assert!(!lt.is_hot(rid(1, 43)));
        assert_eq!(lt.lookup_entries(), 1);
        // Cold records use the hash fallback.
        let cold = rid(1, 7);
        assert_eq!(
            lt.partition_of(cold),
            HashPlacement::new(4).partition_of(cold)
        );
    }

    #[test]
    fn lookup_table_size_accounting() {
        let mut lt = LookupTable::new(HashPlacement::new(2));
        for k in 0..10 {
            lt.insert(rid(1, k), PartitionId(0));
        }
        assert_eq!(lt.approx_size_bytes(), 10 * (16 + 4));
    }

    #[test]
    fn explicit_placement_counts_all_entries() {
        let mut map = HashMap::new();
        for k in 0..100 {
            map.insert(rid(1, k), PartitionId((k % 2) as u32));
        }
        let p = ExplicitPlacement::new(map, HashPlacement::new(2));
        assert_eq!(p.lookup_entries(), 100);
        assert_eq!(p.partition_of(rid(1, 3)), PartitionId(1));
    }
}
