//! Schema metadata: table definitions and composite-key packing.
//!
//! The workloads (TPC-C, Instacart-like, microbenchmarks) register their
//! tables here. Composite primary keys such as TPC-C's `(w_id, d_id, o_id)`
//! are packed into a single `u64` with explicit bit budgets per field, which
//! keeps [`chiller_common::ids::RecordId`] `Copy` and the hot-record lookup
//! table flat.

use chiller_common::ids::TableId;
use std::collections::HashMap;

/// Definition of one table.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub id: TableId,
    pub name: &'static str,
    /// Column names, for debugging and column-index lookups in tests.
    pub columns: Vec<&'static str>,
    /// Records per lock bucket (1 = record-level locking). TPC-C experiments
    /// use 1 so that, e.g., two different districts never falsely conflict.
    pub records_per_bucket: u64,
}

impl TableDef {
    pub fn new(id: TableId, name: &'static str, columns: Vec<&'static str>) -> Self {
        TableDef {
            id,
            name,
            columns,
            records_per_bucket: 1,
        }
    }

    pub fn with_bucket_size(mut self, records_per_bucket: u64) -> Self {
        assert!(records_per_bucket >= 1);
        self.records_per_bucket = records_per_bucket;
        self
    }

    /// Index of a column by name.
    ///
    /// # Panics
    /// Panics when the column does not exist — a schema bug, not a runtime
    /// condition.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| *c == name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.name))
    }
}

/// A database schema: the set of table definitions.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    tables: HashMap<TableId, TableDef>,
    by_name: HashMap<&'static str, TableId>,
}

impl Schema {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, def: TableDef) -> TableId {
        let id = def.id;
        assert!(
            self.by_name.insert(def.name, id).is_none(),
            "duplicate table name {}",
            def.name
        );
        assert!(self.tables.insert(id, def).is_none(), "duplicate table id");
        id
    }

    pub fn table(&self, id: TableId) -> &TableDef {
        self.tables
            .get(&id)
            .unwrap_or_else(|| panic!("unknown table {id}"))
    }

    pub fn by_name(&self, name: &str) -> &TableDef {
        let id = self
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("unknown table {name}"));
        &self.tables[id]
    }

    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Packs composite keys into a `u64` using per-field bit widths.
///
/// ```
/// use chiller_storage::schema::KeyPacker;
/// // (w_id: 16 bits, d_id: 8 bits, c_id: 24 bits)
/// let kp = KeyPacker::new(&[16, 8, 24]);
/// let key = kp.pack(&[3, 7, 1234]);
/// assert_eq!(kp.unpack(key), vec![3, 7, 1234]);
/// ```
#[derive(Debug, Clone)]
pub struct KeyPacker {
    widths: Vec<u32>,
}

impl KeyPacker {
    /// # Panics
    /// Panics if the total width exceeds 64 bits.
    pub fn new(widths: &[u32]) -> Self {
        let total: u32 = widths.iter().sum();
        assert!(total <= 64, "key wider than 64 bits");
        KeyPacker {
            widths: widths.to_vec(),
        }
    }

    /// Pack field values (given in declaration order, most-significant
    /// first).
    ///
    /// # Panics
    /// Panics (in debug builds) when a field exceeds its bit budget.
    pub fn pack(&self, fields: &[u64]) -> u64 {
        assert_eq!(fields.len(), self.widths.len(), "field count mismatch");
        let mut key = 0u64;
        for (f, w) in fields.iter().zip(&self.widths) {
            debug_assert!(*w == 64 || *f < (1u64 << w), "field {f} overflows {w} bits");
            key = if *w == 64 { *f } else { (key << w) | f };
        }
        key
    }

    /// Unpack back into field values.
    pub fn unpack(&self, mut key: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.widths.len()];
        for (slot, w) in out.iter_mut().zip(&self.widths).rev() {
            let mask = if *w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            *slot = key & mask;
            key = if *w == 64 { 0 } else { key >> w };
        }
        out
    }

    /// Extract a single field without a full unpack.
    pub fn field(&self, key: u64, index: usize) -> u64 {
        self.unpack(key)[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packer_roundtrip() {
        let kp = KeyPacker::new(&[16, 8, 24, 16]);
        let fields = vec![65_535, 255, 1 << 23, 42];
        assert_eq!(kp.unpack(kp.pack(&fields)), fields);
    }

    #[test]
    fn key_packer_orders_by_msb_field() {
        let kp = KeyPacker::new(&[16, 32]);
        assert!(kp.pack(&[1, 999_999]) < kp.pack(&[2, 0]));
    }

    #[test]
    fn key_packer_single_field() {
        let kp = KeyPacker::new(&[64]);
        assert_eq!(kp.pack(&[u64::MAX]), u64::MAX);
        assert_eq!(kp.unpack(u64::MAX), vec![u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "wider than 64")]
    fn key_packer_rejects_overwide() {
        KeyPacker::new(&[40, 40]);
    }

    #[test]
    fn schema_lookup() {
        let mut s = Schema::new();
        let id = s.add(TableDef::new(
            TableId(1),
            "warehouse",
            vec!["w_id", "w_ytd"],
        ));
        assert_eq!(s.table(id).name, "warehouse");
        assert_eq!(s.by_name("warehouse").id, id);
        assert_eq!(s.by_name("warehouse").col("w_ytd"), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        TableDef::new(TableId(1), "t", vec!["a"]).col("b");
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_name_panics() {
        let mut s = Schema::new();
        s.add(TableDef::new(TableId(1), "t", vec![]));
        s.add(TableDef::new(TableId(2), "t", vec![]));
    }
}
