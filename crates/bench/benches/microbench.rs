//! Criterion microbenchmarks for the building blocks:
//! lock-word operations, contention-likelihood evaluation, workload-graph
//! construction + partitioning (Chiller star vs Schism clique — the §4.4
//! cost claim), the run-time region decision, and raw simulator event
//! throughput.

use chiller_common::ids::{NodeId, OpId, PartitionId, RecordId, TableId, TxnId};
use chiller_common::time::SimTime;
use chiller_partition::likelihood::contention_likelihood;
use chiller_partition::{ChillerPartitioner, ContentionModel, SchismPartitioner};
use chiller_sproc::decide_regions;
use chiller_storage::lock::{LockMode, LockState};
use chiller_workload::instacart::{self, InstacartConfig};
use chiller_workload::tpcc::procs::new_order_proc;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_lock_word(c: &mut Criterion) {
    c.bench_function("lock_acquire_release_exclusive", |b| {
        let txn = TxnId::new(NodeId(0), 1);
        let mut lock = LockState::new();
        b.iter(|| {
            assert!(lock.try_acquire(txn, LockMode::Exclusive, SimTime(0)));
            black_box(lock.release(txn, SimTime(1)));
        });
    });
    c.bench_function("lock_conflicting_acquire", |b| {
        let holder = TxnId::new(NodeId(0), 1);
        let other = TxnId::new(NodeId(0), 2);
        let mut lock = LockState::new();
        lock.try_acquire(holder, LockMode::Exclusive, SimTime(0));
        b.iter(|| black_box(lock.try_acquire(other, LockMode::Shared, SimTime(0))));
    });
}

fn bench_contention_likelihood(c: &mut Criterion) {
    c.bench_function("contention_likelihood_eval", |b| {
        b.iter(|| black_box(contention_likelihood(black_box(0.7), black_box(1.3))));
    });
}

fn bench_partitioners(c: &mut Criterion) {
    // §4.4: Chiller's star graph (n edges/txn) vs Schism's clique
    // (n(n-1)/2 edges/txn).
    let cfg = InstacartConfig {
        products: 5_000,
        ..Default::default()
    };
    let trace = instacart::trace(&cfg, 1_000, 2_000_000);
    let model = ContentionModel::new(30_000.0, trace.window_ns as f64);
    let mut group = c.benchmark_group("partitioning_cost");
    group.sample_size(10);
    group.bench_function("chiller_star_pipeline", |b| {
        b.iter(|| black_box(ChillerPartitioner::new(8, model).partition(&trace)))
    });
    group.bench_function("schism_clique_pipeline", |b| {
        b.iter(|| black_box(SchismPartitioner::new(8).partition(&trace)))
    });
    group.finish();
}

fn bench_region_decision(c: &mut Criterion) {
    // The per-transaction run-time overhead Chiller adds (§3.3).
    let proc = new_order_proc(10);
    let parts: Vec<Option<PartitionId>> = (0..proc.num_ops())
        .map(|i| Some(PartitionId((i % 4) as u32)))
        .collect();
    let mut hot = vec![false; proc.num_ops()];
    hot[1] = true;
    c.bench_function("region_decision_new_order", |b| {
        b.iter(|| black_box(decide_regions(&proc, black_box(&parts), black_box(&hot))));
    });
}

fn bench_sproc_resolution(c: &mut Criterion) {
    let proc = new_order_proc(10);
    c.bench_function("key_resolution_static", |b| {
        let st = chiller_sproc::ExecState::new(
            (0..40).map(chiller_common::value::Value::I64).collect(),
            proc.num_ops(),
        );
        b.iter(|| black_box(proc.op(OpId(0)).key.resolve(&st)));
    });
}

fn bench_placement(c: &mut Criterion) {
    use chiller_storage::placement::{HashPlacement, LookupTable, Placement};
    let lt = LookupTable::with_entries(
        (0..64u64).map(|k| (RecordId::new(TableId(1), k), PartitionId(0))),
        HashPlacement::new(8),
    );
    c.bench_function("lookup_table_hot_hit", |b| {
        b.iter(|| black_box(lt.partition_of(RecordId::new(TableId(1), 5))));
    });
    c.bench_function("lookup_table_cold_fallback", |b| {
        b.iter(|| black_box(lt.partition_of(RecordId::new(TableId(1), 999_999))));
    });
}

fn bench_cluster_throughput(c: &mut Criterion) {
    // End-to-end: virtual milliseconds of TPC-C per wall second.
    use chiller::cluster::RunSpec;
    use chiller::prelude::*;
    use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("tpcc_2ms_4wh_chiller", |b| {
        b.iter_batched(
            || {
                let cfg = TpccConfig::with_warehouses(4);
                let mut sim = SimConfig::default();
                sim.engine.concurrency = 4;
                build_tpcc_cluster(&cfg, TpccMix::default(), Protocol::Chiller, sim)
            },
            |mut cluster| black_box(cluster.run(RunSpec::millis(0, 2)).total_commits()),
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lock_word,
    bench_contention_likelihood,
    bench_partitioners,
    bench_region_decision,
    bench_sproc_resolution,
    bench_placement,
    bench_cluster_throughput
);
criterion_main!(benches);
