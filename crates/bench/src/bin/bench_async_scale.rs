//! **Async scaling**: wall-clock throughput of the worker-pool backend
//! as the partition count grows far past the host's core count.
//!
//! The threaded bench (`bench_threaded_throughput`) measures dedicated
//! threads at paper-parity cluster sizes; this binary measures the
//! *multiplexing* story — the same engines, protocols and contended
//! transfer workload swept over partitions × worker-pool sizes, up to
//! 1000 partitions on a handful of workers. Every point is the median
//! of several runs with the spread recorded (the DESIGN.md §10
//! methodology, shared with the threaded bench via
//! `chiller_bench::median_run`).
//!
//! After every run the cluster is drained and the full serializability
//! contract is enforced (balance conservation, no leaked locks, no
//! zombie transactions, zero replica divergence); a violation aborts the
//! binary, so a completed sweep *is* the scale-stress certificate — at
//! every partition count, pool size and protocol in the matrix.
//!
//! Env knobs: `CHILLER_SMOKE=1` shrinks the sweep (partitions {8, 64},
//! workers {1, 2}, one run, short windows) for CI; `CHILLER_RUNS=<n>`
//! overrides the repetitions per point (default 5); `CHILLER_MAILBOX`
//! selects the mailbox implementation (ring default, recorded in the
//! output). Points run sequentially — the sweep measures the pool, so
//! nothing else may compete for the host.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, median_run, ratio};
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster_scaled, TransferConfig,
};

/// Transfer workload scaled to the partition count: enough accounts that
/// every partition holds rows (4 per partition, floored at the threaded
/// bench's 2000 so small-cluster numbers stay comparable), same hot-set
/// shape as the threaded bench.
fn workload(partitions: usize) -> TransferConfig {
    TransferConfig {
        accounts: (partitions as u64 * 4).max(2_000),
        hot_set: 8,
        hot_fraction: 0.3,
    }
}

fn sim_config(concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed: 7,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

/// One matrix point's median outcome.
struct Point {
    async_tps: f64,
    spread_pct: f64,
    abort_rate: f64,
    commits: u64,
    /// Pool size the runs actually used (clamped by the runtime).
    workers: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    partitions: usize,
    workers: usize,
    protocol: Protocol,
    mailbox: MailboxKind,
    runs: usize,
    warm_ms: u64,
    measure_ms: u64,
) -> Point {
    let cfg = workload(partitions);
    // Keyed by wall tps, carrying (abort rate, commits, workers): the
    // row comes from the median-throughput run (see `median_run`).
    let mut samples: Vec<(f64, (f64, u64, usize))> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut cluster = build_cluster_scaled(
            &cfg,
            partitions,
            protocol,
            sim_config(4),
            Backend::Async,
            Some(mailbox),
            Some(PinPolicy::Off),
            Some(workers),
        );
        let report = cluster.run(RunSpec::millis(warm_ms, measure_ms));
        cluster.quiesce();
        assert_serializability_invariants(
            &cluster,
            &cfg,
            &format!("{protocol} ({partitions} partitions, {workers} workers, {mailbox})"),
        );
        samples.push((
            report.wall_throughput(),
            (report.abort_rate(), report.total_commits(), report.workers),
        ));
    }
    let m = median_run(samples);
    let (abort_rate, commits, actual_workers) = m.payload;
    Point {
        async_tps: m.median,
        spread_pct: m.spread_pct,
        abort_rate,
        commits,
        workers: actual_workers,
    }
}

fn main() {
    let smoke = std::env::var("CHILLER_SMOKE").is_ok();
    let runs: usize = std::env::var("CHILLER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    assert!(runs >= 1);
    let cores = chiller_simnet::sizing::detected_parallelism();
    if cores < 4 {
        eprintln!(
            "WARNING: only {cores} detected cores — the fixed 4-worker pool points will measure \
             oversubscription; treat cross-pool comparisons with suspicion on this host"
        );
    }
    let (warm_ms, measure_ms) = if smoke { (20, 100) } else { (50, 250) };

    // Partition counts sweep past any realistic core count; pool sizes
    // sweep {1, 2, 4, ncpu} deduplicated in order (on a 4-core host the
    // ncpu point collapses into the 4-worker one).
    let partition_counts: Vec<usize> = if smoke {
        vec![8, 64]
    } else {
        vec![8, 64, 256, 1000]
    };
    let mut worker_counts: Vec<usize> = Vec::new();
    for w in if smoke {
        vec![1, 2]
    } else {
        vec![1, 2, 4, cores]
    } {
        if !worker_counts.contains(&w) {
            worker_counts.push(w);
        }
    }
    let protocols = [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ];
    let mailbox = MailboxKind::from_env();

    let mut rows = Vec::new();
    // Chiller's scaling headline: throughput at the largest partition
    // count, smallest vs largest pool.
    let mut chiller_scale: Vec<(usize, usize, f64)> = Vec::new();
    for protocol in protocols {
        for &partitions in &partition_counts {
            for &workers in &worker_counts {
                let p = run_point(
                    partitions, workers, protocol, mailbox, runs, warm_ms, measure_ms,
                );
                if protocol == Protocol::Chiller {
                    chiller_scale.push((partitions, p.workers, p.async_tps));
                }
                rows.push(vec![
                    protocol.to_string(),
                    partitions.to_string(),
                    p.workers.to_string(),
                    mailbox.to_string(),
                    ktps(p.async_tps),
                    format!("{:.1}", p.spread_pct),
                    ratio(p.abort_rate),
                    p.commits.to_string(),
                ]);
            }
        }
    }

    let max_partitions = *partition_counts.last().expect("non-empty sweep");
    let at_max: Vec<&(usize, usize, f64)> = chiller_scale
        .iter()
        .filter(|(p, _, _)| *p == max_partitions)
        .collect();
    let headline = {
        let lo = at_max.first().expect("chiller swept");
        let hi = at_max.last().expect("chiller swept");
        format!(
            "chiller at {max_partitions} partitions: {} Ktps on {} worker(s) vs {} Ktps on {} worker(s)",
            ktps(lo.2),
            lo.1,
            ktps(hi.2),
            hi.1
        )
    };

    emit(
        "async_scale",
        "Async worker-pool scaling: partitions x workers x protocol, medians per point (K txns/s)",
        Backend::Async,
        &[
            "protocol",
            "partitions",
            "workers",
            "mailbox",
            "async_ktps",
            "spread_pct",
            "abort_rate",
            "commits",
        ],
        &rows,
        &[
            ("concurrency_per_engine", "4".to_string()),
            ("measure_ms", measure_ms.to_string()),
            ("runs_per_point", runs.to_string()),
            ("detected_parallelism", cores.to_string()),
            (
                "variance_note",
                format!(
                    "async_ktps is the median of {runs} runs; spread_pct = (max-min)/median per \
                     point. On hosts with fewer cores than workers (detected_parallelism < \
                     workers) the multi-worker points measure oversubscribed time-slicing, not \
                     parallel speedup — single runs on shared hosts swing ~10%"
                ),
            ),
            ("scaling_headline", headline),
        ],
    );
    println!(
        "invariants: balance conserved, no leaked locks, zero replica divergence \
         (all {} matrix points, every run)",
        rows.len()
    );
}
