//! **Figure 7**: throughput of the Instacart-like NewOrder workload under
//! three partitioning schemes — hash, Schism-like, Chiller — as the number
//! of partitions grows from 2 to 8 (constant data size, one engine per
//! partition).
//!
//! Expected shape (paper): hash flat and lowest; Schism ≈1.5× hash but not
//! scaling; Chiller highest and scaling ≈linearly with partitions.
//!
//! Hash and Schism placements execute conventionally (single-region
//! 2PL+2PC: without a contention-aware layout there is no legal inner
//! region); the Chiller placement runs the two-region execution with its
//! hot lookup table — the co-design the paper evaluates.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, ratio, Matrix};
use chiller_partition::{ChillerPartitioner, ContentionModel, SchismPartitioner};
use chiller_workload::instacart::{self, InstacartConfig};
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq)]
enum Scheme {
    Hash,
    Schism,
    Chiller,
}

fn run_point(cfg: &InstacartConfig, k: usize, scheme: Scheme) -> (f64, f64) {
    // Offline statistics trace (the paper's sampling service output).
    let trace = instacart::trace(cfg, 4_000, 8_000_000);
    let model = ContentionModel::new(30_000.0, trace.window_ns as f64);

    let (placement, hot): (Arc<dyn Placement + Send + Sync>, Vec<RecordId>) = match scheme {
        Scheme::Hash => (Arc::new(HashPlacement::new(k as u32)), vec![]),
        Scheme::Schism => {
            let p = SchismPartitioner::new(k as u32).partition(&trace);
            (Arc::new(p.into_placement()), vec![])
        }
        Scheme::Chiller => {
            let mut partitioner = ChillerPartitioner::new(k as u32, model);
            // Balance on transaction (t-vertex) load so that heavily
            // co-written staples may share a partition — the contention
            // objective; only genuinely hot records get lookup entries.
            partitioner.load_metric = chiller_partition::LoadMetric::Transactions;
            partitioner.hot_threshold = 0.05;
            // Hot records are a small fraction of the data (cold records
            // stay on the hash partitioner), so the balance constraint on
            // the hot graph can be loose — letting the dense staple clique
            // co-locate, which is the contention-optimal layout.
            partitioner.epsilon = 8.0;
            let p = partitioner.partition(&trace);
            let hot = p.hot_assignments.keys().copied().collect();
            (Arc::new(p.into_lookup_table()), hot)
        }
    };
    let protocol = if scheme == Scheme::Chiller {
        Protocol::Chiller
    } else {
        Protocol::TwoPhaseLocking
    };
    let mut sim = SimConfig::default();
    sim.engine.concurrency = 4;
    sim.seed = 0xF167 + k as u64;
    let mut cluster = instacart::build_cluster(cfg, k, placement, hot, protocol, sim);
    let report = cluster.run(RunSpec::millis(2, 20));
    (report.throughput(), report.abort_rate())
}

fn main() {
    let cfg = InstacartConfig::default();
    let m = Matrix::run(
        (2..=8usize).collect(),
        vec![Scheme::Hash, Scheme::Schism, Scheme::Chiller],
        move |&k, &scheme| run_point(&cfg, k, scheme),
    );

    let rows = m.rows(
        |k| k.to_string(),
        &[&|r: &(f64, f64)| ktps(r.0), &|r: &(f64, f64)| ratio(r.1)],
    );
    let at = |k: usize, s: Scheme| m.get(&k, &s).0;
    let derived = vec![
        (
            "chiller_8p_over_2p",
            format!(
                "{:.2}x (paper: near-linear ≈4x)",
                at(8, Scheme::Chiller) / at(2, Scheme::Chiller)
            ),
        ),
        (
            "schism_8p_over_2p",
            format!(
                "{:.2}x (paper: ≈flat)",
                at(8, Scheme::Schism) / at(2, Scheme::Schism)
            ),
        ),
        (
            "chiller_over_schism_at_8p",
            format!(
                "{:.2}x (paper: ≈2x)",
                at(8, Scheme::Chiller) / at(8, Scheme::Schism)
            ),
        ),
    ];
    emit(
        "fig7",
        "Figure 7: Instacart throughput by partitioning scheme (K txns/s)",
        Backend::Simulated,
        &[
            "partitions",
            "hashing_ktps",
            "schism_ktps",
            "chiller_ktps",
            "hashing_abort",
            "schism_abort",
            "chiller_abort",
        ],
        &rows,
        &derived,
    );
}
