//! **Figure 7**: throughput of the Instacart-like NewOrder workload under
//! three partitioning schemes — hash, Schism-like, Chiller — as the number
//! of partitions grows from 2 to 8 (constant data size, one engine per
//! partition).
//!
//! Expected shape (paper): hash flat and lowest; Schism ≈1.5× hash but not
//! scaling; Chiller highest and scaling ≈linearly with partitions.
//!
//! Hash and Schism placements execute conventionally (single-region
//! 2PL+2PC: without a contention-aware layout there is no legal inner
//! region); the Chiller placement runs the two-region execution with its
//! hot lookup table — the co-design the paper evaluates.

use chiller::cluster::RunSpec;
use chiller::experiment::sweep;
use chiller::prelude::*;
use chiller_bench::{ktps, print_table, ratio};
use chiller_partition::{ChillerPartitioner, ContentionModel, SchismPartitioner};
use chiller_workload::instacart::{self, InstacartConfig};
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq)]
enum Scheme {
    Hash,
    Schism,
    Chiller,
}

fn run_point(cfg: &InstacartConfig, k: usize, scheme: Scheme) -> (f64, f64) {
    // Offline statistics trace (the paper's sampling service output).
    let trace = instacart::trace(cfg, 4_000, 8_000_000);
    let model = ContentionModel::new(30_000.0, trace.window_ns as f64);

    let (placement, hot): (Arc<dyn Placement + Send + Sync>, Vec<RecordId>) = match scheme {
        Scheme::Hash => (Arc::new(HashPlacement::new(k as u32)), vec![]),
        Scheme::Schism => {
            let p = SchismPartitioner::new(k as u32).partition(&trace);
            (Arc::new(p.into_placement()), vec![])
        }
        Scheme::Chiller => {
            let mut partitioner = ChillerPartitioner::new(k as u32, model);
            // Balance on transaction (t-vertex) load so that heavily
            // co-written staples may share a partition — the contention
            // objective; only genuinely hot records get lookup entries.
            partitioner.load_metric = chiller_partition::LoadMetric::Transactions;
            partitioner.hot_threshold = 0.05;
            // Hot records are a small fraction of the data (cold records
            // stay on the hash partitioner), so the balance constraint on
            // the hot graph can be loose — letting the dense staple clique
            // co-locate, which is the contention-optimal layout.
            partitioner.epsilon = 8.0;
            let p = partitioner.partition(&trace);
            let hot = p.hot_assignments.keys().copied().collect();
            (Arc::new(p.into_lookup_table()), hot)
        }
    };
    let protocol = if scheme == Scheme::Chiller {
        Protocol::Chiller
    } else {
        Protocol::TwoPhaseLocking
    };
    let mut sim = SimConfig::default();
    sim.engine.concurrency = 4;
    sim.seed = 0xF167 + k as u64;
    let mut cluster = instacart::build_cluster(cfg, k, placement, hot, protocol, sim);
    let report = cluster.run(RunSpec::millis(2, 20));
    (report.throughput(), report.abort_rate())
}

fn main() {
    let cfg = InstacartConfig::default();
    let points: Vec<(usize, Scheme)> = (2..=8)
        .flat_map(|k| {
            [Scheme::Hash, Scheme::Schism, Scheme::Chiller]
                .into_iter()
                .map(move |s| (k, s))
        })
        .collect();
    let cfg2 = cfg.clone();
    let results = sweep(points.clone(), move |(k, scheme)| {
        run_point(&cfg2, k, scheme)
    });

    let mut rows = Vec::new();
    for k in 2..=8usize {
        let mut row = vec![k.to_string()];
        for scheme in [Scheme::Hash, Scheme::Schism, Scheme::Chiller] {
            let idx = points
                .iter()
                .position(|p| *p == (k, scheme))
                .expect("point exists");
            row.push(ktps(results[idx].0));
        }
        for scheme in [Scheme::Hash, Scheme::Schism, Scheme::Chiller] {
            let idx = points.iter().position(|p| *p == (k, scheme)).unwrap();
            row.push(ratio(results[idx].1));
        }
        rows.push(row);
    }
    print_table(
        "Figure 7: Instacart throughput by partitioning scheme (K txns/s)",
        &[
            "partitions",
            "hashing_ktps",
            "schism_ktps",
            "chiller_ktps",
            "hashing_abort",
            "schism_abort",
            "chiller_abort",
        ],
        &rows,
    );

    // Shape checks the paper reports.
    let at = |k: usize, s: Scheme| results[points.iter().position(|p| *p == (k, s)).unwrap()].0;
    let chiller_scaling = at(8, Scheme::Chiller) / at(2, Scheme::Chiller);
    let schism_scaling = at(8, Scheme::Schism) / at(2, Scheme::Schism);
    println!("\nchiller 8p/2p scaling: {chiller_scaling:.2}x (paper: near-linear ≈4x)");
    println!("schism  8p/2p scaling: {schism_scaling:.2}x (paper: ≈flat)");
    println!(
        "chiller vs schism at 8 partitions: {:.2}x (paper: ≈2x)",
        at(8, Scheme::Chiller) / at(8, Scheme::Schism)
    );
}
