//! **Figure 9 (a, b, c)**: standard full TPC-C mix, warehouse-partitioned
//! (same layout for all protocols), sweeping the number of concurrent
//! transactions per warehouse from 1 to 8:
//!
//! * 9a — throughput of 2PL vs OCC vs Chiller;
//! * 9b — total abort rate of the three;
//! * 9c — abort-rate breakdown by transaction type for 2PL
//!   (NewOrder / Payment / StockLevel).
//!
//! Expected shapes (paper): all protocols ≈equal at 1 txn; only Chiller's
//! throughput rises with concurrency (saturating ≈4, CPU-bound); 2PL and
//! OCC abort rates climb steeply (OCC worst); under 2PL the Payment abort
//! rate approaches 100% by ≈4 concurrent transactions (warehouse exclusive
//! lock starvation).

use chiller::cluster::RunSpec;
use chiller::experiment::sweep;
use chiller::prelude::*;
use chiller_bench::{ktps, print_table, ratio};
use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};

const WAREHOUSES: u64 = 8;
const PROTOCOLS: [Protocol; 3] = [Protocol::TwoPhaseLocking, Protocol::Occ, Protocol::Chiller];

fn main() {
    let cfg = TpccConfig::with_warehouses(WAREHOUSES);
    let points: Vec<(usize, Protocol)> = (1..=8usize)
        .flat_map(|c| PROTOCOLS.into_iter().map(move |p| (c, p)))
        .collect();
    let cfg2 = cfg.clone();
    let results = sweep(points.clone(), move |(conc, protocol)| {
        let mut sim = SimConfig::default();
        sim.engine.concurrency = conc;
        sim.seed = 0xF19;
        let mut cluster = build_tpcc_cluster(&cfg2, TpccMix::default(), protocol, sim);
        let report = cluster.run(RunSpec::millis(2, 25));
        (
            report.throughput(),
            report.abort_rate(),
            report.abort_rate_of("NewOrder"),
            report.abort_rate_of("Payment"),
            report.abort_rate_of("StockLevel"),
        )
    });
    let get =
        |c: usize, p: Protocol| &results[points.iter().position(|x| *x == (c, p)).expect("point")];

    // 9a: throughput.
    let rows: Vec<Vec<String>> = (1..=8usize)
        .map(|c| {
            vec![
                c.to_string(),
                ktps(get(c, Protocol::TwoPhaseLocking).0),
                ktps(get(c, Protocol::Occ).0),
                ktps(get(c, Protocol::Chiller).0),
            ]
        })
        .collect();
    print_table(
        "Figure 9a: TPC-C throughput vs concurrent txns/warehouse (K txns/s)",
        &["concurrent", "2pl_ktps", "occ_ktps", "chiller_ktps"],
        &rows,
    );

    // 9b: abort rates.
    let rows: Vec<Vec<String>> = (1..=8usize)
        .map(|c| {
            vec![
                c.to_string(),
                ratio(get(c, Protocol::TwoPhaseLocking).1),
                ratio(get(c, Protocol::Occ).1),
                ratio(get(c, Protocol::Chiller).1),
            ]
        })
        .collect();
    print_table(
        "Figure 9b: TPC-C total abort rate",
        &["concurrent", "2pl", "occ", "chiller"],
        &rows,
    );

    // 9c: abort-rate breakdown for 2PL.
    let rows: Vec<Vec<String>> = (1..=8usize)
        .map(|c| {
            let r = get(c, Protocol::TwoPhaseLocking);
            vec![c.to_string(), ratio(r.2), ratio(r.3), ratio(r.4)]
        })
        .collect();
    print_table(
        "Figure 9c: 2PL abort rate by transaction type",
        &["concurrent", "new_order", "payment", "stock_level"],
        &rows,
    );

    // Shape commentary.
    let chiller_gain = get(4, Protocol::Chiller).0 / get(1, Protocol::Chiller).0;
    let two_pl_gain = get(4, Protocol::TwoPhaseLocking).0 / get(1, Protocol::TwoPhaseLocking).0;
    println!(
        "\nchiller 4-conc/1-conc throughput: {chiller_gain:.2}x (paper: rises then saturates ≈4)"
    );
    println!("2pl     4-conc/1-conc throughput: {two_pl_gain:.2}x (paper: ≈flat/declining)");
    println!(
        "2pl Payment abort rate at 4 concurrent: {:.2} (paper: ≈1.0 — warehouse-lock starvation)",
        get(4, Protocol::TwoPhaseLocking).3
    );
}
