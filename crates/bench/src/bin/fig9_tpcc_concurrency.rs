//! **Figure 9 (a, b, c)**: standard full TPC-C mix, warehouse-partitioned
//! (same layout for all protocols), sweeping the number of concurrent
//! transactions per warehouse from 1 to 8:
//!
//! * 9a — throughput of 2PL vs OCC vs Chiller;
//! * 9b — total abort rate of the three;
//! * 9c — abort-rate breakdown by transaction type for 2PL
//!   (NewOrder / Payment / StockLevel).
//!
//! Expected shapes (paper): all protocols ≈equal at 1 txn; only Chiller's
//! throughput rises with concurrency (saturating ≈4, CPU-bound); 2PL and
//! OCC abort rates climb steeply (OCC worst); under 2PL the Payment abort
//! rate approaches 100% by ≈4 concurrent transactions (warehouse exclusive
//! lock starvation).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, ratio, Matrix};
use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};

const WAREHOUSES: u64 = 8;
const PROTOCOLS: [Protocol; 3] = [Protocol::TwoPhaseLocking, Protocol::Occ, Protocol::Chiller];

type Point = (f64, f64, f64, f64, f64);

fn main() {
    let cfg = TpccConfig::with_warehouses(WAREHOUSES);
    let m = Matrix::run(
        (1..=8usize).collect(),
        PROTOCOLS.to_vec(),
        move |&conc, &protocol| -> Point {
            let mut sim = SimConfig::default();
            sim.engine.concurrency = conc;
            sim.seed = 0xF19;
            let mut cluster = build_tpcc_cluster(&cfg, TpccMix::default(), protocol, sim);
            let report = cluster.run(RunSpec::millis(2, 25));
            (
                report.throughput(),
                report.abort_rate(),
                report.abort_rate_of("NewOrder"),
                report.abort_rate_of("Payment"),
                report.abort_rate_of("StockLevel"),
            )
        },
    );
    let get = |c: usize, p: Protocol| m.get(&c, &p);

    emit(
        "fig9a",
        "Figure 9a: TPC-C throughput vs concurrent txns/warehouse (K txns/s)",
        Backend::Simulated,
        &["concurrent", "2pl_ktps", "occ_ktps", "chiller_ktps"],
        &m.rows(|c| c.to_string(), &[&|r: &Point| ktps(r.0)]),
        &[
            (
                "chiller_4conc_over_1conc",
                format!(
                    "{:.2}x (paper: rises then saturates ≈4)",
                    get(4, Protocol::Chiller).0 / get(1, Protocol::Chiller).0
                ),
            ),
            (
                "2pl_4conc_over_1conc",
                format!(
                    "{:.2}x (paper: ≈flat/declining)",
                    get(4, Protocol::TwoPhaseLocking).0 / get(1, Protocol::TwoPhaseLocking).0
                ),
            ),
        ],
    );

    emit(
        "fig9b",
        "Figure 9b: TPC-C total abort rate",
        Backend::Simulated,
        &["concurrent", "2pl", "occ", "chiller"],
        &m.rows(|c| c.to_string(), &[&|r: &Point| ratio(r.1)]),
        &[],
    );

    // 9c: abort-rate breakdown for 2PL only — one series, per-type columns.
    let rows: Vec<Vec<String>> = m
        .xs()
        .iter()
        .map(|c| {
            let r = get(*c, Protocol::TwoPhaseLocking);
            vec![c.to_string(), ratio(r.2), ratio(r.3), ratio(r.4)]
        })
        .collect();
    emit(
        "fig9c",
        "Figure 9c: 2PL abort rate by transaction type",
        Backend::Simulated,
        &["concurrent", "new_order", "payment", "stock_level"],
        &rows,
        &[(
            "2pl_payment_abort_at_4conc",
            format!(
                "{:.2} (paper: ≈1.0 — warehouse-lock starvation)",
                get(4, Protocol::TwoPhaseLocking).3
            ),
        )],
    );
}
