//! **Adaptive recovery under a hotspot shift** (new experiment; not in the
//! paper, which freezes its §4 layout offline).
//!
//! A skewed YCSB workload runs with the Zipf head co-located on partition 0
//! — the layout the offline Chiller pipeline would produce. Mid-run, the
//! popularity head rotates to a different key range (a flash-sale /
//! trending-products shift): the frozen layout's lookup table and hot
//! flags go stale, so static Chiller loses its inner region and collapses
//! toward the 2PL baseline. With the online-adaptation loop enabled, the
//! contention monitors detect the new hot set within a few epochs, the
//! planner re-runs the §4 pipeline over live summaries, and the migration
//! protocol re-homes the new head — throughput recovers.
//!
//! Headline number: `adaptive_over_static_post_shift` (target ≥ 1.5×).
//!
//! Set `CHILLER_SMOKE=1` for a seconds-scale CI smoke run (tiny windows);
//! set `CHILLER_BENCH_JSON=<dir>` to write `BENCH_adaptive.json`.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, ratio, Matrix};
use chiller_workload::ycsb::{build_cluster, build_shifting_cluster, YcsbConfig};

#[derive(Clone, Copy, PartialEq)]
enum System {
    /// 2PL over hash placement: the floor static Chiller collapses toward.
    TwoPl,
    /// Chiller with the frozen pre-shift layout (the paper's deployment).
    StaticChiller,
    /// Chiller with the epoch-driven feedback loop and live migration.
    AdaptiveChiller,
}

struct Phases {
    warmup: Duration,
    pre: Duration,
    post: Duration,
}

fn phases(smoke: bool) -> Phases {
    if smoke {
        Phases {
            warmup: Duration::from_millis(1),
            pre: Duration::from_millis(3),
            post: Duration::from_millis(6),
        }
    } else {
        Phases {
            warmup: Duration::from_millis(2),
            pre: Duration::from_millis(15),
            post: Duration::from_millis(30),
        }
    }
}

/// (pre ktps, post ktps, pre abort, post abort, migrations in post phase)
type Point = (f64, f64, f64, f64, u64);

fn run_point(smoke: bool, system: System) -> Point {
    let cfg = YcsbConfig {
        records: if smoke { 8_000 } else { 20_000 },
        ops_per_txn: 4,
        read_fraction: 0.2,
        theta: 1.25,
    };
    let nodes = 4;
    let hot_lookup = 24;
    let rotate = cfg.records / 2;
    let ph = phases(smoke);
    let shift_at = SimTime::ZERO + ph.warmup + ph.pre;

    let mut sim = SimConfig::default();
    sim.engine.concurrency = 8;
    sim.seed = 0xAD4;

    let adaptive = AdaptiveConfig {
        epoch: Duration::from_millis(if smoke { 1 } else { 2 }),
        sample_every: 2,
        window_epochs: 2,
        min_window_txns: if smoke { 100 } else { 400 },
        ..AdaptiveConfig::default()
    };
    let mut cluster = match system {
        System::TwoPl => build_cluster(&cfg, nodes, 0, Protocol::TwoPhaseLocking, sim),
        System::StaticChiller => build_shifting_cluster(
            &cfg,
            nodes,
            hot_lookup,
            Protocol::Chiller,
            sim,
            shift_at,
            rotate,
            None,
        ),
        System::AdaptiveChiller => build_shifting_cluster(
            &cfg,
            nodes,
            hot_lookup,
            Protocol::Chiller,
            sim,
            shift_at,
            rotate,
            Some(adaptive),
        ),
    };
    // 2PL reference: same shifting source but placement is hash everywhere,
    // so the shift is throughput-neutral; build_cluster's plain source is
    // statistically identical. Measure the two phases separately.
    let pre = cluster.run(RunSpec::new(ph.warmup, ph.pre));
    cluster.reset_metrics();
    let post = cluster.run_more(ph.post);
    (
        pre.throughput(),
        post.throughput(),
        pre.abort_rate(),
        post.abort_rate(),
        post.migrations_completed(),
    )
}

fn main() {
    let smoke = std::env::var("CHILLER_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let systems = vec![
        System::TwoPl,
        System::StaticChiller,
        System::AdaptiveChiller,
    ];
    let m = Matrix::run(vec![()], systems, move |&(), &system| {
        run_point(smoke, system)
    });
    let name = |s: System| match s {
        System::TwoPl => "2pl+hash",
        System::StaticChiller => "chiller-static",
        System::AdaptiveChiller => "chiller-adaptive",
    };

    let rows: Vec<Vec<String>> = m
        .series()
        .iter()
        .map(|&s| {
            let r = m.get(&(), &s);
            vec![
                name(s).to_string(),
                ktps(r.0),
                ktps(r.1),
                ratio(r.2),
                ratio(r.3),
                r.4.to_string(),
            ]
        })
        .collect();

    let static_post = m.get(&(), &System::StaticChiller).1;
    let adaptive_post = m.get(&(), &System::AdaptiveChiller).1;
    let two_pl_post = m.get(&(), &System::TwoPl).1;
    let recovery = adaptive_post / static_post;
    let derived = vec![
        (
            "adaptive_over_static_post_shift",
            format!("{recovery:.2}x (target: >=1.5x)"),
        ),
        (
            "static_over_2pl_post_shift",
            format!(
                "{:.2}x (static Chiller collapses toward the 2PL floor)",
                static_post / two_pl_post
            ),
        ),
        (
            "adaptive_migrations_post_shift",
            m.get(&(), &System::AdaptiveChiller).4.to_string(),
        ),
    ];
    emit(
        "adaptive",
        "Adaptive recovery: throughput before/after a mid-run hotspot shift (K txns/s)",
        Backend::Simulated,
        &[
            "system",
            "pre_ktps",
            "post_ktps",
            "pre_abort",
            "post_abort",
            "migrations",
        ],
        &rows,
        &derived,
    );
    assert!(
        m.get(&(), &System::AdaptiveChiller).4 > 0,
        "adaptive run must complete migrations after the shift"
    );
    if !smoke {
        assert!(
            recovery >= 1.5,
            "adaptive-Chiller must recover >=1.5x static-Chiller on the shifted phase \
             (got {recovery:.2}x)"
        );
    }
}
