//! **Ablation: re-ordering alone vs re-ordering + contention-aware
//! partitioning.** The paper's introduction argues that "re-ordering
//! operations without re-considering the partitioning scheme only leads to
//! limited performance improvements; the challenge lies in optimizing both
//! at the same time."
//!
//! Three configurations on the transfer workload with a co-written hot set:
//! 1. 2PL over hash placement (no re-ordering, no contention layout);
//! 2. Chiller execution over hash placement (re-ordering alone: hot records
//!    land on arbitrary partitions, so many transactions find no legal
//!    single inner host);
//! 3. Chiller execution over the contention-aware layout (hot set
//!    co-located): the full system.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, ratio};
use chiller_workload::transfer::{transfer_proc, TransferConfig, TransferSource};
use std::sync::Arc;

fn run(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    contention_aware: bool,
) -> (f64, f64) {
    let mut builder = ClusterBuilder::new(TransferConfig::schema(), nodes);
    let proc = builder.register_proc(transfer_proc());
    let placement: Arc<dyn Placement + Send + Sync> = if contention_aware {
        Arc::new(cfg.chiller_placement(nodes as u32))
    } else {
        Arc::new(HashPlacement::new(nodes as u32))
    };
    let mut sim = SimConfig::default();
    sim.engine.concurrency = 6;
    sim.seed = 0xAB2;
    builder
        .protocol(protocol)
        .config(sim)
        .placement(placement)
        .hot_records(cfg.hot_records())
        .load(cfg.initial_records());
    let cfg2 = cfg.clone();
    builder.source_per_node(move |_| Box::new(TransferSource::new(cfg2.clone(), proc)));
    let mut cluster = builder.build().expect("valid cluster");
    let report = cluster.run(RunSpec::millis(2, 20));
    (report.throughput(), report.abort_rate())
}

fn main() {
    let cfg = TransferConfig {
        accounts: 4_000,
        hot_set: 12,
        hot_fraction: 0.5,
    };
    let nodes = 6;
    let baseline = run(&cfg, nodes, Protocol::TwoPhaseLocking, false);
    let reorder_only = run(&cfg, nodes, Protocol::Chiller, false);
    let full = run(&cfg, nodes, Protocol::Chiller, true);

    let rows = vec![
        vec![
            "2PL + hash (baseline)".to_string(),
            ktps(baseline.0),
            ratio(baseline.1),
            "1.00x".to_string(),
        ],
        vec![
            "two-region + hash (re-ordering alone)".to_string(),
            ktps(reorder_only.0),
            ratio(reorder_only.1),
            format!("{:.2}x", reorder_only.0 / baseline.0),
        ],
        vec![
            "two-region + contention-aware layout (full)".to_string(),
            ktps(full.0),
            ratio(full.1),
            format!("{:.2}x", full.0 / baseline.0),
        ],
    ];
    emit(
        "ablation_reorder",
        "Ablation: re-ordering alone vs the full co-design (transfer workload)",
        Backend::Simulated,
        &["configuration", "ktps", "abort", "vs baseline"],
        &rows,
        &[(
            "note",
            "re-ordering alone helps only when a transaction's hot records happen \
             to share a partition; execution and partitioning must be co-designed — \
             the full configuration should clearly dominate both others"
                .to_string(),
        )],
    );
}
