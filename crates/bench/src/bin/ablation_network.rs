//! **Ablation: network class.** The paper's premise (§2) is that
//! contention-centric partitioning targets *fast* (RDMA-class) networks —
//! on a slow TCP-like network, message cost dominates and minimizing
//! distributed transactions is still the right objective.
//!
//! This ablation runs the TPC-C mix under Chiller and 2PL on both network
//! classes. Expectation: on the fast network Chiller wins decisively at
//! high concurrency (contention-bound regime); on the slow network the gap
//! narrows or inverts relative to the local-transaction share, because
//! every inner-region delegation costs a full slow round trip.

use chiller::cluster::RunSpec;
use chiller::experiment::sweep;
use chiller::prelude::*;
use chiller_bench::{ktps, print_table, ratio};
use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};

fn main() {
    let cfg = TpccConfig::with_warehouses(8);
    let points: Vec<(bool, Protocol)> = [true, false]
        .into_iter()
        .flat_map(|fast| {
            [Protocol::TwoPhaseLocking, Protocol::Chiller]
                .into_iter()
                .map(move |p| (fast, p))
        })
        .collect();
    let cfg2 = cfg.clone();
    let results = sweep(points.clone(), move |(fast, protocol)| {
        let mut sim = SimConfig {
            network: if fast {
                NetworkConfig::default()
            } else {
                NetworkConfig::slow_tcp()
            },
            ..SimConfig::default()
        };
        sim.engine.concurrency = 4;
        sim.seed = 0xAB1;
        let mut cluster = build_tpcc_cluster(&cfg2, TpccMix::default(), protocol, sim);
        let report = cluster.run(RunSpec::millis(2, 25));
        (report.throughput(), report.abort_rate())
    });
    let get = |fast: bool, p: Protocol| {
        &results[points.iter().position(|x| *x == (fast, p)).expect("point")]
    };

    let rows = vec![
        vec![
            "fast (RDMA-class)".to_string(),
            ktps(get(true, Protocol::TwoPhaseLocking).0),
            ktps(get(true, Protocol::Chiller).0),
            format!(
                "{:.2}x",
                get(true, Protocol::Chiller).0 / get(true, Protocol::TwoPhaseLocking).0
            ),
            ratio(get(true, Protocol::TwoPhaseLocking).1),
            ratio(get(true, Protocol::Chiller).1),
        ],
        vec![
            "slow (TCP-class)".to_string(),
            ktps(get(false, Protocol::TwoPhaseLocking).0),
            ktps(get(false, Protocol::Chiller).0),
            format!(
                "{:.2}x",
                get(false, Protocol::Chiller).0 / get(false, Protocol::TwoPhaseLocking).0
            ),
            ratio(get(false, Protocol::TwoPhaseLocking).1),
            ratio(get(false, Protocol::Chiller).1),
        ],
    ];
    print_table(
        "Ablation: network class (TPC-C, 4 concurrent/warehouse)",
        &[
            "network",
            "2pl_ktps",
            "chiller_ktps",
            "speedup",
            "2pl_abort",
            "chiller_abort",
        ],
        &rows,
    );
    println!("\nOn the slow network, message delay dominates both protocols and the");
    println!("contention-span advantage shrinks in relative terms — the §2 premise.");
}
