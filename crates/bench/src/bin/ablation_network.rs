//! **Ablation: network class.** The paper's premise (§2) is that
//! contention-centric partitioning targets *fast* (RDMA-class) networks —
//! on a slow TCP-like network, message cost dominates and minimizing
//! distributed transactions is still the right objective.
//!
//! This ablation runs the TPC-C mix under Chiller and 2PL on both network
//! classes. Expectation: on the fast network Chiller wins decisively at
//! high concurrency (contention-bound regime); on the slow network the gap
//! narrows or inverts relative to the local-transaction share, because
//! every inner-region delegation costs a full slow round trip.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, ratio, Matrix};
use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};

fn main() {
    let cfg = TpccConfig::with_warehouses(8);
    let m = Matrix::run(
        vec![true, false],
        vec![Protocol::TwoPhaseLocking, Protocol::Chiller],
        move |&fast, &protocol| {
            let mut sim = SimConfig {
                network: if fast {
                    NetworkConfig::default()
                } else {
                    NetworkConfig::slow_tcp()
                },
                ..SimConfig::default()
            };
            sim.engine.concurrency = 4;
            sim.seed = 0xAB1;
            let mut cluster = build_tpcc_cluster(&cfg, TpccMix::default(), protocol, sim);
            let report = cluster.run(RunSpec::millis(2, 25));
            (report.throughput(), report.abort_rate())
        },
    );

    let rows: Vec<Vec<String>> = m
        .xs()
        .iter()
        .map(|&fast| {
            let two_pl = m.get(&fast, &Protocol::TwoPhaseLocking);
            let chiller = m.get(&fast, &Protocol::Chiller);
            vec![
                if fast {
                    "fast (RDMA-class)".to_string()
                } else {
                    "slow (TCP-class)".to_string()
                },
                ktps(two_pl.0),
                ktps(chiller.0),
                format!("{:.2}x", chiller.0 / two_pl.0),
                ratio(two_pl.1),
                ratio(chiller.1),
            ]
        })
        .collect();
    emit(
        "ablation_network",
        "Ablation: network class (TPC-C, 4 concurrent/warehouse)",
        Backend::Simulated,
        &[
            "network",
            "2pl_ktps",
            "chiller_ktps",
            "speedup",
            "2pl_abort",
            "chiller_abort",
        ],
        &rows,
        &[(
            "note",
            "on the slow network, message delay dominates both protocols and the \
             contention-span advantage shrinks in relative terms — the §2 premise"
                .to_string(),
        )],
    );
}
