//! **Threaded throughput**: real wall-clock transactions per second, per
//! protocol, on the multi-threaded backend — one OS thread per engine,
//! lock-free ring (or channel) mailboxes, no modelled latencies.
//!
//! This is the repo's hardware-measurement path: the simulator numbers in
//! the other experiments are *virtual* throughput under the paper's
//! RDMA cost model; this binary reports what the host actually sustains
//! running the same engines, protocols and contended transfer workload.
//! Both numbers are printed side by side so the sim-as-oracle /
//! threads-as-benchmark split stays visible.
//!
//! Each protocol runs a full **A/B matrix** — mailbox implementation
//! (lock-free `ring` vs the `channel` fallback) × core pinning (`pinned`
//! vs `unpinned`) — with the median of several runs per point (the
//! DESIGN.md §10 methodology; single runs swing ±10% on shared hosts).
//! Every row also records the host parallelism the point detected, so
//! numbers taken on a 1-core container are never mistaken for multi-core
//! medians. The `pinned` column reports what *actually happened*
//! (`RunReport::pinned`): where `sched_setaffinity` is unavailable the
//! pinned rows honestly degrade to `no`.
//!
//! After each threaded run the cluster is drained and the serializability
//! invariants are enforced (balance conservation, no leaked locks, zero
//! replica divergence): a violation aborts the binary, so a passing run
//! *is* the stress certificate — for both mailbox implementations.
//!
//! Env knobs: `CHILLER_SMOKE=1` shrinks the windows and runs one
//! repetition for CI; `CHILLER_NODES=<n>` overrides the engine/thread
//! count (default 4, the paper-parity cluster size; minimum 4 — the
//! acceptance bar for this bench is real parallelism, not a degenerate
//! 1–3 thread run); `CHILLER_RUNS=<n>` overrides the repetitions per
//! matrix point (default 5).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, median_run, ratio};
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster_tuned, TransferConfig,
};

fn workload() -> TransferConfig {
    TransferConfig {
        accounts: 2_000,
        hot_set: 8,
        hot_fraction: 0.3,
    }
}

fn sim_config(concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed: 7,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

/// One matrix point's median outcome.
struct Point {
    mailbox: MailboxKind,
    /// Whether the pinned runs actually pinned (all-or-nothing per point).
    pinned: bool,
    threaded_tps: f64,
    /// (max − min) / median across the point's runs, as a percentage.
    spread_pct: f64,
    abort_rate: f64,
    commits: u64,
}

fn verify_invariants(cluster: &mut Cluster, cfg: &TransferConfig, label: &str) {
    cluster.quiesce();
    assert_serializability_invariants(cluster, cfg, label);
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    cfg: &TransferConfig,
    nodes: usize,
    concurrency: usize,
    protocol: Protocol,
    mailbox: MailboxKind,
    pin: PinPolicy,
    runs: usize,
    warm_ms: u64,
    measure_ms: u64,
) -> Point {
    // Keyed by wall tps, carrying (abort rate, commits): `median_run`
    // assembles the whole row from the median-throughput run so its
    // columns stay mutually consistent (commits / measure_ms must agree
    // with threaded_ktps).
    let mut samples: Vec<(f64, (f64, u64))> = Vec::with_capacity(runs);
    let mut pinned = pin == PinPolicy::Cores;
    for _ in 0..runs {
        let mut cluster = build_cluster_tuned(
            cfg,
            nodes,
            protocol,
            sim_config(concurrency),
            Backend::Threaded,
            Some(mailbox),
            Some(pin),
        );
        let report = cluster.run(RunSpec::millis(warm_ms, measure_ms));
        verify_invariants(
            &mut cluster,
            cfg,
            &format!("{protocol} ({mailbox} mailbox, pin {pin:?})"),
        );
        pinned &= report.pinned;
        samples.push((
            report.wall_throughput(),
            (report.abort_rate(), report.total_commits()),
        ));
    }
    let m = median_run(samples);
    let (abort_rate, commits) = m.payload;
    Point {
        mailbox,
        pinned,
        threaded_tps: m.median,
        spread_pct: m.spread_pct,
        abort_rate,
        commits,
    }
}

fn main() {
    let smoke = std::env::var("CHILLER_SMOKE").is_ok();
    let nodes: usize = std::env::var("CHILLER_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    assert!(nodes >= 4, "the threaded bench needs >= 4 engine threads");
    let runs: usize = std::env::var("CHILLER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    assert!(runs >= 1);
    let concurrency = 4;
    let (warm_ms, measure_ms) = if smoke { (30, 150) } else { (200, 1_000) };
    let cores = chiller_simnet::sizing::detected_parallelism();
    if cores < nodes {
        eprintln!(
            "WARNING: {nodes} engine threads on {cores} detected cores — these numbers measure \
             oversubscription, not per-thread scaling; lower CHILLER_NODES or use a bigger host"
        );
    }
    let cfg = workload();

    let matrix = [
        (MailboxKind::Ring, PinPolicy::Off),
        (MailboxKind::Ring, PinPolicy::Cores),
        (MailboxKind::Channel, PinPolicy::Off),
        (MailboxKind::Channel, PinPolicy::Cores),
    ];
    let protocols = [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ];
    let mut rows = Vec::new();
    let mut ring_vs_channel: Vec<(Protocol, f64, f64)> = Vec::new();
    for protocol in protocols {
        // Simulated reference once per protocol: virtual throughput under
        // the paper's cost model (short window — the model, not the host,
        // sets the rate).
        let mut sim = build_cluster_tuned(
            &cfg,
            nodes,
            protocol,
            sim_config(concurrency),
            Backend::Simulated,
            None,
            None,
        );
        let sim_tps = sim.run(RunSpec::millis(2, 20)).throughput();

        let mut best_ring = 0f64;
        let mut best_channel = 0f64;
        for (mailbox, pin) in matrix {
            let p = run_point(
                &cfg,
                nodes,
                concurrency,
                protocol,
                mailbox,
                pin,
                runs,
                warm_ms,
                measure_ms,
            );
            match p.mailbox {
                MailboxKind::Ring => best_ring = best_ring.max(p.threaded_tps),
                MailboxKind::Channel => best_channel = best_channel.max(p.threaded_tps),
            }
            rows.push(vec![
                protocol.to_string(),
                p.mailbox.to_string(),
                if p.pinned { "yes" } else { "no" }.to_string(),
                cores.to_string(),
                ktps(p.threaded_tps),
                format!("{:.1}", p.spread_pct),
                ktps(sim_tps),
                ratio(p.abort_rate),
                p.commits.to_string(),
            ]);
        }
        ring_vs_channel.push((protocol, best_ring, best_channel));
    }

    let (best_proto, best_ring, best_channel) = ring_vs_channel
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(p, r, c)| (*p, *r, *c))
        .expect("three protocols ran");
    emit(
        "threaded_throughput",
        "Wall-clock throughput A/B: mailbox (ring vs channel) x pinning, medians per point (K txns/s)",
        Backend::Threaded,
        &[
            "protocol",
            "mailbox",
            "pinned",
            "cores",
            "threaded_ktps",
            "spread_pct",
            "sim_ktps",
            "abort_rate",
            "commits",
        ],
        &rows,
        &[
            ("threads", nodes.to_string()),
            ("concurrency_per_engine", concurrency.to_string()),
            ("measure_ms", measure_ms.to_string()),
            ("runs_per_point", runs.to_string()),
            ("detected_parallelism", cores.to_string()),
            (
                "variance_note",
                format!(
                    "threaded_ktps is the median of {runs} runs; spread_pct = (max-min)/median \
                     per point — single runs on shared hosts swing ~10%"
                ),
            ),
            (
                "best_ring_vs_channel",
                format!(
                    "{best_proto}: ring {} vs channel {} Ktps",
                    ktps(best_ring),
                    ktps(best_channel)
                ),
            ),
        ],
    );
    println!("invariants: balance conserved, no leaked locks, zero replica divergence (all matrix points)");
}
