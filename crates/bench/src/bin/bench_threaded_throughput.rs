//! **Threaded throughput**: real wall-clock transactions per second, per
//! protocol, on the multi-threaded backend — one OS thread per engine,
//! bounded mailboxes, no modelled latencies.
//!
//! This is the repo's hardware-measurement path: the simulator numbers in
//! the other experiments are *virtual* throughput under the paper's
//! RDMA cost model; this binary reports what the host actually sustains
//! running the same engines, protocols and contended transfer workload.
//! Both numbers are printed side by side so the sim-as-oracle /
//! threads-as-benchmark split stays visible.
//!
//! After each threaded run the cluster is drained and the serializability
//! invariants are enforced (balance conservation, no leaked locks, zero
//! replica divergence): a violation aborts the binary, so a passing run
//! *is* the stress certificate.
//!
//! Env knobs: `CHILLER_SMOKE=1` shrinks the windows for CI;
//! `CHILLER_NODES=<n>` overrides the engine/thread count (default 4,
//! the paper-parity cluster size; minimum 4 — the acceptance bar for
//! this bench is real parallelism, not a degenerate 1–3 thread run).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, ratio};
use chiller_workload::transfer::{
    assert_serializability_invariants, build_cluster_on, TransferConfig,
};

fn workload() -> TransferConfig {
    TransferConfig {
        accounts: 2_000,
        hot_set: 8,
        hot_fraction: 0.3,
    }
}

fn sim_config(concurrency: usize) -> SimConfig {
    let mut sim = SimConfig {
        seed: 7,
        ..SimConfig::default()
    };
    sim.engine.concurrency = concurrency;
    sim
}

struct Point {
    threaded_tps: f64,
    sim_tps: f64,
    abort_rate: f64,
    commits: u64,
}

fn verify_invariants(cluster: &mut Cluster, cfg: &TransferConfig, protocol: Protocol) {
    cluster.quiesce();
    assert_serializability_invariants(cluster, cfg, &protocol.to_string());
}

fn main() {
    let smoke = std::env::var("CHILLER_SMOKE").is_ok();
    let nodes: usize = std::env::var("CHILLER_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    assert!(nodes >= 4, "the threaded bench needs >= 4 engine threads");
    let concurrency = 4;
    let (warm_ms, measure_ms) = if smoke { (30, 150) } else { (200, 1_000) };
    let cfg = workload();

    let protocols = [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ];
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for protocol in protocols {
        // Real threads: wall-clock window, invariants enforced at drain.
        let mut threaded = build_cluster_on(
            &cfg,
            nodes,
            protocol,
            sim_config(concurrency),
            Backend::Threaded,
        );
        let t_report = threaded.run(RunSpec::millis(warm_ms, measure_ms));
        verify_invariants(&mut threaded, &cfg, protocol);

        // Same cluster on the simulator: virtual throughput for reference
        // (short window — the cost model, not the host, sets the rate).
        let mut sim = build_cluster_on(
            &cfg,
            nodes,
            protocol,
            sim_config(concurrency),
            Backend::Simulated,
        );
        let s_report = sim.run(RunSpec::millis(2, 20));

        let p = Point {
            threaded_tps: t_report.wall_throughput(),
            sim_tps: s_report.throughput(),
            abort_rate: t_report.abort_rate(),
            commits: t_report.total_commits(),
        };
        rows.push(vec![
            protocol.to_string(),
            ktps(p.threaded_tps),
            ktps(p.sim_tps),
            ratio(p.abort_rate),
            p.commits.to_string(),
        ]);
        points.push((protocol, p));
    }

    let best = points
        .iter()
        .max_by(|a, b| a.1.threaded_tps.total_cmp(&b.1.threaded_tps))
        .expect("three protocols ran");
    emit(
        "threaded_throughput",
        "Wall-clock throughput: threaded backend vs simulated reference (K txns/s)",
        Backend::Threaded,
        &[
            "protocol",
            "threaded_ktps",
            "sim_ktps",
            "abort_rate",
            "commits",
        ],
        &rows,
        &[
            ("threads", nodes.to_string()),
            ("concurrency_per_engine", concurrency.to_string()),
            ("measure_ms", measure_ms.to_string()),
            (
                "best_threaded",
                format!("{} at {} Ktps", best.0, ktps(best.1.threaded_tps)),
            ),
        ],
    );
    println!("invariants: balance conserved, no leaked locks, zero replica divergence");
}
