//! **Figure 9, hardware companion**: the same full-mix TPC-C cluster as
//! `fig9_tpcc_concurrency` — one warehouse per engine, warehouse
//! partitioning, standard mix — but executed on `Backend::Threaded`:
//! one OS thread per warehouse, bounded mailboxes, no modelled
//! latencies. Where the simulated Figure 9 reports *virtual* throughput
//! under the paper's RDMA cost model, this binary reports the wall-clock
//! transactions per second the host actually sustains while sweeping the
//! number of concurrent transactions per warehouse.
//!
//! Points run **sequentially** (never through the parallel sweep
//! helper): each point needs the machine to itself or the wall-clock
//! numbers are garbage.
//!
//! After every run the cluster is drained and the TPC-C serializability
//! invariants are enforced (payment-ledger conservation across the
//! warehouse/district/customer YTD columns, order-id integrity against
//! the district counters, the NEW_ORDER delivery window, leaked locks,
//! zombie transactions, replica divergence) — a violation aborts the
//! binary, so a passing table *is* the stress certificate for the run
//! that produced it.
//!
//! Env knobs: `CHILLER_SMOKE=1` shrinks windows and the sweep for CI;
//! `CHILLER_NODES=<n>` overrides the warehouse/thread count (default 4,
//! matching `bench_threaded_throughput`; minimum 4 for real parallelism).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, ratio};
use chiller_workload::tpcc::{assert_tpcc_invariants, build_tpcc_cluster_on, TpccConfig, TpccMix};

const PROTOCOLS: [Protocol; 3] = [Protocol::TwoPhaseLocking, Protocol::Occ, Protocol::Chiller];

fn main() {
    let smoke = std::env::var("CHILLER_SMOKE").is_ok();
    let warehouses: u64 = std::env::var("CHILLER_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    assert!(
        warehouses >= 4,
        "the threaded bench needs >= 4 engine threads"
    );
    let concurrency: Vec<usize> = if smoke { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let (warm_ms, measure_ms) = if smoke { (20, 100) } else { (100, 500) };
    let cfg = TpccConfig::with_warehouses(warehouses);

    let mut results: Vec<Vec<(f64, f64)>> = Vec::new(); // [conc][protocol] = (tps, abort)
    for &conc in &concurrency {
        let mut row = Vec::new();
        for protocol in PROTOCOLS {
            let mut sim = SimConfig::default();
            sim.engine.concurrency = conc;
            sim.seed = 0xF19;
            let mut cluster =
                build_tpcc_cluster_on(&cfg, TpccMix::default(), protocol, sim, Backend::Threaded);
            let report = cluster.run(RunSpec::millis(warm_ms, measure_ms));
            cluster.quiesce();
            assert_tpcc_invariants(
                &cluster,
                &cfg,
                &format!("{protocol} conc={conc} (threaded)"),
            );
            row.push((report.wall_throughput(), report.abort_rate()));
        }
        results.push(row);
    }

    let rows: Vec<Vec<String>> = concurrency
        .iter()
        .zip(&results)
        .map(|(conc, row)| {
            let mut cells = vec![conc.to_string()];
            cells.extend(row.iter().map(|(tps, _)| ktps(*tps)));
            cells.extend(row.iter().map(|(_, abort)| ratio(*abort)));
            cells
        })
        .collect();

    let of = |conc: usize, p: usize| {
        results[concurrency.iter().position(|&c| c == conc).expect("swept")][p]
    };
    let top_conc = *concurrency.last().expect("non-empty sweep");
    emit(
        "fig9_tpcc_threaded",
        "Figure 9 hardware companion: TPC-C wall-clock throughput vs concurrent txns/warehouse (K txns/s)",
        Backend::Threaded,
        &[
            "concurrent",
            "2pl_ktps",
            "occ_ktps",
            "chiller_ktps",
            "2pl_abort",
            "occ_abort",
            "chiller_abort",
        ],
        &rows,
        &[
            ("threads", warehouses.to_string()),
            ("measure_ms", measure_ms.to_string()),
            (
                "chiller_over_2pl_at_top_concurrency",
                format!("{:.2}x", of(top_conc, 2).0 / of(top_conc, 0).0),
            ),
            (
                "chiller_scaling",
                format!(
                    "{:.2}x from 1 to {top_conc} concurrent (paper 9a: rises then saturates)",
                    of(top_conc, 2).0 / of(1, 2).0
                ),
            ),
        ],
    );
    println!(
        "invariants: payment ledgers conserved, order ids intact, delivery window \
         consistent, no leaked locks, zero replica divergence"
    );
}
