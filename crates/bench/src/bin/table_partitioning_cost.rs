//! **§4.4 partitioning cost**: wall-clock time to build the workload graph
//! and partition it, Schism's clique representation vs Chiller's star
//! representation. The paper reports Schism up to ≈5× slower because the
//! clique graph has `n(n-1)/2` edges per transaction vs Chiller's `n`.
//!
//! (This one measures real host time, not virtual time — it benchmarks the
//! partitioners themselves.)

use chiller::prelude::Backend;
use chiller_bench::emit;
use chiller_partition::{ChillerPartitioner, ContentionModel, SchismPartitioner};
use chiller_workload::instacart::{self, InstacartConfig};
use std::time::Instant;

fn main() {
    let cfg = InstacartConfig::default();
    let mut rows = Vec::new();
    for txns in [2_000usize, 4_000, 8_000] {
        let trace = instacart::trace(&cfg, txns, 2_000 * txns as u64);
        let model = ContentionModel::new(30_000.0, trace.window_ns as f64);

        let t0 = Instant::now();
        let chiller = ChillerPartitioner::new(8, model).partition(&trace);
        let chiller_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let schism = SchismPartitioner::new(8).partition(&trace);
        let schism_ms = t0.elapsed().as_secs_f64() * 1e3;

        rows.push(vec![
            txns.to_string(),
            format!("{}", chiller.graph_edges),
            format!("{}", schism.graph_edges),
            format!("{chiller_ms:.0}"),
            format!("{schism_ms:.0}"),
            format!("{:.1}", schism_ms / chiller_ms),
        ]);
    }
    emit(
        "table_partitioning_cost",
        "Partitioning cost: graph build + partition (paper: Schism up to ≈5x slower)",
        Backend::Simulated,
        &[
            "trace_txns",
            "chiller_edges",
            "schism_edges",
            "chiller_ms",
            "schism_ms",
            "schism/chiller",
        ],
        &rows,
        &[],
    );
}
