//! **WAL / group-commit cost**: what durability charges the commit path,
//! and what fsync batching buys back — per protocol, on the threaded
//! backend (real files, real fsyncs, wall-clock time).
//!
//! Three durability modes per protocol on the contended SmallBank mix:
//!
//! * `off`      — no WAL anywhere: the shipping default, and the
//!   baseline. Logging off must be a branch on a `None`, nothing more.
//! * `fsync1`   — WAL on, fsync after **every** commit mark: the naive
//!   write-ahead discipline, priced honestly.
//! * `group64`  — WAL on, group commit at the default batch (64 commit
//!   marks per fsync) plus the batch-boundary flush: what the engine
//!   actually ships.
//!
//! Runs are interleaved across modes (A, B, C, A, B, C, …) so host drift
//! lands on every mode equally; each point is the median of its runs
//! with (max−min)/median spread (DESIGN.md §10). Every durable run gets
//! a **fresh** log directory — recovery is a different bench — and every
//! run must still pass SmallBank's conservation invariant, so the bench
//! cannot quietly trade correctness for speed. The fsync counts come
//! from the run's own telemetry (`wal_fsyncs`), making the amortization
//! claim auditable: `fsync1` fsyncs ≈ commit marks, `group64` fsyncs ≈
//! marks / 64.
//!
//! Env knobs: `CHILLER_SMOKE=1` shrinks windows and runs one repetition;
//! `CHILLER_NODES=<n>` engine threads (default 4); `CHILLER_RUNS=<n>`
//! repetitions per point (default 5); `CHILLER_BENCH_JSON=<dir>` writes
//! `BENCH_wal_group_commit.json`. `CHILLER_WAL` must be **unset** — the
//! bench owns durability per mode and refuses an ambient override.

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, median_run};
use chiller_workload::smallbank::{
    assert_smallbank_invariants, build_cluster_durable, SmallBankConfig,
};
use std::path::PathBuf;

fn workload() -> SmallBankConfig {
    SmallBankConfig {
        accounts: 400,
        hot_accounts: 8,
        hot_fraction: 0.4,
    }
}

fn sim_config() -> SimConfig {
    let mut sim = SimConfig {
        seed: 23,
        ..SimConfig::default()
    };
    sim.engine.concurrency = 4;
    sim
}

/// Fresh scratch log directory for one durable run.
fn fresh_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chiller-bench-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench WAL dir");
    dir
}

struct Sample {
    tps: f64,
    commits: u64,
    fsyncs: u64,
    wal_mib: f64,
}

/// Keyed for `median_run`: throughput, carrying (commits, fsyncs, MiB).
type KeyedSample = (f64, (u64, u64, f64));

fn run_once(
    protocol: Protocol,
    nodes: usize,
    fsync_batch: Option<u64>,
    measure_ms: u64,
    tag: u64,
) -> Sample {
    let dir = fsync_batch.map(|_| fresh_dir(tag));
    if let Some(batch) = fsync_batch {
        std::env::set_var("CHILLER_FSYNC_BATCH", batch.to_string());
    }
    let cfg = workload();
    let mut cluster = build_cluster_durable(
        &cfg,
        nodes,
        protocol,
        sim_config(),
        Backend::Threaded,
        None,
        None,
        dir.as_deref(),
    );
    // Zero warm-up: the conservation invariant audits *all* commits, so
    // nothing may be discarded. All modes are equally unwarmed.
    let report = cluster.run(RunSpec::millis(0, measure_ms));
    cluster.quiesce();
    assert_smallbank_invariants(&cluster, &cfg, &format!("{protocol} wal bench"));
    std::env::remove_var("CHILLER_FSYNC_BATCH");
    if let Some(d) = &dir {
        let _ = std::fs::remove_dir_all(d);
    }
    Sample {
        tps: report.wall_throughput(),
        commits: report.total_commits(),
        fsyncs: report.telemetry.wal_fsyncs,
        wal_mib: report.telemetry.wal_bytes_appended as f64 / (1024.0 * 1024.0),
    }
}

fn main() {
    assert!(
        std::env::var("CHILLER_WAL").is_err(),
        "unset CHILLER_WAL: this bench controls durability per mode"
    );
    let smoke = std::env::var("CHILLER_SMOKE").is_ok();
    let nodes: usize = std::env::var("CHILLER_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let runs: usize = std::env::var("CHILLER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    assert!(runs >= 1);
    let measure_ms = if smoke { 150 } else { 1_000 };
    let cores = chiller_simnet::sizing::detected_parallelism();
    if cores < nodes {
        eprintln!(
            "WARNING: {nodes} engine threads on {cores} detected cores — durability overheads \
             will be inflated by scheduling noise"
        );
    }

    let modes: [(&str, Option<u64>); 3] =
        [("off", None), ("fsync1", Some(1)), ("group64", Some(64))];
    let protocols = [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ];

    let mut rows = Vec::new();
    let mut derived: Vec<(&str, String)> = Vec::new();
    let mut tag = 0u64;
    for protocol in protocols {
        let mut samples: Vec<Vec<KeyedSample>> = vec![Vec::new(); modes.len()];
        for _ in 0..runs {
            for (i, (_, batch)) in modes.iter().enumerate() {
                tag += 1;
                let s = run_once(protocol, nodes, *batch, measure_ms, tag);
                samples[i].push((s.tps, (s.commits, s.fsyncs, s.wal_mib)));
            }
        }
        let medians: Vec<_> = samples.into_iter().map(median_run).collect();
        let off_tps = medians[0].median;
        for ((label, _), m) in modes.iter().zip(&medians) {
            let (commits, fsyncs, wal_mib) = m.payload;
            let overhead_pct = if off_tps > 0.0 {
                (off_tps - m.median) / off_tps * 100.0
            } else {
                0.0
            };
            rows.push(vec![
                protocol.to_string(),
                label.to_string(),
                ktps(m.median),
                format!("{:.1}", m.spread_pct),
                format!("{overhead_pct:.2}"),
                commits.to_string(),
                fsyncs.to_string(),
                format!("{wal_mib:.2}"),
            ]);
        }
        let (_, fsync1_syncs, _) = medians[1].payload;
        let (_, group_syncs, _) = medians[2].payload;
        let amortization = if group_syncs > 0 {
            fsync1_syncs as f64 / group_syncs as f64
        } else {
            0.0
        };
        let group_overhead = if off_tps > 0.0 {
            (off_tps - medians[2].median) / off_tps * 100.0
        } else {
            0.0
        };
        let key_amort: &'static str = match protocol {
            Protocol::Chiller => "chiller_fsync_amortization_x",
            Protocol::TwoPhaseLocking => "2pl_fsync_amortization_x",
            _ => "occ_fsync_amortization_x",
        };
        let key_over: &'static str = match protocol {
            Protocol::Chiller => "chiller_group64_overhead_pct",
            Protocol::TwoPhaseLocking => "2pl_group64_overhead_pct",
            _ => "occ_group64_overhead_pct",
        };
        derived.push((key_amort, format!("{amortization:.1}")));
        derived.push((key_over, format!("{group_overhead:.2}")));
    }

    derived.push(("threads", nodes.to_string()));
    derived.push(("runs_per_point", runs.to_string()));
    derived.push(("measure_ms", measure_ms.to_string()));
    derived.push(("detected_parallelism", cores.to_string()));
    derived.push((
        "methodology",
        "interleaved repetitions, median per point; overhead_pct vs the same protocol's 'off' \
         median; fresh log dir per durable run; every run passes SmallBank conservation; fsync \
         counts from run telemetry"
            .to_string(),
    ));

    emit(
        "wal_group_commit",
        "WAL durability cost and group-commit amortization: off / fsync1 / group64 per protocol \
         (K txns/s, threaded backend)",
        Backend::Threaded,
        &[
            "protocol",
            "mode",
            "ktps",
            "spread_pct",
            "overhead_pct",
            "commits",
            "fsyncs",
            "wal_mib",
        ],
        &rows,
        &derived,
    );
}
