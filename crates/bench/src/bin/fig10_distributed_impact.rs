//! **Figure 10**: impact of the fraction of distributed transactions.
//! NewOrder + Payment 50/50 mix; the probability that a transaction is
//! distributed (remote items / remote customer) sweeps 0%..100%. Series:
//! 2PL and OCC at 1 and 5 concurrent txns/warehouse, Chiller at 5.
//!
//! Expected shape (paper): every baseline degrades steeply as the
//! distributed fraction rises (especially at 5 concurrent, where prolonged
//! locks compound conflicts); Chiller has the best absolute throughput and
//! degrades the least (<20% from 0% to 100% distributed).

use chiller::cluster::RunSpec;
use chiller::experiment::sweep;
use chiller::prelude::*;
use chiller_bench::{ktps, print_table};
use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};

const WAREHOUSES: u64 = 8;

fn main() {
    let cfg = TpccConfig::with_warehouses(WAREHOUSES);
    let series: Vec<(&str, Protocol, usize)> = vec![
        ("2pl(1)", Protocol::TwoPhaseLocking, 1),
        ("occ(1)", Protocol::Occ, 1),
        ("2pl(5)", Protocol::TwoPhaseLocking, 5),
        ("occ(5)", Protocol::Occ, 5),
        ("chiller(5)", Protocol::Chiller, 5),
    ];
    let fractions: Vec<u32> = vec![0, 20, 40, 60, 80, 100];
    let points: Vec<(usize, u32)> = (0..series.len())
        .flat_map(|s| fractions.iter().map(move |&f| (s, f)))
        .collect();
    let series2 = series.clone();
    let cfg2 = cfg.clone();
    let results = sweep(points.clone(), move |(s, frac)| {
        let (_, protocol, conc) = series2[s];
        let mut sim = SimConfig::default();
        sim.engine.concurrency = conc;
        sim.seed = 0xF10;
        let mix = TpccMix::payment_neworder(frac as f64 / 100.0);
        let mut cluster = build_tpcc_cluster(&cfg2, mix, protocol, sim);
        let report = cluster.run(RunSpec::millis(2, 25));
        report.throughput()
    });
    let get = |s: usize, f: u32| results[points.iter().position(|x| *x == (s, f)).expect("point")];

    let mut header = vec!["pct_distributed".to_string()];
    header.extend(series.iter().map(|(n, _, _)| n.to_string()));
    let rows: Vec<Vec<String>> = fractions
        .iter()
        .map(|&f| {
            let mut row = vec![f.to_string()];
            row.extend((0..series.len()).map(|s| ktps(get(s, f))));
            row
        })
        .collect();
    print_table(
        "Figure 10: throughput vs % distributed transactions (K txns/s)",
        &header,
        &rows,
    );

    let chiller = series.len() - 1;
    let degradation = 1.0 - get(chiller, 100) / get(chiller, 0);
    println!(
        "\nchiller degradation 0%→100% distributed: {:.1}% (paper: <20%)",
        degradation * 100.0
    );
    for (s, (name, _, _)) in series.iter().enumerate().take(chiller) {
        let deg = 1.0 - get(s, 100) / get(s, 0);
        println!("{name} degradation: {:.1}%", deg * 100.0);
    }
}
