//! **Figure 10**: impact of the fraction of distributed transactions.
//! NewOrder + Payment 50/50 mix; the probability that a transaction is
//! distributed (remote items / remote customer) sweeps 0%..100%. Series:
//! 2PL and OCC at 1 and 5 concurrent txns/warehouse, Chiller at 5.
//!
//! Expected shape (paper): every baseline degrades steeply as the
//! distributed fraction rises (especially at 5 concurrent, where prolonged
//! locks compound conflicts); Chiller has the best absolute throughput and
//! degrades the least (<20% from 0% to 100% distributed).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, Matrix};
use chiller_workload::tpcc::{build_tpcc_cluster, TpccConfig, TpccMix};

const WAREHOUSES: u64 = 8;

type Series = (&'static str, Protocol, usize);

fn main() {
    let cfg = TpccConfig::with_warehouses(WAREHOUSES);
    let series: Vec<Series> = vec![
        ("2pl(1)", Protocol::TwoPhaseLocking, 1),
        ("occ(1)", Protocol::Occ, 1),
        ("2pl(5)", Protocol::TwoPhaseLocking, 5),
        ("occ(5)", Protocol::Occ, 5),
        ("chiller(5)", Protocol::Chiller, 5),
    ];
    let m = Matrix::run(
        vec![0u32, 20, 40, 60, 80, 100],
        series.clone(),
        move |&frac, &(_, protocol, conc)| {
            let mut sim = SimConfig::default();
            sim.engine.concurrency = conc;
            sim.seed = 0xF10;
            let mix = TpccMix::payment_neworder(frac as f64 / 100.0);
            let mut cluster = build_tpcc_cluster(&cfg, mix, protocol, sim);
            let report = cluster.run(RunSpec::millis(2, 25));
            report.throughput()
        },
    );

    let mut header = vec!["pct_distributed"];
    header.extend(series.iter().map(|(n, _, _)| *n));
    let rows = m.rows(|f| f.to_string(), &[&|r: &f64| ktps(*r)]);

    let mut derived = Vec::new();
    for s @ (name, _, _) in &series {
        let deg = 1.0 - m.get(&100, s) / m.get(&0, s);
        let note = if *name == "chiller(5)" {
            " (paper: <20%)"
        } else {
            ""
        };
        derived.push((
            *name,
            format!("degradation 0%→100% distributed: {:.1}%{note}", deg * 100.0),
        ));
    }
    emit(
        "fig10",
        "Figure 10: throughput vs % distributed transactions (K txns/s)",
        Backend::Simulated,
        &header,
        &rows,
        &derived,
    );
}
