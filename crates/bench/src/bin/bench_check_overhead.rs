//! **Serializability-check overhead**: what history recording costs,
//! measured on the wall-clock backends (threaded + async pool) running
//! the contended transfer workload.
//!
//! The checker itself (`Cluster::check_history`) runs *after* the
//! measured window, so what this bench prices is the on-path cost:
//! per-read/per-write/per-commit events pushed into the per-engine SPSC
//! rings. Four points per backend:
//!
//! * `off`        — the shipping default: every recording site is a cold
//!   branch on a disabled [`CheckMode`]. This is the baseline.
//! * `off_check`  — the *same* configuration measured again. Its delta
//!   vs `off` is the host's noise floor; the acceptance bar ("checking
//!   off costs < 5%") is checked against this honest proxy, since the
//!   pre-instrumentation code path no longer exists to diff against.
//! * `window1024` — recording on, bounded sliding-window verification.
//! * `full`       — recording on, whole-history verification.
//!
//! Runs are **interleaved** (mode A, B, C, D, then A, B, C, D again …)
//! rather than batched per mode, so slow drift on a shared host lands on
//! every mode equally instead of biasing whichever mode ran last. Each
//! point reports the median of its runs (DESIGN.md §10 methodology).
//! Every checked run must also certify serializable — a violation on a
//! green workload fails the bench loudly.
//!
//! Env knobs: `CHILLER_SMOKE=1` shrinks the windows and runs one
//! repetition; `CHILLER_NODES=<n>` overrides the engine count (default
//! 4); `CHILLER_RUNS=<n>` overrides repetitions per point (default 5).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, median_run};
use chiller_workload::transfer::{build_cluster_checked, TransferConfig};

fn workload() -> TransferConfig {
    TransferConfig {
        accounts: 2_000,
        hot_set: 8,
        hot_fraction: 0.3,
    }
}

fn sim_config() -> SimConfig {
    let mut sim = SimConfig {
        seed: 7,
        ..SimConfig::default()
    };
    sim.engine.concurrency = 4;
    sim
}

/// One measured run: wall throughput plus the payload columns.
struct Sample {
    tps: f64,
    commits: u64,
    txns: usize,
    violations: usize,
    dropped: u64,
}

/// `median_run` sample: keyed by throughput, carrying (commits, checked
/// txns, violations, dropped) so the row columns all come from the
/// median run.
type KeyedSample = (f64, (u64, usize, usize, u64));

fn run_once(
    backend: Backend,
    nodes: usize,
    mode: CheckMode,
    warm_ms: u64,
    measure_ms: u64,
) -> Sample {
    let workers = if backend == Backend::Async {
        Some(2)
    } else {
        None
    };
    let mut cluster = build_cluster_checked(
        &workload(),
        nodes,
        Protocol::Chiller,
        sim_config(),
        backend,
        Some(MailboxKind::Ring),
        Some(PinPolicy::Off),
        workers,
        Some(TraceMode::Off),
        Some(mode),
    );
    let report = cluster.run(RunSpec::millis(warm_ms, measure_ms));
    cluster.quiesce();
    // Off-path by construction: verification happens after the measured
    // window and quiescence, against the drained history.
    let check = cluster.check_history();
    assert!(
        check.ok(),
        "serializability violations on a green run ({mode:?}): {}",
        check.summary()
    );
    Sample {
        tps: report.wall_throughput(),
        commits: report.total_commits(),
        txns: check.txns,
        violations: check.violations.len(),
        dropped: check.events_dropped,
    }
}

fn main() {
    let smoke = std::env::var("CHILLER_SMOKE").is_ok();
    let nodes: usize = std::env::var("CHILLER_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let runs: usize = std::env::var("CHILLER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    assert!(runs >= 1);
    let (warm_ms, measure_ms) = if smoke { (30, 150) } else { (200, 1_000) };

    let modes: [(&str, CheckMode); 4] = [
        ("off", CheckMode::Off),
        ("off_check", CheckMode::Off),
        ("window1024", CheckMode::Window(1024)),
        ("full", CheckMode::Full),
    ];

    let mut rows = Vec::new();
    let mut derived: Vec<(&str, String)> = Vec::new();
    let mut worst_off_noise = 0f64;
    for backend in [Backend::Threaded, Backend::Async] {
        // Interleaved sampling: one full sweep of all four modes per
        // repetition, so host drift cancels across modes.
        let mut samples: Vec<Vec<KeyedSample>> = vec![Vec::new(); modes.len()];
        for _ in 0..runs {
            for (i, (_, mode)) in modes.iter().enumerate() {
                let s = run_once(backend, nodes, *mode, warm_ms, measure_ms);
                samples[i].push((s.tps, (s.commits, s.txns, s.violations, s.dropped)));
            }
        }
        let medians: Vec<_> = samples.into_iter().map(median_run).collect();
        let off_tps = medians[0].median;
        for ((label, _), m) in modes.iter().zip(&medians) {
            let overhead_pct = if off_tps > 0.0 {
                (off_tps - m.median) / off_tps * 100.0
            } else {
                0.0
            };
            let (commits, txns, violations, dropped) = m.payload;
            rows.push(vec![
                backend.label().to_string(),
                label.to_string(),
                ktps(m.median),
                format!("{:.1}", m.spread_pct),
                format!("{overhead_pct:.2}"),
                commits.to_string(),
                txns.to_string(),
                violations.to_string(),
                dropped.to_string(),
            ]);
        }
        let noise = if off_tps > 0.0 {
            ((off_tps - medians[1].median) / off_tps * 100.0).abs()
        } else {
            0.0
        };
        worst_off_noise = worst_off_noise.max(noise);
        let full_overhead = if off_tps > 0.0 {
            (off_tps - medians[3].median) / off_tps * 100.0
        } else {
            0.0
        };
        let key_noise: &'static str = match backend {
            Backend::Threaded => "threaded_off_noise_pct",
            _ => "async_off_noise_pct",
        };
        let key_full: &'static str = match backend {
            Backend::Threaded => "threaded_full_overhead_pct",
            _ => "async_full_overhead_pct",
        };
        derived.push((key_noise, format!("{noise:.2}")));
        derived.push((key_full, format!("{full_overhead:.2}")));
    }

    derived.push(("runs_per_point", runs.to_string()));
    derived.push(("measure_ms", measure_ms.to_string()));
    derived.push((
        "off_path_verdict",
        format!(
            "{} — checking-off is a cold branch per recording site; off vs off_check delta \
             ({worst_off_noise:.2}%) bounds its cost within measurement noise (bar: < 5%)",
            if worst_off_noise < 5.0 {
                "PASS"
            } else {
                "CHECK"
            }
        ),
    ));
    derived.push((
        "methodology",
        "interleaved repetitions, median per point; overhead_pct is vs the same backend's 'off' \
         median; verification itself runs post-quiescence and is excluded by construction"
            .to_string(),
    ));

    emit(
        "check_overhead",
        "Serializability-check recording overhead: off / off_check / window1024 / full, medians per point (K txns/s)",
        Backend::Threaded,
        &[
            "backend",
            "check",
            "ktps",
            "spread_pct",
            "overhead_pct",
            "commits",
            "checked_txns",
            "violations",
            "dropped",
        ],
        &rows,
        &derived,
    );
    if worst_off_noise >= 5.0 {
        println!(
            "warning: off vs off_check delta {worst_off_noise:.2}% exceeds the 5% bar — noisy host, rerun with more CHILLER_RUNS"
        );
    }
}
