//! **SmallBank throughput**: the write-heavy banking mix per protocol on
//! the wall-clock threaded backend, certified by the serializability
//! checker.
//!
//! One row per protocol: median wall throughput over interleaved
//! repetitions, abort rate, the countable invariant's inputs (committed
//! deposits and checks), and the checker verdict from a windowed
//! verification of the recorded history. Chiller's two-region execution
//! should lead under this contention profile — the hot accounts are
//! co-located, so its inner region commits the contended writes
//! unilaterally while 2PL holds hot locks across 2PC and OCC burns
//! validation aborts.
//!
//! Env knobs: `CHILLER_SMOKE=1` shrinks the windows and runs one
//! repetition; `CHILLER_NODES=<n>` overrides the engine count (default
//! 4); `CHILLER_RUNS=<n>` overrides repetitions per point (default 5).

use chiller::cluster::RunSpec;
use chiller::prelude::*;
use chiller_bench::{emit, ktps, median_run};
use chiller_workload::smallbank::{build_cluster_checked, SmallBankConfig};

fn workload() -> SmallBankConfig {
    SmallBankConfig {
        accounts: 2_000,
        hot_accounts: 8,
        hot_fraction: 0.3,
    }
}

fn sim_config() -> SimConfig {
    let mut sim = SimConfig {
        seed: 7,
        ..SimConfig::default()
    };
    sim.engine.concurrency = 4;
    sim
}

/// One measured run: wall throughput plus the payload columns.
struct Sample {
    tps: f64,
    commits: u64,
    abort_rate: f64,
    deposits: u64,
    checks: u64,
    checked_txns: usize,
    violations: usize,
}

type Payload = (u64, f64, u64, u64, usize, usize);

fn run_once(protocol: Protocol, nodes: usize, warm_ms: u64, measure_ms: u64) -> Sample {
    let mut cluster = build_cluster_checked(
        &workload(),
        nodes,
        protocol,
        sim_config(),
        Backend::Threaded,
        Some(MailboxKind::Ring),
        Some(CheckMode::Window(1024)),
    );
    let report = cluster.run(RunSpec::millis(warm_ms, measure_ms));
    cluster.quiesce();
    let check = cluster.check_history();
    assert!(
        check.ok(),
        "{protocol}: serializability violations on a green run: {}",
        check.summary()
    );
    let per_type = |name: &str| report.metrics.per_type.get(name).map_or(0, |s| s.commits);
    Sample {
        tps: report.wall_throughput(),
        commits: report.total_commits(),
        abort_rate: report.abort_rate(),
        deposits: per_type("DepositChecking"),
        checks: per_type("WriteCheck"),
        checked_txns: check.txns,
        violations: check.violations.len(),
    }
}

fn main() {
    let smoke = std::env::var("CHILLER_SMOKE").is_ok();
    let nodes: usize = std::env::var("CHILLER_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let runs: usize = std::env::var("CHILLER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    assert!(runs >= 1);
    let (warm_ms, measure_ms) = if smoke { (30, 150) } else { (200, 1_000) };

    let protocols = [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ];
    // Interleaved sampling: one full sweep of all protocols per
    // repetition, so host drift cancels across rows.
    let mut samples: Vec<Vec<(f64, Payload)>> = vec![Vec::new(); protocols.len()];
    for _ in 0..runs {
        for (i, protocol) in protocols.iter().enumerate() {
            let s = run_once(*protocol, nodes, warm_ms, measure_ms);
            samples[i].push((
                s.tps,
                (
                    s.commits,
                    s.abort_rate,
                    s.deposits,
                    s.checks,
                    s.checked_txns,
                    s.violations,
                ),
            ));
        }
    }

    let mut rows = Vec::new();
    let mut chiller_tps = 0.0;
    let mut best_baseline_tps = 0.0f64;
    for (protocol, sample) in protocols.iter().zip(samples) {
        let m = median_run(sample);
        let (commits, abort_rate, deposits, checks, checked_txns, violations) = m.payload;
        if *protocol == Protocol::Chiller {
            chiller_tps = m.median;
        } else {
            best_baseline_tps = best_baseline_tps.max(m.median);
        }
        rows.push(vec![
            protocol.to_string(),
            ktps(m.median),
            format!("{:.1}", m.spread_pct),
            commits.to_string(),
            format!("{:.3}", abort_rate),
            deposits.to_string(),
            checks.to_string(),
            checked_txns.to_string(),
            violations.to_string(),
        ]);
    }

    let derived = vec![
        ("runs_per_point", runs.to_string()),
        ("measure_ms", measure_ms.to_string()),
        (
            "chiller_vs_best_baseline",
            format!("{:.2}x", chiller_tps / best_baseline_tps.max(1e-9)),
        ),
        (
            "certification",
            "every run verified serializable from its recorded history (CheckMode::Window(1024))"
                .to_string(),
        ),
    ];

    emit(
        "smallbank",
        "SmallBank write-heavy mix per protocol on the threaded backend, checker-certified (K txns/s)",
        Backend::Threaded,
        &[
            "protocol",
            "ktps",
            "spread_pct",
            "commits",
            "abort_rate",
            "deposits",
            "checks",
            "checked_txns",
            "violations",
        ],
        &rows,
        &derived,
    );
}
