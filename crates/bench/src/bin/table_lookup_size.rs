//! **§7.2.2 lookup-table size**: Schism must store a per-record entry for
//! every traced record (the Instacart layout is not range-expressible);
//! Chiller stores entries only for records above the contention-likelihood
//! threshold. The paper reports Schism's table ≈10× larger.

use chiller::prelude::Backend;
use chiller_bench::emit;
use chiller_partition::{ChillerPartitioner, ContentionModel, SchismPartitioner};
use chiller_workload::instacart::{self, InstacartConfig};

fn main() {
    let cfg = InstacartConfig::default();
    let trace = instacart::trace(&cfg, 4_000, 8_000_000);
    let model = ContentionModel::new(30_000.0, trace.window_ns as f64);

    let mut rows = Vec::new();
    for k in [4u32, 8] {
        let schism = SchismPartitioner::new(k).partition(&trace);
        let chiller = ChillerPartitioner::new(k, model).partition(&trace);
        let schism_entries = schism.lookup_entries();
        let chiller_entries = chiller.num_hot();
        rows.push(vec![
            k.to_string(),
            schism_entries.to_string(),
            chiller_entries.to_string(),
            format!(
                "{:.1}",
                schism_entries as f64 / chiller_entries.max(1) as f64
            ),
        ]);
    }
    emit(
        "table_lookup_size",
        "Lookup-table size (entries): Schism vs Chiller (paper: ≈10x)",
        Backend::Simulated,
        &[
            "partitions",
            "schism_entries",
            "chiller_entries",
            "schism/chiller",
        ],
        &rows,
        &[],
    );
}
