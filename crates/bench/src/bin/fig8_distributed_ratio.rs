//! **Figure 8**: ratio of distributed transactions produced by each
//! partitioning scheme (hash, Schism-like, Chiller) on the Instacart-like
//! workload, 2–8 partitions.
//!
//! Expected shape (paper): Schism lowest (it optimizes exactly this);
//! Chiller *higher* than Schism (≈60% more at 2 partitions, narrowing with
//! more partitions) — yet faster in Figure 7, which is the paper's central
//! claim that minimizing distributed transactions is the wrong objective on
//! fast networks.

use chiller::prelude::Backend;
use chiller_bench::{emit, ratio};
use chiller_partition::chiller_part::distributed_ratio;
use chiller_partition::{ChillerPartitioner, ContentionModel, SchismPartitioner};
use chiller_storage::placement::HashPlacement;
use chiller_workload::instacart::{self, InstacartConfig};

fn main() {
    let cfg = InstacartConfig::default();
    let trace = instacart::trace(&cfg, 4_000, 8_000_000);
    let model = ContentionModel::new(30_000.0, trace.window_ns as f64);

    let mut rows = Vec::new();
    let mut chiller_minus_schism_at_2 = 0.0;
    for k in 2..=8u32 {
        let hash = HashPlacement::new(k);
        let schism = SchismPartitioner::new(k).partition(&trace).into_placement();
        let chiller = ChillerPartitioner::new(k, model)
            .partition(&trace)
            .into_lookup_table();
        let r_hash = distributed_ratio(&trace.txns, &hash);
        let r_schism = distributed_ratio(&trace.txns, &schism);
        let r_chiller = distributed_ratio(&trace.txns, &chiller);
        if k == 2 {
            chiller_minus_schism_at_2 = r_chiller / r_schism.max(1e-9);
        }
        rows.push(vec![
            k.to_string(),
            ratio(r_hash),
            ratio(r_schism),
            ratio(r_chiller),
        ]);
    }
    emit(
        "fig8",
        "Figure 8: ratio of distributed transactions by partitioning scheme",
        Backend::Simulated,
        &["partitions", "hashing", "schism", "chiller"],
        &rows,
        &[(
            "chiller_over_schism_distributed_at_2p",
            format!("{chiller_minus_schism_at_2:.2}x (paper: ≈1.6x, narrowing as partitions grow)"),
        )],
    );
}
