//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! Every binary reports through [`emit`]: an aligned table, a CSV block,
//! and — when `CHILLER_BENCH_JSON` is set — a machine-readable
//! `BENCH_<name>.json` file, the format the perf-trajectory tracking
//! expects. The cross-product sweep + row-assembly glue the binaries used
//! to hand-roll lives in [`Matrix`].

use chiller::experiment::sweep;
use chiller::prelude::Backend;
use std::fmt::Display;

/// Print an aligned table: header row + data rows, also emitting a CSV
/// block afterwards so results can be scraped.
pub fn print_table<H: Display, C: Display>(title: &str, header: &[H], rows: &[Vec<C>]) {
    println!("\n=== {title} ===");
    let header_strs: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let row_strs: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = header_strs.iter().map(String::len).collect();
    for row in &row_strs {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header_strs));
    for row in &row_strs {
        println!("{}", fmt_row(row));
    }
    println!("--- csv ---");
    println!("{}", header_strs.join(","));
    for row in &row_strs {
        println!("{}", row.join(","));
    }
}

/// Format a throughput in K txns/sec with 1 decimal.
pub fn ktps(throughput: f64) -> String {
    format!("{:.1}", throughput / 1_000.0)
}

/// Format a ratio with 3 decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.3}")
}

// ---------------------------------------------------------------------------
// Run aggregation
// ---------------------------------------------------------------------------

/// Median-of-runs outcome of one benchmark point (see DESIGN.md §10:
/// single wall-clock runs swing ±10% on shared hosts, so every
/// wall-clock bench reports the median of several runs plus the spread).
pub struct Medians<T> {
    /// Median of the runs' keyed values (throughput, usually).
    pub median: f64,
    /// `(max − min) / median × 100` across the runs (0 when the median
    /// is 0) — how much this point wobbled.
    pub spread_pct: f64,
    /// Payload of the median-keyed run. Rows are assembled from this one
    /// run so their columns stay mutually consistent (e.g. `commits /
    /// window` agrees with the throughput column), rather than mixing
    /// medians of independent columns from different runs.
    pub payload: T,
}

/// Aggregate one benchmark point's runs: each sample is `(key, payload)`
/// where the key is the value to take the median over. Shared by
/// `bench_threaded_throughput` and `bench_async_scale` so the two
/// wall-clock benches report identical statistics.
///
/// Panics on an empty sample set — a bench that measured nothing has no
/// median to report.
pub fn median_run<T>(mut samples: Vec<(f64, T)>) -> Medians<T> {
    assert!(!samples.is_empty(), "median_run needs at least one sample");
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let min = samples[0].0;
    let max = samples[samples.len() - 1].0;
    let mid = samples.len() / 2;
    let median = samples[mid].0;
    let spread_pct = if median > 0.0 {
        (max - min) / median * 100.0
    } else {
        0.0
    };
    let payload = samples.swap_remove(mid).1;
    Medians {
        median,
        spread_pct,
        payload,
    }
}

// ---------------------------------------------------------------------------
// Machine-readable output
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one experiment's results as a JSON document: name, title, the
/// execution backend that produced the numbers (so BENCH_*.json from
/// simulated and threaded runs are distinguishable), header, rows (all
/// cells as strings — they are already formatted), and a flat map of
/// derived headline numbers.
pub fn emit_json(
    name: &str,
    title: &str,
    backend: Backend,
    header: &[&str],
    rows: &[Vec<String>],
    derived: &[(&str, String)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"name\": \"{}\",\n", json_escape(name)));
    s.push_str(&format!("  \"title\": \"{}\",\n", json_escape(title)));
    s.push_str(&format!(
        "  \"backend\": \"{}\",\n",
        json_escape(backend.label())
    ));
    let hdr: Vec<String> = header
        .iter()
        .map(|h| format!("\"{}\"", json_escape(h)))
        .collect();
    s.push_str(&format!("  \"header\": [{}],\n", hdr.join(", ")));
    s.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let cells: Vec<String> = row
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect();
        let comma = if i + 1 < rows.len() { "," } else { "" };
        s.push_str(&format!("    [{}]{}\n", cells.join(", "), comma));
    }
    s.push_str("  ],\n");
    s.push_str("  \"derived\": {\n");
    for (i, (k, v)) in derived.iter().enumerate() {
        let comma = if i + 1 < derived.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": \"{}\"{}\n",
            json_escape(k),
            json_escape(v),
            comma
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Report one experiment: aligned table + CSV on stdout, and — when the
/// `CHILLER_BENCH_JSON` environment variable is set — `BENCH_<name>.json`
/// written to that directory (`.` for values like `1`/`true`). `backend`
/// records which execution runtime produced the numbers.
pub fn emit(
    name: &str,
    title: &str,
    backend: Backend,
    header: &[&str],
    rows: &[Vec<String>],
    derived: &[(&str, String)],
) {
    print_table(title, header, rows);
    println!("backend: {}", backend.label());
    for (k, v) in derived {
        println!("{k}: {v}");
    }
    if let Ok(dest) = std::env::var("CHILLER_BENCH_JSON") {
        if dest.is_empty() {
            return;
        }
        let dir = if dest == "1" || dest == "true" {
            ".".to_string()
        } else {
            dest
        };
        let path = format!("{dir}/BENCH_{name}.json");
        let json = emit_json(name, title, backend, header, rows, derived);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-product sweeps
// ---------------------------------------------------------------------------

/// Results of a parallel sweep over the cross product `xs × series` — the
/// shape of nearly every figure: one table row per x value, one column
/// group per series. Replaces the per-binary `points`/`position` glue.
pub struct Matrix<X, S, R> {
    xs: Vec<X>,
    series: Vec<S>,
    /// Row-major: `results[x_index * series.len() + s_index]`.
    results: Vec<R>,
}

impl<X, S, R> Matrix<X, S, R>
where
    X: Clone + PartialEq + Send + Sync + 'static,
    S: Clone + PartialEq + Send + Sync + 'static,
    R: Send + 'static,
{
    /// Run `f` on every `(x, series)` point in parallel (each point builds
    /// its own deterministic cluster; see `chiller::experiment::sweep`).
    pub fn run(
        xs: Vec<X>,
        series: Vec<S>,
        f: impl Fn(&X, &S) -> R + Send + Sync + 'static,
    ) -> Self {
        let points: Vec<(X, S)> = xs
            .iter()
            .flat_map(|x| series.iter().map(move |s| (x.clone(), s.clone())))
            .collect();
        let results = sweep(points, move |(x, s)| f(&x, &s));
        Matrix {
            xs,
            series,
            results,
        }
    }

    pub fn xs(&self) -> &[X] {
        &self.xs
    }

    pub fn series(&self) -> &[S] {
        &self.series
    }

    /// The result at `(x, s)`; panics when the point was not swept.
    pub fn get(&self, x: &X, s: &S) -> &R {
        let xi = self.xs.iter().position(|v| v == x).expect("unknown x");
        let si = self
            .series
            .iter()
            .position(|v| v == s)
            .expect("unknown series");
        &self.results[xi * self.series.len() + si]
    }

    /// Assemble table rows: one row per x, starting with `label(x)`, then
    /// for each metric in `metrics` that metric of every series in order —
    /// the column layout of the figure tables (all series' throughput,
    /// then all series' abort rate, …).
    pub fn rows(
        &self,
        label: impl Fn(&X) -> String,
        metrics: &[&dyn Fn(&R) -> String],
    ) -> Vec<Vec<String>> {
        self.xs
            .iter()
            .enumerate()
            .map(|(xi, x)| {
                let mut row = vec![label(x)];
                for metric in metrics {
                    for si in 0..self.series.len() {
                        row.push(metric(&self.results[xi * self.series.len() + si]));
                    }
                }
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ktps(123_456.0), "123.5");
        assert_eq!(ratio(0.12345), "0.123");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".to_string(), "2".to_string()]],
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let json = emit_json(
            "demo",
            "a \"quoted\" title",
            Backend::Threaded,
            &["x", "y"],
            &[vec!["1".to_string(), "2".to_string()]],
            &[("speedup", "1.5x".to_string())],
        );
        assert!(json.contains("\\\"quoted\\\""));
        assert!(
            json.contains("\"backend\": \"threaded\""),
            "sim and threaded BENCH files must be distinguishable"
        );
        assert!(json.contains("\"header\": [\"x\", \"y\"]"));
        assert!(json.contains("[\"1\", \"2\"]"));
        assert!(json.contains("\"speedup\": \"1.5x\""));
        // Well-bracketed (cheap structural sanity without a JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn median_run_picks_middle_and_spreads() {
        let m = median_run(vec![
            (3.0, "c"),
            (1.0, "a"),
            (2.0, "b"),
            (5.0, "e"),
            (4.0, "d"),
        ]);
        assert_eq!(m.median, 3.0);
        assert_eq!(m.payload, "c", "payload must come from the median run");
        assert!((m.spread_pct - (4.0 / 3.0 * 100.0)).abs() < 1e-9);

        let single = median_run(vec![(7.5, 42u64)]);
        assert_eq!(single.median, 7.5);
        assert_eq!(single.spread_pct, 0.0);
        assert_eq!(single.payload, 42);

        let zeros = median_run(vec![(0.0, ()), (0.0, ())]);
        assert_eq!(zeros.spread_pct, 0.0, "zero median must not divide by zero");
    }

    #[test]
    fn matrix_indexes_cross_product() {
        let m = Matrix::run(vec![1u32, 2, 3], vec!["a", "b"], |x, s| (*x, s.to_string()));
        assert_eq!(m.get(&2, &"b"), &(2, "b".to_string()));
        assert_eq!(m.get(&3, &"a"), &(3, "a".to_string()));
        let rows = m.rows(
            |x| x.to_string(),
            &[&|r: &(u32, String)| format!("{}{}", r.0, r.1)],
        );
        assert_eq!(rows[1], vec!["2", "2a", "2b"]);
    }
}
