//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded outcomes).

use std::fmt::Display;

/// Print an aligned table: header row + data rows, also emitting a CSV
/// block afterwards so results can be scraped.
pub fn print_table<H: Display, C: Display>(title: &str, header: &[H], rows: &[Vec<C>]) {
    println!("\n=== {title} ===");
    let header_strs: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let row_strs: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = header_strs.iter().map(String::len).collect();
    for row in &row_strs {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header_strs));
    for row in &row_strs {
        println!("{}", fmt_row(row));
    }
    println!("--- csv ---");
    println!("{}", header_strs.join(","));
    for row in &row_strs {
        println!("{}", row.join(","));
    }
}

/// Format a throughput in K txns/sec with 1 decimal.
pub fn ktps(throughput: f64) -> String {
    format!("{:.1}", throughput / 1_000.0)
}

/// Format a ratio with 3 decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ktps(123_456.0), "123.5");
        assert_eq!(ratio(0.12345), "0.123");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".to_string(), "2".to_string()]],
        );
    }
}
