//! Which concurrency-control protocol an engine runs.

/// The three execution models compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Chiller's two-region execution (§3): hot records postponed into an
    /// inner region committed unilaterally by the inner host; 2PL NO_WAIT
    /// for the outer region. Transactions with no hot records fall back to
    /// plain 2PL+2PC.
    Chiller,
    /// Traditional distributed 2PL with NO_WAIT and 2PC (prepare
    /// piggybacked on the last execution round — Figure 3a).
    TwoPhaseLocking,
    /// Distributed optimistic concurrency control: lock-free versioned
    /// reads, parallel validate-then-decide (MaaT-inspired).
    Occ,
}

impl Protocol {
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Chiller => "chiller",
            Protocol::TwoPhaseLocking => "2pl",
            Protocol::Occ => "occ",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Protocol::Chiller.name(), "chiller");
        assert_eq!(Protocol::TwoPhaseLocking.to_string(), "2pl");
        assert_eq!(Protocol::Occ.name(), "occ");
    }
}
