//! Participant-side (storage-owner) message handlers.
//!
//! These model what the *destination* of a verb does: lock-word CAS +
//! record READ for one-sided accesses (NIC-side, no engine CPU), inner
//! region execution and replica application for RPCs (engine CPU, charged
//! by the caller / simulator).

use crate::engine::EngineActor;
use crate::msg::{LockReadItem, Msg, OccReadItem, ValidateItem, WriteItem, WriteKind};
use chiller_common::ids::{NodeId, OpId, PartitionId, RecordId, TxnId};
use chiller_common::time::SimTime;
use chiller_common::value::Row;
use chiller_obs::{EventKind, HistoryEventKind};
use chiller_simnet::Ctx;
use chiller_storage::lock::LockMode;
use chiller_storage::wal::{RedoWrite, WalRecord};

impl EngineActor {
    /// Record a versioned read observation for the serializability checker
    /// (no-op unless checking is on; the version lookup is gated so the
    /// off path costs one branch).
    #[inline]
    pub(crate) fn observe_read(&mut self, txn: TxnId, record: RecordId, now: SimTime) {
        if self.recorder.enabled() {
            let version = self.store.record_version(record);
            self.recorder.record(
                now.as_nanos(),
                self.node,
                HistoryEventKind::ReadObs {
                    txn,
                    record,
                    version,
                },
            );
        }
    }

    /// Release a primary-store lock, folding the observed contention span
    /// into the hot/cold histograms (and, in full trace mode, emitting the
    /// lock-hold span).
    pub(crate) fn unlock_with_metrics(&mut self, rid: RecordId, txn: TxnId, now: SimTime) {
        if let Some(rel) = self.store.unlock(rid, txn, now) {
            if self.hot.contains(&rid) {
                self.metrics
                    .hot_contention_span
                    .record_duration(rel.held_for);
            } else {
                self.metrics
                    .cold_contention_span
                    .record_duration(rel.held_for);
            }
            if self.tracer.full() {
                self.tracer.record(
                    now.as_nanos(),
                    self.node,
                    EventKind::LockRelease {
                        txn,
                        record: rid,
                        held_ns: rel.held_for.as_nanos(),
                    },
                );
            }
        }
    }

    /// Trace a granted NO_WAIT lock (full mode only; participant side).
    pub(crate) fn trace_lock_acquire(&mut self, rid: RecordId, txn: TxnId, now: SimTime) {
        if self.tracer.full() {
            let hot = self.hot.contains(&rid);
            self.tracer.record(
                now.as_nanos(),
                self.node,
                EventKind::LockAcquire {
                    txn,
                    record: rid,
                    hot,
                },
            );
        }
    }

    /// Combined CAS-lock + READ (2PL / Chiller outer region). On any
    /// failure, everything granted *within this message* is released before
    /// replying, so the coordinator only tracks whole-message grants.
    pub(crate) fn handle_lock_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        req: u64,
        items: Vec<LockReadItem>,
    ) {
        let now = ctx.now();
        let mut granted: Vec<RecordId> = Vec::with_capacity(items.len());
        let mut rows: Vec<(OpId, Row)> = Vec::new();
        let mut conflict = None;
        let mut missing = None;
        let mut stale = false;
        for item in &items {
            match self.store.try_lock(item.record, txn, item.mode, now) {
                Ok(()) => {
                    granted.push(item.record);
                    self.trace_lock_acquire(item.record, txn, now);
                    if let Some(mon) = self.monitor.as_mut() {
                        mon.on_access(item.record);
                    }
                }
                Err(_) => {
                    conflict = Some(item.record);
                    if let Some(mon) = self.monitor.as_mut() {
                        mon.on_conflict(item.record);
                    }
                    break;
                }
            }
            let exists = self.store.exists(item.record);
            if !exists && self.migrated_out.contains(&item.record) {
                // Stale-routing race: the record migrated away after the
                // coordinator resolved its placement. Answer as a
                // retryable conflict — the retry re-resolves through the
                // directory and lands at the new owner. This covers both
                // the read/update miss and the insert that would otherwise
                // succeed here and duplicate the record at its old home.
                conflict = Some(item.record);
                stale = true;
                break;
            }
            if exists == item.expect_absent {
                // Existence precondition failed (missing record, or insert
                // target already present): a non-retryable fault.
                missing = Some(item.record);
                break;
            }
            if item.want_row {
                rows.push((
                    item.op,
                    self.store
                        .read(item.record)
                        .expect("existence checked")
                        .clone(),
                ));
                self.observe_read(txn, item.record, now);
            }
        }
        let ok = conflict.is_none() && missing.is_none();
        if !ok {
            for rid in granted.drain(..) {
                self.unlock_with_metrics(rid, txn, now);
            }
            rows.clear();
        }
        ctx.send(
            src,
            chiller_simnet::Verb::OneSided,
            Msg::LockReadResp {
                txn,
                req,
                granted: ok,
                conflict,
                missing,
                stale,
                rows,
            },
        );
    }

    /// Apply a write item to the primary store, recording the installed
    /// per-record version when serializability checking is on. Returns
    /// that version for redo logging (0 when neither the recorder nor the
    /// WAL needs it — the lookup stays off the undecorated hot path).
    fn apply_write(&mut self, w: &WriteItem, txn: TxnId, now: SimTime) -> u64 {
        match &w.kind {
            WriteKind::Put(row) => self.store.write(w.record, row.clone()),
            WriteKind::Insert(row) => {
                // Duplicates were excluded while the bucket lock was held.
                self.store
                    .insert(w.record, row.clone())
                    .expect("insert validated under lock");
            }
            WriteKind::Delete => {
                self.store
                    .delete(w.record)
                    .expect("delete validated under lock");
            }
        }
        if !self.recorder.enabled() && self.wal.is_none() {
            return 0;
        }
        let version = self.store.record_version(w.record);
        if self.recorder.enabled() {
            self.recorder.record(
                now.as_nanos(),
                self.node,
                HistoryEventKind::WriteObs {
                    txn,
                    record: w.record,
                    version,
                },
            );
        }
        version
    }

    /// Apply a committed write-set to the primary store and, on durable
    /// engines, append one redo record carrying the installed versions.
    /// The caller holds exclusive locks/latches on every record from
    /// read/validate through this apply, so per-partition log order equals
    /// apply order — the property replay relies on.
    pub(crate) fn apply_writes(&mut self, writes: &[WriteItem], txn: TxnId, now: SimTime) {
        let mut redo = if self.wal.is_some() && !writes.is_empty() {
            Some(Vec::with_capacity(writes.len()))
        } else {
            None
        };
        for w in writes {
            let version = self.apply_write(w, txn, now);
            if let Some(redo) = redo.as_mut() {
                redo.push(RedoWrite {
                    record: w.record,
                    version,
                    op: w.kind.to_redo_op(),
                });
            }
        }
        if let Some(writes) = redo {
            self.wal_append(WalRecord::Redo { txn, writes });
        }
    }

    /// WRITE-back + unlock at commit time (one-sided; prepare piggybacked).
    pub(crate) fn handle_commit_outer(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        writes: Vec<WriteItem>,
        unlocks: Vec<RecordId>,
    ) {
        let now = ctx.now();
        self.apply_writes(&writes, txn, now);
        for rid in unlocks {
            self.unlock_with_metrics(rid, txn, now);
        }
        ctx.send(
            src,
            chiller_simnet::Verb::OneSided,
            Msg::CommitOuterAck { txn },
        );
    }

    /// Release locks on the abort path (no ack needed: NO_WAIT retries are
    /// driven by a timer, not by the release completing).
    pub(crate) fn handle_abort_outer(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        unlocks: Vec<RecordId>,
    ) {
        let now = ctx.now();
        for rid in unlocks {
            self.unlock_with_metrics(rid, txn, now);
        }
    }

    /// Replica application (§5). Inner-region replication acks the
    /// *coordinator*, never the inner host — the inner host has already
    /// moved on (Figure 6).
    pub(crate) fn handle_replicate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        partition: PartitionId,
        writes: Vec<WriteItem>,
        ack_coordinator: bool,
    ) {
        let cpu = chiller_common::time::Duration::from_nanos(
            self.config.engine.op_cpu_ns * writes.len().max(1) as u64 / 2,
        );
        ctx.use_cpu(cpu);
        let store = self
            .replicas
            .get_mut(&partition)
            .unwrap_or_else(|| panic!("node has no replica of {partition}"));
        for w in &writes {
            match &w.kind {
                WriteKind::Put(row) => store.write(w.record, row.clone()),
                WriteKind::Insert(row) => store.write(w.record, row.clone()),
                WriteKind::Delete => {
                    let _ = store.delete(w.record);
                }
            }
        }
        if ack_coordinator {
            ctx.send(
                txn.coordinator(),
                chiller_simnet::Verb::OneSided,
                Msg::ReplicateAck { txn },
            );
        }
    }

    // ---- OCC -------------------------------------------------------------

    /// Lock-free versioned read.
    pub(crate) fn handle_occ_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        req: u64,
        items: Vec<OccReadItem>,
    ) {
        let now = ctx.now();
        let rows: Vec<_> = items
            .iter()
            .map(|it| {
                let row = if it.want_row {
                    self.store.read_opt(it.record).cloned()
                } else {
                    None
                };
                (it.op, row, self.store.version(it.record))
            })
            .collect();
        // Every OCC item's version is pinned by validation — write-set
        // entries included — so each one is a genuine versioned
        // observation whether or not the row came back.
        for it in &items {
            self.observe_read(txn, it.record, now);
        }
        ctx.send(
            src,
            chiller_simnet::Verb::OneSided,
            Msg::OccReadResp { txn, req, rows },
        );
    }

    /// Validation: latch the write set (NO_WAIT), then check that every
    /// observed version is still current. On failure, latches taken by
    /// *this message* are dropped before replying.
    pub(crate) fn handle_occ_validate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        items: Vec<ValidateItem>,
    ) {
        let now = ctx.now();
        let mut latched: Vec<RecordId> = Vec::new();
        let mut conflict = None;
        for it in &items {
            if it.is_write {
                match self
                    .store
                    .try_lock(it.record, txn, LockMode::Exclusive, now)
                {
                    Ok(()) => {
                        latched.push(it.record);
                        self.trace_lock_acquire(it.record, txn, now);
                    }
                    Err(_) => {
                        conflict = Some(it.record);
                        break;
                    }
                }
            }
            if self.store.version(it.record) != it.version {
                conflict = Some(it.record);
                break;
            }
        }
        let ok = conflict.is_none();
        if !ok {
            for rid in latched {
                self.unlock_with_metrics(rid, txn, now);
            }
        }
        // Latches persist on success until OccDecide arrives.
        ctx.send(
            src,
            chiller_simnet::Verb::OneSided,
            Msg::OccValidateResp { txn, ok, conflict },
        );
    }

    /// Decide phase: apply + release on commit, release on abort.
    pub(crate) fn handle_occ_decide(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        commit: bool,
        writes: Vec<WriteItem>,
        latched: Vec<RecordId>,
    ) {
        let now = ctx.now();
        if commit {
            self.apply_writes(&writes, txn, now);
        }
        for rid in latched {
            self.unlock_with_metrics(rid, txn, now);
        }
        ctx.send(
            src,
            chiller_simnet::Verb::OneSided,
            Msg::OccDecideAck { txn },
        );
    }
}

impl EngineActor {
    /// Inner-region execution at the inner host (§3.3 step 4): acquire
    /// local locks NO_WAIT, execute the inner ops start-to-finish with no
    /// network stall, evaluate the inner-site guards, and unilaterally
    /// commit — then fire-and-forget replicate (§5) and report back.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_exec_inner(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        proc_idx: usize,
        params: Vec<chiller_common::value::Value>,
        outer_outputs: Vec<(OpId, Row)>,
        inner_ops: Vec<OpId>,
        inner_guards: Vec<usize>,
    ) {
        use chiller_sproc::op::OpKind;
        let proc = self.registry.get(proc_idx).clone();
        let mut exec = chiller_sproc::ExecState::new(params, proc.num_ops());
        for (op, row) in outer_outputs {
            exec.set_output(op, row);
        }
        ctx.use_cpu(chiller_common::time::Duration::from_nanos(
            self.config.engine.op_cpu_ns * inner_ops.len() as u64,
        ));

        let mut locked: Vec<RecordId> = Vec::new();
        let mut fail: Option<bool> = None; // Some(retryable)
        let mut stale = false;
        let mut writes: Vec<WriteItem> = Vec::new();
        let mut produced: Vec<OpId> = Vec::new();

        // Lock, read and *compute* every inner op in dependency order —
        // later inner keys may derive from earlier inner outputs (e.g. the
        // seat id from the flight read, the customer id from the order
        // row), so outputs must materialize as we go. Writes are buffered
        // and applied only after all locks and guards succeed.
        let now = ctx.now();
        for &id in &inner_ops {
            let op = proc.op(id);
            let key = op
                .key
                .resolve(&exec)
                .expect("dependency graph guarantees inner keys resolve at the host");
            let rid = RecordId::new(op.table, key);
            debug_assert_eq!(
                NodeId(self.store.partition.0),
                self.node,
                "inner host must own its partition"
            );
            let mode = crate::coordinator::lock_mode_for(op);
            if self.store.try_lock(rid, txn, mode, now).is_err() {
                if let Some(mon) = self.monitor.as_mut() {
                    mon.on_conflict(rid);
                }
                fail = Some(true);
                break;
            }
            locked.push(rid);
            self.trace_lock_acquire(rid, txn, now);
            if let Some(mon) = self.monitor.as_mut() {
                mon.on_access(rid);
            }
            let exists = self.store.exists(rid);
            let expect_absent = matches!(op.kind, OpKind::Insert(_));
            if !exists && self.migrated_out.contains(&rid) {
                // Stale split: admission chose this inner host before the
                // record's flip. Retry (the next attempt re-resolves
                // through the directory) — for reads/updates a miss here
                // is not a fault, and an insert must not land at the old
                // home and duplicate the record.
                fail = Some(true);
                stale = true;
                break;
            }
            if exists == expect_absent {
                fail = Some(false); // existence fault: final
                break;
            }
            match &op.kind {
                OpKind::Read { .. } => {
                    let row = self.store.read(rid).expect("existence checked").clone();
                    self.observe_read(txn, rid, now);
                    exec.set_output(id, row);
                    produced.push(id);
                }
                OpKind::Update(apply) => {
                    let raw = self.store.read(rid).expect("existence checked").clone();
                    self.observe_read(txn, rid, now);
                    let new = apply(&raw, &exec);
                    exec.set_output(id, new.clone());
                    produced.push(id);
                    writes.push(WriteItem {
                        record: rid,
                        kind: WriteKind::Put(new),
                    });
                }
                OpKind::Insert(build) => {
                    let row = build(&exec);
                    writes.push(WriteItem {
                        record: rid,
                        kind: WriteKind::Insert(row),
                    });
                }
                OpKind::Delete => {
                    writes.push(WriteItem {
                        record: rid,
                        kind: WriteKind::Delete,
                    });
                }
            }
        }

        // Inner-site guards fold into the unilateral commit decision.
        if fail.is_none() {
            for gi in inner_guards {
                let guard = &proc.guards[gi];
                debug_assert!(
                    guard.deps.iter().all(|d| exec.output(*d).is_some()),
                    "inner guard deps must be available at the host"
                );
                if (guard.check)(&exec).is_err() {
                    fail = Some(false);
                    break;
                }
            }
        }

        let now = ctx.now();
        match fail {
            Some(retryable) => {
                for rid in locked {
                    self.unlock_with_metrics(rid, txn, now);
                }
                ctx.send(
                    src,
                    chiller_simnet::Verb::OneSided,
                    Msg::InnerResult {
                        txn,
                        committed: false,
                        outputs: Vec::new(),
                        retryable,
                        stale,
                    },
                );
            }
            None => {
                // Unilateral commit: apply, release (this is the shortened
                // contention span), replicate fire-and-forget, reply.
                // On durable engines the redo and the InnerCommit marker
                // are appended back-to-back, so one flush makes the §3.3
                // decision and its effects durable together: recovery
                // never finds the marker without the writes it covers.
                self.apply_writes(&writes, txn, now);
                self.wal_append(WalRecord::InnerCommit { txn });
                for rid in locked {
                    self.unlock_with_metrics(rid, txn, now);
                }
                if !writes.is_empty() {
                    let partition = self.store.partition;
                    for replica in self.replica_nodes(partition) {
                        ctx.send(
                            replica,
                            chiller_simnet::Verb::Rpc,
                            Msg::Replicate {
                                txn,
                                partition,
                                writes: writes.clone(),
                                ack_coordinator: true,
                            },
                        );
                    }
                }
                let outputs: Vec<(OpId, Row)> = produced
                    .iter()
                    .filter_map(|id| exec.output(*id).map(|r| (*id, r.clone())))
                    .collect();
                ctx.send(
                    src,
                    chiller_simnet::Verb::OneSided,
                    Msg::InnerResult {
                        txn,
                        committed: true,
                        outputs,
                        retryable: false,
                        stale: false,
                    },
                );
            }
        }
    }
}
