//! Traditional distributed 2PL + 2PC with NO_WAIT — the paper's
//! pessimistic baseline (Figure 3a).
//!
//! Waves issue combined lock+read verbs; once every op holds its lock,
//! commit write-backs + unlocks go out with the prepare piggybacked,
//! alongside replication to each written partition's replicas. Everything
//! here delegates to the shared lock-based machinery — 2PL *is* the
//! single-region special case.

use super::{drive, lock_based, Coord, CoordinatorProtocol};
use crate::engine::EngineActor;
use crate::msg::Msg;
use crate::protocol::Protocol;
use chiller_common::ids::{NodeId, OpId, TxnId};
use chiller_simnet::Ctx;

/// Strategy singleton for [`Protocol::TwoPhaseLocking`].
pub struct TwoPlCoordinator;

impl CoordinatorProtocol for TwoPlCoordinator {
    fn protocol(&self) -> Protocol {
        Protocol::TwoPhaseLocking
    }

    fn wave_message(&self, coord: &Coord, txn: TxnId, req: u64, ops: &[OpId]) -> Msg {
        lock_based::lock_read_message(coord, txn, req, ops)
    }

    fn on_waves_complete(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        coord: &mut Coord,
    ) {
        // Every lock is held: write back, unlock, replicate (prepare is
        // piggybacked on the last execution round — Figure 3a).
        lock_based::commit_locked(eng, ctx, txn, coord);
    }

    fn on_response(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        _src: NodeId,
        txn: TxnId,
        coord: &mut Coord,
        msg: Msg,
    ) {
        match msg {
            Msg::LockReadResp {
                req,
                granted,
                conflict: _,
                missing,
                stale,
                rows,
                ..
            } => {
                lock_based::absorb_lock_read_resp(
                    eng, ctx, coord, req, granted, missing, stale, rows,
                );
                drive(eng, ctx, txn, coord);
            }
            Msg::CommitOuterAck { .. } | Msg::ReplicateAck { .. } => {
                lock_based::absorb_commit_phase_ack(eng, ctx, txn, coord);
            }
            other => {
                debug_assert!(false, "2PL coordinator received {other:?}");
            }
        }
    }
}
