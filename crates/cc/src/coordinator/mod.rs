//! The coordinator protocol seam.
//!
//! A stored procedure executes in **dependency waves**: every operation
//! whose key is resolvable and whose pk-dependencies are satisfied is
//! issued (batched per partition) in parallel; responses unlock the next
//! wave. This mirrors how a NAM-DB coordinator overlaps one-sided verbs,
//! and gives 2-wave execution for typical TPC-C transactions. The wave
//! loop, per-op compute pass, guard evaluation, commit/abort accounting
//! and retry policy in this module are shared by every protocol.
//!
//! What *differs* per protocol is captured by [`CoordinatorProtocol`]:
//!
//! * **admission/split** — the §3.3 run-time region decision (Chiller
//!   splits hot ops into an inner region; the baselines always run
//!   single-region);
//! * **wave dispatch** — what a wave sends: combined lock+read verbs
//!   (2PL / Chiller outer region) vs lock-free versioned reads (OCC);
//! * **prepare/validate** — what happens when every in-scope op has
//!   responded: write-back + unlock with the prepare piggybacked (2PL),
//!   inner-region delegation then outer phase 2 (Chiller), or a parallel
//!   validate round (OCC);
//! * **decide/replicate** — how responses and replication acks advance
//!   the state machine to commit or abort.
//!
//! Implementations are stateless zero-sized types — all per-transaction
//! state lives in [`Coord`], all per-node state in
//! [`EngineActor`] — so a strategy is just a
//! `&'static dyn CoordinatorProtocol` selected at engine construction.
//! Adding a protocol (deterministic/Calvin-style, FaRM-style, …) means
//! adding one module here plus a [`Protocol`] variant; the engine shell,
//! cluster builder and workloads stay untouched.

pub mod chiller;
mod lock_based;
pub mod occ;
pub mod two_pl;

use crate::engine::EngineActor;
use crate::input::TxnInput;
use crate::msg::{Msg, WriteItem, WriteKind};
use crate::protocol::Protocol;
use chiller_common::ids::{NodeId, OpId, PartitionId, RecordId, TxnId};
use chiller_common::metrics::AbortReason;
use chiller_common::time::SimTime;
use chiller_common::value::Row;
use chiller_obs::EventKind;
use chiller_simnet::{Ctx, Verb};
use chiller_sproc::decision::GuardSite;
use chiller_sproc::op::OpKind;
use chiller_sproc::{ExecState, Procedure, RegionSplit};
use chiller_storage::lock::LockMode;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

pub use chiller::ChillerCoordinator;
pub use occ::OccCoordinator;
pub use two_pl::TwoPlCoordinator;

/// Protocol-specific coordinator behavior: txn admission/split, wave
/// dispatch, prepare/validate, and decide/replicate hooks. See the module
/// docs for the seam's contract.
///
/// Methods receive the engine shell (`eng`) for stores, placement, config,
/// metrics and scheduling, plus the per-transaction [`Coord`] — which the
/// engine has temporarily removed from its open-transaction table, so
/// implementations never touch `eng.txns` for the current transaction.
/// Setting `coord.phase = Phase::Done` (via `finish_commit` /
/// `abort_attempt`) retires the transaction.
pub trait CoordinatorProtocol: Send + Sync {
    /// The [`Protocol`] this strategy implements.
    fn protocol(&self) -> Protocol;

    /// Txn admission (§3.3 steps 1–2): decide the region split before the
    /// first wave. Baselines run everything as one outer region.
    fn admission_split(
        &self,
        eng: &EngineActor,
        proc: &Procedure,
        exec: &ExecState,
    ) -> RegionSplit {
        let _ = (eng, exec);
        RegionSplit::all_outer(proc)
    }

    /// Wave dispatch: build the access message for one per-partition batch
    /// of ready ops (`ops` is non-empty; `req` correlates the response).
    fn wave_message(&self, coord: &Coord, txn: TxnId, req: u64, ops: &[OpId]) -> Msg;

    /// Prepare/validate: every in-scope op has responded and nothing else
    /// is issuable — enter the protocol's commit path (write-back for 2PL,
    /// inner delegation for Chiller, validation round for OCC).
    fn on_waves_complete(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        coord: &mut Coord,
    );

    /// Decide/replicate: a coordinator-side response arrived for this open
    /// transaction (wave responses, validation verdicts, inner results,
    /// commit/decide/replication acks).
    fn on_response(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        coord: &mut Coord,
        msg: Msg,
    );
}

/// The strategy singleton for a protocol.
pub fn strategy_for(p: Protocol) -> &'static dyn CoordinatorProtocol {
    match p {
        Protocol::Chiller => &ChillerCoordinator,
        Protocol::TwoPhaseLocking => &TwoPlCoordinator,
        Protocol::Occ => &OccCoordinator,
    }
}

/// Per-operation execution bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct OpState {
    pub(crate) issued: bool,
    pub(crate) responded: bool,
    pub(crate) computed: bool,
    pub(crate) record: Option<RecordId>,
    pub(crate) partition: Option<PartitionId>,
    pub(crate) raw_row: Option<Row>,
    /// Version observed at read time (OCC only).
    pub(crate) version: u64,
}

/// Why a transaction attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// Retryable failure, classified for the abort-reason taxonomy:
    /// NO_WAIT lock conflict, OCC validation failure, or a stale-routing
    /// race against a live migration.
    Transient(AbortReason),
    /// Guard violation / existence fault: final.
    Logic,
}

/// Coordinator state-machine phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waves in flight (lock+read or versioned read).
    Executing,
    /// Chiller: waiting for the inner result + inner replica acks.
    InnerWait,
    /// OCC: waiting for validate responses.
    Validating,
    /// Waiting for commit/decide/replication acks.
    Committing,
    /// OCC abort: waiting for latch-release acks before retrying.
    Aborting,
    /// Terminal: the engine must not reinsert this coordinator entry.
    Done,
}

/// Coordinator state for one in-flight transaction attempt.
pub struct Coord {
    pub(crate) slot: usize,
    pub(crate) input: TxnInput,
    pub(crate) proc: Arc<Procedure>,
    pub(crate) exec: ExecState,
    pub(crate) split: RegionSplit,
    pub(crate) ops: Vec<OpState>,
    pub(crate) guards_checked: Vec<bool>,
    pub(crate) phase: Phase,
    pub(crate) pending: usize,
    pub(crate) failed: Option<FailKind>,
    /// Request-id → ops carried by that in-flight access message.
    pub(crate) inflight: HashMap<u64, Vec<OpId>>,
    pub(crate) next_req: u64,
    /// Outer locks currently held.
    pub(crate) held_locks: Vec<(PartitionId, RecordId)>,
    /// Buffered writes (applied at commit).
    pub(crate) writes: Vec<(PartitionId, WriteItem)>,
    /// All partitions this attempt touched.
    pub(crate) participants: BTreeSet<PartitionId>,
    /// Chiller: inner-region progress.
    pub(crate) inner_sent: bool,
    pub(crate) inner_ok: bool,
    /// OCC: partitions that responded OK to validation (holding latches).
    pub(crate) validated_ok: Vec<PartitionId>,
    /// Retry bookkeeping (attempts includes the current one).
    pub(crate) attempts: u32,
    pub(crate) first_start: SimTime,
    /// Whether this attempt records lifecycle trace events (decided once
    /// at admission from the tracer's sampling mode).
    pub(crate) traced: bool,
}

impl Coord {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        slot: usize,
        input: TxnInput,
        proc: Arc<Procedure>,
        exec: ExecState,
        split: RegionSplit,
        prior_attempts: u32,
        first_start: SimTime,
        traced: bool,
    ) -> Self {
        let n = proc.num_ops();
        let num_guards = proc.guards.len();
        Coord {
            slot,
            input,
            proc,
            exec,
            split,
            ops: vec![OpState::default(); n],
            guards_checked: vec![false; num_guards],
            phase: Phase::Executing,
            pending: 0,
            failed: None,
            inflight: HashMap::new(),
            next_req: 0,
            held_locks: Vec::new(),
            writes: Vec::new(),
            participants: BTreeSet::new(),
            inner_sent: false,
            inner_ok: false,
            validated_ok: Vec::new(),
            attempts: prior_attempts + 1,
            first_start,
            traced,
        }
    }
}

/// The set of ops the wave stage may issue: the outer region for
/// two-region transactions, everything otherwise.
pub(crate) fn in_scope(coord: &Coord, op: OpId) -> bool {
    if coord.split.is_two_region() {
        coord.split.outer_ops.contains(&op)
    } else {
        true
    }
}

/// Lock mode an operation needs under lock-based execution.
pub(crate) fn lock_mode_for(op: &chiller_sproc::op::Op) -> LockMode {
    match &op.kind {
        OpKind::Read { for_update: false } => LockMode::Shared,
        _ => LockMode::Exclusive,
    }
}

/// Advance a transaction through its current stage: run the compute pass
/// and guards, abort on failure once in-flight responses drain, issue the
/// next wave, and hand stage completion to the strategy.
pub(crate) fn drive(eng: &mut EngineActor, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord) {
    if coord.failed.is_none() {
        compute_pass(eng, ctx, coord);
        check_guards(coord);
    }

    if coord.failed.is_some() {
        if coord.pending == 0 {
            abort_attempt(eng, ctx, txn, coord);
        }
        // Otherwise wait for in-flight responses (they may grant locks
        // that must be released on abort).
        return;
    }

    let issued = issue_wave(eng, ctx, txn, coord);
    if issued > 0 || coord.pending > 0 {
        return;
    }

    // Stage complete: everything in scope responded, nothing issuable.
    debug_assert!(
        (0..coord.proc.num_ops())
            .all(|i| !in_scope(coord, OpId(i as u16)) || coord.ops[i].responded),
        "wave stalled with unresolved in-scope ops"
    );
    let strategy = eng.strategy;
    strategy.on_waves_complete(eng, ctx, txn, coord);
}

/// Finalize every op whose inputs are available: compute update rows,
/// build insert rows, buffer writes.
pub(crate) fn compute_pass(eng: &mut EngineActor, ctx: &mut Ctx<'_, Msg>, coord: &mut Coord) {
    loop {
        let mut progressed = false;
        for i in 0..coord.proc.num_ops() {
            if coord.ops[i].computed || !coord.ops[i].responded {
                continue;
            }
            let op = coord.proc.op(OpId(i as u16)).clone();
            if !op
                .value_deps
                .iter()
                .all(|d| coord.exec.output(*d).is_some())
            {
                continue;
            }
            let rid = coord.ops[i].record.expect("responded implies resolved");
            let part = coord.ops[i].partition.expect("responded implies resolved");
            match &op.kind {
                OpKind::Read { .. } => {} // output set at response time
                OpKind::Update(apply) => {
                    ctx.use_cpu(eng.op_cpu());
                    let raw = coord.ops[i].raw_row.clone().expect("update read a row");
                    let new = apply(&raw, &coord.exec);
                    coord.exec.set_output(op.id, new.clone());
                    coord.writes.push((
                        part,
                        WriteItem {
                            record: rid,
                            kind: WriteKind::Put(new),
                        },
                    ));
                }
                OpKind::Insert(build) => {
                    ctx.use_cpu(eng.op_cpu());
                    let row = build(&coord.exec);
                    coord.writes.push((
                        part,
                        WriteItem {
                            record: rid,
                            kind: WriteKind::Insert(row),
                        },
                    ));
                }
                OpKind::Delete => {
                    coord.writes.push((
                        part,
                        WriteItem {
                            record: rid,
                            kind: WriteKind::Delete,
                        },
                    ));
                }
            }
            coord.ops[i].computed = true;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
}

/// Evaluate every unchecked guard whose deps are available. Inner-site
/// guards are the inner host's responsibility.
fn check_guards(coord: &mut Coord) {
    for gi in 0..coord.proc.guards.len() {
        if coord.guards_checked[gi] {
            continue;
        }
        if coord.split.is_two_region() && coord.split.guard_sites[gi] == GuardSite::Inner {
            continue;
        }
        let guard = &coord.proc.guards[gi];
        if !guard.deps.iter().all(|d| coord.exec.output(*d).is_some()) {
            continue;
        }
        coord.guards_checked[gi] = true;
        if (guard.check)(&coord.exec).is_err() {
            coord.failed = Some(FailKind::Logic);
            return;
        }
    }
}

/// Issue every in-scope op whose key is resolvable, batched per partition;
/// the message content comes from the strategy's wave-dispatch hook.
/// Returns the number of messages sent.
fn issue_wave(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
) -> usize {
    let mut per_partition: BTreeMap<PartitionId, Vec<OpId>> = BTreeMap::new();
    for i in 0..coord.proc.num_ops() {
        let id = OpId(i as u16);
        if coord.ops[i].issued || !in_scope(coord, id) {
            continue;
        }
        let op = coord.proc.op(id);
        let Some(key) = op.key.resolve(&coord.exec) else {
            continue;
        };
        let rid = RecordId::new(op.table, key);
        let part = eng.placement.partition_of(rid);
        coord.ops[i].issued = true;
        coord.ops[i].record = Some(rid);
        coord.ops[i].partition = Some(part);
        coord.participants.insert(part);
        per_partition.entry(part).or_default().push(id);
        ctx.use_cpu(eng.op_cpu());
    }
    let n = per_partition.len();
    let strategy = eng.strategy;
    for (part, op_ids) in per_partition {
        let target = NodeId(part.0);
        coord.next_req += 1;
        let req = coord.next_req;
        coord.inflight.insert(req, op_ids.clone());
        let msg = strategy.wave_message(coord, txn, req, &op_ids);
        let verb = msg.verb();
        if target != eng.node && eng.tracer.full() {
            let label = msg.kind_label();
            eng.tracer.record(
                ctx.now().as_nanos(),
                eng.node,
                EventKind::SendHop {
                    txn,
                    dst: target,
                    label,
                },
            );
        }
        ctx.send(target, verb, msg);
        coord.pending += 1;
    }
    n
}

/// Log this attempt's commit decision — the full buffered outer write-set,
/// tagged by home partition — to the coordinator's WAL. `pending_inner`
/// marks a *provisional* decision taken before delegating the inner region
/// (recovery resolves it against the inner host's `InnerCommit` marker,
/// since the inner commit IS the decision for two-region transactions,
/// §3.3); the final decision logged on the commit path carries `None`.
/// Recovery keeps the **last** Decide per transaction, so a final record
/// supersedes the provisional one.
pub(crate) fn log_decide(
    eng: &mut EngineActor,
    txn: TxnId,
    coord: &Coord,
    pending_inner: Option<PartitionId>,
) {
    if !eng.durable() {
        return;
    }
    let writes = coord
        .writes
        .iter()
        .map(|(p, w)| chiller_storage::wal::DecideWrite {
            partition: *p,
            record: w.record,
            op: w.kind.to_redo_op(),
        })
        .collect();
    eng.wal_append(chiller_storage::wal::WalRecord::Decide {
        txn,
        proc: eng.proc_name(&coord.input).to_owned(),
        pending_inner,
        writes,
    });
}

/// Account a successful commit and free the slot. Sets `Phase::Done`.
pub(crate) fn finish_commit(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
) {
    let name = eng.proc_name(&coord.input).to_owned();
    let distributed = coord.participants.len() > 1;
    let stats = eng.metrics.type_stats(&name);
    stats.commits += 1;
    if distributed {
        stats.distributed_commits += 1;
    }
    if let Some(mon) = eng.monitor.as_mut() {
        // Feed the adaptive sampling service: this commit's read/write-set
        // (built lazily — only sampled commits allocate). Inner-region ops
        // never get `OpState::record` set (the inner host resolves them),
        // so re-resolve by key here — with all outputs in, every key
        // resolves — or the hottest records would vanish from the samples
        // the moment they are promoted, and the planner would oscillate.
        mon.on_commit_with(|| {
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            for (i, st) in coord.ops.iter().enumerate() {
                let op = coord.proc.op(OpId(i as u16));
                let rid = st.record.or_else(|| {
                    op.key
                        .resolve(&coord.exec)
                        .map(|k| RecordId::new(op.table, k))
                });
                if let Some(rid) = rid {
                    if op.kind.is_write() {
                        writes.push(rid);
                    } else {
                        reads.push(rid);
                    }
                }
            }
            (reads, writes)
        });
    }
    let latency = ctx.now().saturating_since(coord.first_start);
    eng.metrics.latency.record_duration(latency);
    if coord.traced {
        eng.tracer.record(
            ctx.now().as_nanos(),
            eng.node,
            EventKind::TxnCommit {
                txn,
                latency_ns: latency.as_nanos(),
                distributed,
            },
        );
    }
    // Serializability checking: the commit marker is what promotes this
    // attempt's recorded reads/writes into the checked history (attempts
    // that never reach here drop out at assembly).
    if eng.recorder.enabled() {
        eng.recorder.record(
            ctx.now().as_nanos(),
            eng.node,
            chiller_obs::HistoryEventKind::Commit { txn },
        );
    }
    // Durability ack point: this commit counts toward `stats.commits`, so
    // after a crash the recovered state must include it. The Ack record
    // only becomes visible to recovery once flushed — and every kill point
    // in the crash harness sits at a flush boundary — so acked ⟺ durable.
    eng.wal_append(chiller_storage::wal::WalRecord::Ack { txn });
    coord.phase = Phase::Done;
    eng.schedule_fresh_start(ctx, coord.slot);
}

/// Abort the current attempt: release outer locks, account, and retry
/// (transient) or give up (logic). Sets `Phase::Done`.
pub(crate) fn abort_attempt(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
) {
    let mut unlocks_by_part: BTreeMap<PartitionId, Vec<RecordId>> = BTreeMap::new();
    for (p, rid) in coord.held_locks.drain(..) {
        unlocks_by_part.entry(p).or_default().push(rid);
    }
    for (part, unlocks) in unlocks_by_part {
        ctx.send(
            NodeId(part.0),
            Verb::OneSided,
            Msg::AbortOuter { txn, unlocks },
        );
    }
    let kind = coord.failed.expect("abort without failure");
    let name = eng.proc_name(&coord.input).to_owned();
    let slot = coord.slot;
    coord.phase = Phase::Done;
    if coord.traced {
        let reason = match kind {
            FailKind::Transient(r) => Some(r),
            FailKind::Logic => None,
        };
        eng.tracer.record(
            ctx.now().as_nanos(),
            eng.node,
            EventKind::TxnAbort {
                txn,
                attempt: coord.attempts,
                reason,
            },
        );
    }
    match kind {
        FailKind::Transient(reason) => {
            eng.metrics.type_stats(&name).aborts += 1;
            eng.metrics.abort_reasons.record(reason);
            if let Some(mon) = eng.monitor.as_mut() {
                mon.on_abort();
            }
            if coord.attempts >= eng.config.engine.max_retries {
                eng.schedule_fresh_start(ctx, slot);
            } else {
                let input = std::mem::replace(
                    &mut coord.input,
                    TxnInput {
                        proc: 0,
                        params: Vec::new(),
                    },
                );
                let backoff =
                    eng.schedule_retry(ctx, slot, input, coord.attempts, coord.first_start);
                if coord.traced {
                    eng.tracer.record(
                        ctx.now().as_nanos(),
                        eng.node,
                        EventKind::TxnRetry {
                            txn,
                            attempt: coord.attempts,
                            backoff_ns: backoff.as_nanos(),
                        },
                    );
                }
            }
        }
        FailKind::Logic => {
            eng.metrics.type_stats(&name).logic_aborts += 1;
            eng.schedule_fresh_start(ctx, slot);
        }
    }
}
